"""Micro-benchmarks of the core components: these quantify the paper's
claim that index/classifier maintenance is "negligible compared to crawl
time" (Sec. 3.2) — each operation must be far below the ~1 s politeness
delay between requests."""

import numpy as np

from repro.core.actions import ActionSpace
from repro.core.hnsw import HnswIndex
from repro.core.tagpath import TagPathVectorizer
from repro.core.url_classifier import OnlineUrlClassifier, UrlClass
from repro.html.parse import parse_page
from repro.http.server import SimulatedServer
from repro.webgraph.generator import SiteProfile, generate_site

_PATHS = [
    f"html body div#main.container div.content ul.items.sec-{s} li a"
    for s in ("data", "news", "about", "stats", "press")
]


def test_bench_tagpath_projection(benchmark):
    vectorizer = TagPathVectorizer(n=2, m=8)
    for path in _PATHS:
        vectorizer.project(path)

    def project():
        return vectorizer.project(_PATHS[0])

    vector = benchmark(project)
    assert vector.shape == (256,)


def test_bench_hnsw_search(benchmark):
    rng = np.random.default_rng(0)
    index = HnswIndex(dim=256, seed=0)
    for i in range(400):
        index.insert(i, rng.normal(size=256))
    query = rng.normal(size=256)
    results = benchmark(lambda: index.search(query, k=1))
    assert results


def test_bench_action_assignment(benchmark):
    vectorizer = TagPathVectorizer(n=2, m=8)
    space = ActionSpace(vectorizer, theta=0.75, seed=0)
    for path in _PATHS * 3:
        space.assign(path)

    counter = [0]

    def assign():
        counter[0] += 1
        return space.assign(
            f"html body div#main.container div.fresh{counter[0]} ul li a"
        )

    action = benchmark(assign)
    assert action >= 0


def test_bench_url_classifier_predict(benchmark):
    classifier = OnlineUrlClassifier(batch_size=10, seed=0)
    for i in range(50):
        classifier.add_labeled(f"https://s.example/p{i}", UrlClass.HTML)
        classifier.add_labeled(f"https://s.example/f{i}.csv", UrlClass.TARGET)
    label = benchmark(lambda: classifier.classify("https://s.example/f999.csv"))
    assert label is UrlClass.TARGET


def test_bench_server_get_and_parse(benchmark):
    graph = generate_site(
        SiteProfile(
            name="bench",
            base_url="https://www.bench.example",
            n_pages=300,
            target_fraction=0.3,
            html_to_target_pct=8.0,
            target_depth_mean=3.0,
            target_depth_std=1.0,
            seed=1,
        )
    )
    server = SimulatedServer(graph)
    urls = [p.url for p in graph.html_pages()][:50]

    index = [0]

    def fetch_and_parse():
        url = urls[index[0] % len(urls)]
        index[0] += 1
        response = server.get(url)
        return parse_page(response.body)

    parsed = benchmark(fetch_and_parse)
    assert parsed.links or parsed.text


def test_bench_full_sb_crawl(benchmark):
    """End-to-end crawl throughput on a 300-page site."""
    from repro.core.crawler import SBConfig, sb_classifier
    from repro.http.environment import CrawlEnvironment

    graph = generate_site(
        SiteProfile(
            name="bench-crawl",
            base_url="https://www.bench-crawl.example",
            n_pages=300,
            target_fraction=0.3,
            html_to_target_pct=8.0,
            target_depth_mean=3.0,
            target_depth_std=1.0,
            seed=2,
        )
    )
    env = CrawlEnvironment(graph)

    def crawl():
        return sb_classifier(SBConfig(seed=1)).crawl(env)

    result = benchmark.pedantic(crawl, rounds=1, iterations=1)
    assert result.targets == env.target_urls()
