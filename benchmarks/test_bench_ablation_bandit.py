"""Ablation benchmark: bandit policies (paper Appendix C discussion).

The paper chose AUER over ε-greedy and Thompson Sampling for stability
and because priors are unavailable.  This ablation measures the three
policies' crawl efficiency on three structurally different sites.
"""

import math

from benchmarks.conftest import save_rendered
from repro.analysis.metrics import requests_to_fraction
from repro.core.crawler import SBConfig, sb_oracle

POLICIES = ("auer", "epsilon-greedy", "thompson")
SITES = ("ju", "in", "nc")


def test_bench_ablation_bandit(benchmark, bench_cache, results_dir):
    def run():
        rows = {}
        for policy in POLICIES:
            per_site = []
            for site in SITES:
                env = bench_cache.env(site)
                result = sb_oracle(
                    SBConfig(seed=1, bandit_policy=policy)
                ).crawl(env)
                per_site.append(
                    requests_to_fraction(
                        result.trace, env.total_targets(), env.n_available()
                    )
                )
            rows[policy] = per_site
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: bandit policy (requests-% to 90% targets)"]
    lines.append("policy           " + "".join(f"{s:>8}" for s in SITES))
    for policy, values in rows.items():
        cells = "".join(
            f"{v:8.1f}" if not math.isinf(v) else "    +inf" for v in values
        )
        lines.append(f"{policy:16} {cells}")
    save_rendered(results_dir, "ablation_bandit", "\n".join(lines))

    def mean(values):
        finite = [v for v in values if not math.isinf(v)]
        return sum(finite) / len(finite) if finite else math.inf

    # AUER (the paper's choice) is competitive with both alternatives.
    auer = mean(rows["auer"])
    assert auer <= mean(rows["epsilon-greedy"]) * 1.3 + 5
    assert auer <= mean(rows["thompson"]) * 1.3 + 5
