"""Benchmark: regenerate Figures 4 and 7 — per-crawler crawl curves.

Figure 4 covers the paper's 10 selected sites; Figure 7 (extended
version) the remaining 8.  Both panels are produced: targets vs
requests, and target volume vs non-target volume.
"""

from benchmarks.conftest import save_rendered
from repro.experiments.figures import compute_figure4
from repro.webgraph.sites import FIGURE4_SITES, PAPER_SITES


def test_bench_figure4(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_figure4(bench_config, bench_cache, sites=FIGURE4_SITES),
        rounds=1,
        iterations=1,
    )
    save_rendered(results_dir, "figure4", result.render())
    for site_entry in result.sites:
        left, right = site_entry.to_svg()
        (results_dir / f"figure4_{site_entry.site}_targets.svg").write_text(left)
        (results_dir / f"figure4_{site_entry.site}_volume.svg").write_text(right)
    assert len(result.sites) == 10
    for site_entry in result.sites:
        for curve in site_entry.curves:
            # Curves are cumulative and consistent across panels.
            assert curve.targets == sorted(curve.targets)
            assert curve.target_bytes == sorted(curve.target_bytes)


def test_bench_figure7(benchmark, bench_cache, bench_config, results_dir):
    remaining = tuple(sorted(set(PAPER_SITES) - set(FIGURE4_SITES)))
    result = benchmark.pedantic(
        lambda: compute_figure4(bench_config, bench_cache, sites=remaining),
        rounds=1,
        iterations=1,
    )
    save_rendered(results_dir, "figure7", result.render())
    assert len(result.sites) == 8
