"""Benchmark: regenerate Table 1 (site characteristics census)."""

import math

from benchmarks.conftest import save_rendered
from repro.experiments.table1 import compute_table1
from repro.webgraph.sites import PAPER_STATS


def test_bench_table1(benchmark, bench_cache, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table1(cache=bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table1", result.render())
    assert len(result.rows) == 18
    for row in result.rows:
        paper = PAPER_STATS[row.site]
        paper_density = 100.0 * paper.targets_k / paper.available_k
        # Target density of the replica tracks the paper's.
        assert abs(row.target_density_pct - paper_density) < 12.0, row.site
        # Shallow/deep site contrast preserved.
        if paper.depth_mean > 30:
            assert row.depth_mean > 8.0, row.site
