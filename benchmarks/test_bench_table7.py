"""Benchmark: regenerate Table 7 — SD yield across sampled targets."""

from benchmarks.conftest import save_rendered
from repro.experiments import paperdata
from repro.experiments.table7 import compute_table7


def test_bench_table7(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table7(bench_config, bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table7", result.render())

    assert len(result.sites) == 7
    for site, measured_yield, measured_mean in zip(
        result.sites, result.yields_pct, result.mean_sds
    ):
        paper_yield, paper_mean = paperdata.TABLE7[site]
        # Sampled 40 targets: generous tolerance, same as manual sampling.
        assert abs(measured_yield - paper_yield) < 22.0, site
        assert abs(measured_mean - paper_mean) < max(2.5, paper_mean), site
    # High-yield vs low-yield ordering preserved (is > wh).
    yields = dict(zip(result.sites, result.yields_pct))
    assert yields["is"] > yields["wh"]
