"""Benchmark: Prop. 4 machinery — Set Cover reduction and exact solvers."""

import random

from repro.analysis.theory import (
    SetCoverInstance,
    min_crawl_cost,
    reduce_set_cover_to_crawl,
    set_cover_exact,
    set_cover_greedy,
)


def _random_instance(seed: int, n_elements: int = 7, n_subsets: int = 6):
    rng = random.Random(seed)
    subsets = [
        frozenset(
            rng.sample(range(n_elements), rng.randint(1, n_elements - 1))
        )
        for _ in range(n_subsets)
    ]
    covered = set().union(*subsets)
    for element in range(n_elements):
        if element not in covered:
            subsets.append(frozenset({element}))
    return SetCoverInstance(n_elements=n_elements, subsets=tuple(subsets))


def test_bench_reduction_equivalence(benchmark):
    instances = [_random_instance(seed) for seed in range(10)]

    def run():
        checked = 0
        for instance in instances:
            crawl = reduce_set_cover_to_crawl(instance)
            optimum = len(set_cover_exact(instance))
            assert min_crawl_cost(crawl) == instance.n_elements + optimum + 1
            checked += 1
        return checked

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 10


def test_bench_greedy_speed(benchmark):
    instance = _random_instance(99, n_elements=60, n_subsets=40)
    cover = benchmark(lambda: set_cover_greedy(instance))
    covered = set().union(*(instance.subsets[i] for i in cover))
    assert covered == set(range(instance.n_elements))
