"""Benchmark: regenerate Table 6 — mean/STD of non-zero action rewards,
showing the heavy-tailed reward distribution across tag-path groups."""

from benchmarks.conftest import save_rendered
from repro.experiments.figures import compute_figure5
from repro.experiments.table6 import compute_table6
from repro.webgraph.sites import PAPER_SITES


def test_bench_table6(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table6(bench_config, bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table6", result.render())

    assert len(result.sites) == 18
    assert all(m >= 0 for m in result.means)
    # Paper shape (Sec. 4.7): the top tag-path group's reward far exceeds
    # the site's mean over non-zero groups on most sites; rewards are
    # dispersed (positive STD) wherever there is more than one group.
    figure5 = compute_figure5(bench_config, bench_cache,
                              sites=tuple(sorted(PAPER_SITES)))
    dominated = 0
    for site, mean in zip(result.sites, result.means):
        top = figure5.top_rewards[site][0] if figure5.top_rewards[site] else 0.0
        if mean > 0 and top >= 2.0 * mean:
            dominated += 1
    assert dominated >= 10, dominated
    assert sum(1 for s in result.stds if s > 0) >= 12
