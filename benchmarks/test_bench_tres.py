"""Benchmark: the TRES baseline on the smallest fully-crawled sites.

The paper could only run TRES on small sites (its tree expansion
re-evaluates the whole frontier each step and it exceeds 1 minute per
request on anything larger); even with its three unfair advantages it
fails to match SB-CLASSIFIER on 9 of 10 sites (Sec. 4.5).  We reproduce
both the comparison and the cost blow-up measurement.
"""

import math
import time

from benchmarks.conftest import save_rendered
from repro.analysis.metrics import requests_to_fraction
from repro.core.crawler import SBConfig, sb_classifier
from repro.experiments.runner import crawler_factory

SITES = ("qa", "cl", "cn", "be")


def test_bench_tres_comparison(benchmark, bench_cache, results_dir):
    def run():
        rows = []
        for site in SITES:
            env = bench_cache.env(site)
            total, avail = env.total_targets(), env.n_available()
            started = time.perf_counter()
            tres = crawler_factory("TRES", seed=1).crawl(env)
            tres_seconds = time.perf_counter() - started
            sb = bench_cache.run(site, "SB-CLASSIFIER", seed=1)
            rows.append(
                {
                    "site": site,
                    "tres": requests_to_fraction(tres.trace, total, avail),
                    "sb": requests_to_fraction(sb.trace, total, avail),
                    "tres_cpu_ms_per_request": 1000
                    * tres_seconds / max(tres.n_requests, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["TRES vs SB-CLASSIFIER (requests-% to 90% targets; CPU/request)"]
    for row in rows:
        tres_text = (
            f"{row['tres']:.1f}" if not math.isinf(row["tres"]) else "+inf"
        )
        lines.append(
            f"  {row['site']}: TRES={tres_text:>6}  SB={row['sb']:6.1f}  "
            f"TRES cpu={row['tres_cpu_ms_per_request']:.1f} ms/request"
        )
    save_rendered(results_dir, "tres_comparison", "\n".join(lines))

    # Paper shape: TRES loses to SB-CLASSIFIER on (almost) every site.
    sb_wins = sum(
        1 for row in rows
        if row["sb"] < row["tres"] or math.isinf(row["tres"])
    )
    assert sb_wins >= len(SITES) - 1
    # And TRES's per-request CPU is orders of magnitude above the other
    # crawlers' (the paper's scalability failure).
    assert max(row["tres_cpu_ms_per_request"] for row in rows) > 1.0
