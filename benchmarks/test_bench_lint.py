"""Wall-time benchmark of the whole-program lint pass: the incremental
cache must make warm re-runs at least 5x faster than a cold run, or the
self-lint gate and ``repro.precheck`` stop being the cheap pre-PR check
they are documented to be (docs/static_analysis.md, Cache semantics)."""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.lint import Linter, load_pyproject_config

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
REFERENCE_ROOTS = [REPO / name for name in ("src", "tests", "examples",
                                            "benchmarks")]

#: Required speedup of a fully cached re-run over the cold run.
MIN_SPEEDUP = 5.0


def _timed_run(cache_path: Path):
    config = load_pyproject_config(REPO / "pyproject.toml")
    linter = Linter(config)
    start = time.perf_counter()
    run = linter.run([SRC], project=True, cache_path=cache_path,
                     reference_roots=REFERENCE_ROOTS)
    return time.perf_counter() - start, run


def test_bench_cached_full_repo_lint_speedup(tmp_path, results_dir):
    cache = tmp_path / "lint-cache.json"
    cold_seconds, cold = _timed_run(cache)
    warm_seconds, warm = _timed_run(cache)

    # Same verdict either way — caching must never change findings.
    assert cold.findings == warm.findings == []
    assert cold.cache.misses == cold.cache.files > 0
    assert warm.cache.hits == warm.cache.files
    assert warm.cache.misses == 0

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    record = {
        "files": cold.cache.files,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    (results_dir / "lint_cache_bench.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"cached lint only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s); "
        f"need >= {MIN_SPEEDUP}x"
    )
