"""Benchmark: URL-classification quality (Appendix B.5).

Prequential (test-then-train) accuracy of the online URL classifier per
fully-crawled site, plus the end-of-crawl confusion structure — the
paper's B.5 finding is that "classification errors are extremely
marginal on HTML and Target URLs".
"""

from benchmarks.conftest import save_rendered
from repro.webgraph.sites import FULLY_CRAWLED_SITES


def test_bench_classifier_quality(benchmark, bench_cache, bench_config,
                                  results_dir):
    def run():
        rows = []
        for site in FULLY_CRAWLED_SITES:
            result = bench_cache.run(
                site, "SB-CLASSIFIER", seed=bench_config.run_seeds()[0]
            )
            rows.append(
                {
                    "site": site,
                    "prequential": result.info[
                        "classifier_prequential_accuracy"
                    ],
                    "recent": result.info["classifier_recent_accuracy"],
                    "mr": result.info["confusion"].misclassification_rate(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["URL classifier quality (Appendix B.5): prequential accuracy"]
    for row in rows:
        lines.append(
            f"  {row['site']}: prequential={100 * row['prequential']:5.1f}%  "
            f"recent={100 * row['recent']:5.1f}%  MR={row['mr']:.2f}%"
        )
    save_rendered(results_dir, "classifier_quality", "\n".join(lines))

    # Paper shape: errors are marginal once the model has warmed up.
    assert all(row["recent"] > 0.85 for row in rows), rows
    assert sum(row["prequential"] for row in rows) / len(rows) > 0.85
