"""Shared benchmark fixtures.

All table/figure benchmarks share one ResultCache at ``BENCH_SCALE`` so
crawl runs are computed once per session (the paper's local-replication
methodology).  Rendered tables are written to ``bench_results/`` so the
regenerated paper artefacts survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import bench_results_dir
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ResultCache

#: Scale of the synthetic sites used by the benchmark suite.  1.0 is the
#: full laptop-scale size of the 18 site profiles (≈ 1 k – 6 k pages).
#: The ``REPRO_BENCH_SCALE`` environment variable overrides it so CI's
#: bench-smoke job can run the suite at a fraction of the size (the
#: numbers are then not comparable across scales — only across runs at
#: the same scale).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

@pytest.fixture(scope="session")
def bench_cache() -> ResultCache:
    return ResultCache(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(scale=BENCH_SCALE, sb_runs=1, seeds=(1,))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    # One shared results location (repro.bench anchors it on the repo
    # root, not the CWD) — the CLI and the benchmark suite write to the
    # same bench_results/ directory however they are invoked.
    return bench_results_dir()


def save_rendered(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
