"""Benchmark: regenerate Table 5 (+ confusion Tables 8–16) — the URL
classifier model/feature study on the fully-crawled sites."""

import math

from benchmarks.conftest import save_rendered
from repro.experiments.table5 import compute_table5


def test_bench_table5(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table5(bench_config, bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table5", result.render())

    assert len(result.measured) == 8
    baseline = result.measured["URL_ONLY-LR"]
    finite_baseline = [v for v in baseline if not math.isinf(v)]
    assert finite_baseline
    # Paper finding: no variant improves consistently over URL_ONLY-LR.
    def mean(values):
        finite = [v for v in values if not math.isinf(v)]
        return sum(finite) / len(finite) if finite else math.inf

    base_mean = mean(baseline)
    better = [
        variant
        for variant, values in result.measured.items()
        if mean(values) < base_mean - 5.0
    ]
    assert len(better) <= 2, better
    # Misclassification stays low for URL_ONLY models (paper: 2.5–3 %).
    assert result.mr["URL_ONLY-LR"] < 12.0
    # The model itself never predicts "Neither" (two-class classifier);
    # the only Neither entries come from HEAD-labelled URLs during the
    # initial training phase, a vanishing fraction of classifications.
    for matrix in result.confusions.values():
        for true_label in matrix.labels:
            assert matrix.percentage(true_label, "Neither") < 0.5
