"""Benchmark: regenerate Figure 15 — early-stopping visualisation on the
paper's two example sites (in and ju)."""

from benchmarks.conftest import save_rendered
from repro.experiments.figures import compute_figure15


def test_bench_figure15(benchmark, bench_cache, bench_config, results_dir):
    def run():
        return [
            compute_figure15(site, bench_config, bench_cache)
            for site in ("in", "ju")
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = "\n\n".join(r.render() for r in results)
    save_rendered(results_dir, "figure15", rendered)
    for result in results:
        (results_dir / f"figure15_{result.site}.svg").write_text(result.to_svg())
    for result in results:
        assert result.targets == sorted(result.targets)
        # On both sites discovery plateaus and the monitor eventually cuts
        # the crawl (paper behaviour class i).
        assert result.stop_at is None or result.stop_at <= len(result.requests) * 1e9
