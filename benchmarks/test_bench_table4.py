"""Benchmark: regenerate Table 4 — hyper-parameter study (α, n, θ) with
SB-ORACLE on the 11 fully-crawled sites."""

import math

from benchmarks.conftest import save_rendered
from repro.experiments.table4 import compute_table4


def _mean_requests(values):
    finite = [req for req, _ in values if not math.isinf(req)]
    return sum(finite) / len(finite) if finite else math.inf


def test_bench_table4(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table4(bench_config, bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table4", result.render())

    assert len(result.sites) == 11
    # Paper shape: alpha = 2sqrt2 is no worse than massive exploration.
    assert _mean_requests(result.rows["alpha=2sqrt2"]) <= (
        _mean_requests(result.rows["alpha=30"]) + 5.0
    )
    # n >= 2 (order-preserving n-grams) at least matches n = 1 on average.
    assert _mean_requests(result.rows["n=2"]) <= (
        _mean_requests(result.rows["n=1"]) + 8.0
    )
    # theta = 0.75 at least matches theta = 0.95 (over-fragmentation).
    assert _mean_requests(result.rows["theta=0.75"]) <= (
        _mean_requests(result.rows["theta=0.95"]) + 8.0
    )
