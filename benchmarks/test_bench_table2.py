"""Benchmark: regenerate Table 2 — % requests to 90 % of targets for all
seven crawlers on all 18 sites, plus the early-stopping rows."""

import math

from benchmarks.conftest import save_rendered
from repro.experiments.table2 import compute_table2


def test_bench_table2(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table2(bench_config, bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table2", result.render())

    sb = result.measured["SB-CLASSIFIER"]
    oracle = result.measured["SB-ORACLE"]
    bfs = result.measured["BFS"]

    def wins(a, b):
        return sum(
            1 for x, y in zip(a, b)
            if x < y or (math.isinf(x) and math.isinf(y))
        )

    # Paper shape: SB-CLASSIFIER beats BFS on the large majority of sites.
    assert wins(sb, bfs) >= 13, (sb, bfs)
    # And beats each other baseline on a majority of sites.
    for baseline in ("FOCUSED", "TP-OFF", "DFS", "RANDOM"):
        assert wins(sb, result.measured[baseline]) >= 11, baseline
    # Corpus-level: the classifier stays in the oracle's ballpark (the
    # paper: "our classifier is close to the (virtual) perfect oracle";
    # per-site noise goes both ways, as in the paper's be/ok columns).
    finite = [
        (o, c) for o, c in zip(oracle, sb)
        if not math.isinf(o) and not math.isinf(c)
    ]
    assert finite
    mean_oracle = sum(o for o, _ in finite) / len(finite)
    mean_sb = sum(c for _, c in finite) / len(finite)
    assert mean_sb <= mean_oracle * 1.6 + 10.0
    # Early stopping saves requests somewhere without catastrophic loss:
    # no site loses more than ~a quarter of its targets and the corpus
    # mean stays below 10 % (the paper's worst site, ab, loses 13.5 %).
    assert max(result.saved_requests) > 5.0
    assert all(l <= 30.0 for l in result.lost_targets)
    assert sum(result.lost_targets) / len(result.lost_targets) <= 10.0
