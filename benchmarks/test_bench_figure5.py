"""Benchmark: regenerate Figure 5 — mean rewards of the top-10 tag-path
groups per site (log-scale plot in the paper)."""

from benchmarks.conftest import save_rendered
from repro.experiments.figures import compute_figure5
from repro.webgraph.sites import FIGURE4_SITES


def test_bench_figure5(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_figure5(bench_config, bench_cache, sites=FIGURE4_SITES),
        rounds=1,
        iterations=1,
    )
    save_rendered(results_dir, "figure5", result.render())
    (results_dir / "figure5.svg").write_text(result.to_svg())

    for site in result.sites:
        rewards = result.top_rewards[site]
        assert rewards == sorted(rewards, reverse=True)
        # Paper shape: the top group carries substantial reward while the
        # tail of the top-10 falls off steeply (power-law-like).
        assert rewards[0] > 0
        if len(rewards) >= 10 and rewards[0] > 0:
            assert rewards[9] <= rewards[0]
    best = [result.top_rewards[s][0] for s in result.sites]
    assert max(best) > 5.0
