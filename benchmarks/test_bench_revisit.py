"""Extension benchmark: incremental revisit policies (the paper's future
work, Sec. 6).  Compares uniform, change-rate, Thompson-sampling and
tag-path-group revisit scheduling on an evolving replica of *nc*."""

from benchmarks.conftest import save_rendered
from repro.revisit import (
    ChangeRatePolicy,
    TagPathGroupPolicy,
    ThompsonRevisitPolicy,
    UniformRevisitPolicy,
    simulate_revisits,
)
from repro.webgraph.sites import load_paper_site

POLICIES = (
    UniformRevisitPolicy,
    ChangeRatePolicy,
    ThompsonRevisitPolicy,
    TagPathGroupPolicy,
)


def test_bench_revisit_policies(benchmark, results_dir):
    def run():
        reports = []
        for factory in POLICIES:
            graph = load_paper_site("nc", scale=0.3)
            reports.append(
                simulate_revisits(
                    graph,
                    factory(seed=1),
                    n_epochs=25,
                    budget_per_epoch=15,
                    new_targets_per_epoch=6.0,
                    seed=17,
                )
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = "Revisit-policy extension (evolving nc replica)\n" + "\n".join(
        r.render() for r in reports
    )
    save_rendered(results_dir, "revisit_policies", rendered)

    by_name = {r.policy: r for r in reports}
    # All policies operate under the same budget.
    budgets = {r.revisit_requests for r in reports}
    assert len(budgets) == 1
    # The structure-aware policy (the paper's proposal) is competitive
    # with — typically better than — blind uniform revisits.
    assert by_name["TAG-PATH"].recall >= by_name["UNIFORM"].recall - 0.05
    assert by_name["TAG-PATH"].discovered > 0
