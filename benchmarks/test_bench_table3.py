"""Benchmark: regenerate Table 3 — % non-target volume before 90 % of
target volume (shares the Table 2 crawl runs via the session cache)."""

import math

from benchmarks.conftest import save_rendered
from repro.experiments.table3 import compute_table3


def test_bench_table3(benchmark, bench_cache, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: compute_table3(bench_config, bench_cache), rounds=1, iterations=1
    )
    save_rendered(results_dir, "table3", result.render())

    sb = result.measured["SB-CLASSIFIER"]
    assert all(v > 0 for v in sb)
    # SB retrieves far less junk volume than BFS on a majority of sites.
    bfs = result.measured["BFS"]
    wins = sum(
        1 for x, y in zip(sb, bfs)
        if x < y or (math.isinf(x) and math.isinf(y))
    )
    assert wins >= 11, (sb, bfs)
