"""Setup shim for environments whose tooling predates PEP 660 editable
installs (``pip install -e .`` falls back to ``setup.py develop`` here).
All project metadata lives in pyproject.toml."""

from setuptools import setup

setup()
