#!/usr/bin/env python3
"""Build a *custom* synthetic website, crawl it for a custom target set
(CSV files only), and replicate it into a local SQLite database — the
paper's evaluation infrastructure (Sec. 4.4).

Run:  python examples/custom_site.py
"""

import tempfile
from pathlib import Path

from repro import CrawlEnvironment, SBConfig, SiteProfile, generate_site, sb_classifier
from repro.http.cache import PageStore, ReplicatingFetcher, replicate_site
from repro.sd.content import TargetContentGenerator
from repro.sd.detector import count_statistic_tables


def main() -> None:
    # 1. Define a site from scratch: a mid-size open-data portal with a
    #    deep paginated catalog, CMS-style extensionless URLs and some
    #    unique-id DOM noise.
    profile = SiteProfile(
        name="open-data-portal",
        base_url="https://data.agency.example",
        n_pages=1500,
        target_fraction=0.35,
        html_to_target_pct=6.0,
        target_depth_mean=8.0,
        target_depth_std=4.0,
        url_style="node",
        languages=("en", "fr"),
        palette_index=3,
        unique_id_noise=0.1,
        seed=2024,
    )
    graph = generate_site(profile)
    stats = graph.statistics()
    print(f"generated {stats.n_available} pages, {stats.n_targets} targets, "
          f"target depth {stats.target_depth_mean:.1f}"
          f"±{stats.target_depth_std:.1f}")

    # 2. Crawl for CSV files only (the target list is user-defined).
    csv_only = frozenset({"text/csv", "text/x-csv", "application/csv",
                          "text/comma-separated-values"})
    env = CrawlEnvironment(graph, target_mimes=csv_only)
    result = sb_classifier(SBConfig(seed=7)).crawl(env)
    print(f"\nCSV-only crawl: {result.n_targets}/{env.total_targets()} CSV "
          f"targets in {result.n_requests} requests")

    # 3. Inspect retrieved files for statistics tables (Table 7 pipeline).
    generator = TargetContentGenerator(profile.name, seed=0)
    sampled = sorted(result.targets)[:10]
    with_tables = 0
    for url in sampled:
        content = generator.generate(url, "text/csv")
        if count_statistic_tables(content.body, "text/csv") > 0:
            with_tables += 1
    print(f"statistics tables found in {with_tables}/{len(sampled)} "
          f"sampled CSV files")

    # 4. Replicate the site into a local database, then crawl fully
    #    offline from it ("local" mode of the artifact kit).
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "replica.db"
        with PageStore(db_path) as store:
            stored = replicate_site(env.server, store)
            print(f"\nreplicated {stored} resources into {db_path.name} "
                  f"({db_path.stat().st_size / 1e6:.1f} MB)")
            fetcher = ReplicatingFetcher(env.server, store, mode="local")
            response = fetcher.get(graph.root_url)
            print(f"offline fetch of root: HTTP {response.status}, "
                  f"{len(response.body)} bytes, 0 live requests "
                  f"(n_live_fetches={fetcher.n_live_fetches})")


if __name__ == "__main__":
    main()
