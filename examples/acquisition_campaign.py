#!/usr/bin/env python3
"""Multi-site acquisition campaign: crawl several statistical agencies
with SB-CLASSIFIER and schedule the requests over a polite worker pool.

The paper's fact-checking application needs data from *many* trusted
organisations; politeness (1 request/second/site) makes sequential
crawling slow, but requests to different hosts interleave freely.

Run:  python examples/acquisition_campaign.py
"""

from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier
from repro.campaign import SiteWorkload, schedule_campaign

SITES = ("qa", "cl", "cn", "be", "ju")


def main() -> None:
    workloads = []
    print("crawling (simulated) sites with SB-CLASSIFIER:")
    for site in SITES:
        env = CrawlEnvironment(load_paper_site(site, scale=0.5))
        result = sb_classifier(SBConfig(seed=1)).crawl(env)
        print(f"  {site}: {result.n_targets:5d} targets, "
              f"{result.n_requests:5d} requests")
        workloads.append(SiteWorkload.from_trace(result.trace))

    print("\nscheduling under 1 request/second/site politeness:")
    for n_workers in (1, 2, 4, 8):
        report = schedule_campaign(workloads, n_workers=n_workers)
        print(f"  {report.render()}")

    print(
        "\nper-site politeness, not CPU, is the bottleneck: even one worker"
        "\ninterleaves requests across sites during the 1-second waits, so"
        "\nthe campaign makespan collapses to the longest single site"
        "\n(ju here) instead of the sum of all sites."
    )


if __name__ == "__main__":
    main()
