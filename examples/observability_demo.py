#!/usr/bin/env python3
"""Observability demo: instrument a crawl, fold live metrics, record a
JSONL trace, then replay it offline into the same report the CLI
(`python -m repro.obs`) renders.

Run:  python examples/observability_demo.py
"""

import tempfile
from pathlib import Path

from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsObserver,
    MetricsRegistry,
    MultiObserver,
    crawl_report,
    harvest_rate_curve,
    read_events,
    trace_from_events,
)


def main(site: str = "ju", scale: float = 0.2, budget: int = 400) -> None:
    env = CrawlEnvironment(load_paper_site(site, scale=scale))
    print(f"site {site}: {env.n_available()} pages, "
          f"{env.total_targets()} targets\n")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "run.jsonl"

        # One observer per consumer, fanned out explicitly: an in-memory
        # event list, a live metrics fold, and a JSONL trace on disk.
        sink = MemorySink()
        registry = MetricsRegistry()
        with JsonlSink(trace_path, meta={"crawler": "SB-CLASSIFIER",
                                         "site": site, "seed": 1}) as jsonl:
            observer = MultiObserver([sink, MetricsObserver(registry), jsonl])
            result = sb_classifier(SBConfig(seed=1, observer=observer)).crawl(
                env, budget=budget)

        print(f"crawl finished: {result.n_targets} targets in "
              f"{result.n_requests} requests")
        print("event stream  :",
              ", ".join(f"{kind}={n}" for kind, n in sink.counts().items()))
        print(f"trace file    : {jsonl.n_events} events in "
              f"{trace_path.stat().st_size} bytes of JSONL\n")

        # The fetch stream IS the request trace: replaying the JSONL file
        # reconstructs exactly what the crawler recorded.
        meta, events = read_events(trace_path)
        trace = trace_from_events(events, crawler=meta["crawler"],
                                  site=meta["site"])
        assert trace.n_requests == result.n_requests
        assert trace.n_targets == result.n_targets
        steps, rates = harvest_rate_curve(trace)
        print(f"replayed {meta['crawler']} on {meta['site']}: "
              f"final harvest rate {rates[-1]:.4f} at step {steps[-1]}\n")

        print(crawl_report(events, crawler=meta["crawler"], site=meta["site"]))

    print("\n(offline, the same report comes from: "
          "python -m repro.obs report run.jsonl)")


if __name__ == "__main__":
    main()
