#!/usr/bin/env python3
"""Early-stopping demo (paper Sec. 4.8): stop crawling when the
target-discovery rate plateaus, and measure requests saved vs targets
lost.

Run:  python examples/early_stopping_demo.py
"""

from repro import CrawlEnvironment, SBConfig, SBCrawler, load_paper_site, sb_classifier
from repro.experiments.config import scaled_early_stopping
from repro.experiments.report import ascii_curve
from repro.analysis.metrics import targets_vs_requests_curve


def main(site: str = "in", scale: float = 0.5) -> None:
    env = CrawlEnvironment(load_paper_site(site, scale=scale))
    print(f"site {site}: {env.n_available()} pages, "
          f"{env.total_targets()} targets\n")

    base = sb_classifier(SBConfig(seed=1)).crawl(env)

    es_params = scaled_early_stopping(env.n_available())
    stopper = SBCrawler(SBConfig(seed=1, early_stopping=True, **es_params))
    stopped = stopper.crawl(env)

    saved = 100.0 * (base.n_requests - stopped.n_requests) / base.n_requests
    lost = 100.0 * (base.n_targets - stopped.n_targets) / max(1, base.n_targets)
    print(f"full crawl     : {base.n_requests:6d} requests, "
          f"{base.n_targets} targets")
    print(f"early stopping : {stopped.n_requests:6d} requests, "
          f"{stopped.n_targets} targets")
    print(f"  -> saved {saved:.1f}% of requests, lost {lost:.1f}% of targets")
    print(f"  (EMA slope monitor: window={es_params['es_window']}, "
          f"threshold={es_params['es_threshold']}, "
          f"patience={es_params['es_patience']})\n")

    xs, ys = targets_vs_requests_curve(stopped.trace)
    print(ascii_curve(xs.tolist(), ys.tolist(), height=10,
                      title="targets vs requests, early-stopped crawl"))
    if stopped.stopped_early:
        print(f"crawl cut at request {stopped.trace.stopped_early_at}")


if __name__ == "__main__":
    main()
