#!/usr/bin/env python3
"""Quickstart: crawl a synthetic replica of justice.gouv.fr with
SB-CLASSIFIER and compare against breadth-first crawling.

Run:  python examples/quickstart.py
"""

from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier
from repro.analysis.metrics import requests_to_fraction
from repro.baselines import BFSCrawler


def main() -> None:
    # 1. Build the environment: a ~1200-page replica of the paper's "ju"
    #    site (deep data portal, French ministry of justice).
    graph = load_paper_site("ju", scale=0.4)
    env = CrawlEnvironment(graph)
    print(f"site: {graph.name}  pages: {env.n_available()}  "
          f"targets: {env.total_targets()}")

    # 2. Crawl with the paper's SB-CLASSIFIER (default hyper-parameters:
    #    theta=0.75, alpha=2*sqrt(2), n=2, b=10).
    crawler = sb_classifier(SBConfig(seed=1))
    result = crawler.crawl(env)
    print(f"\n{crawler.name}: {result.n_targets} targets in "
          f"{result.n_requests} requests "
          f"({result.trace.total_bytes / 1e6:.1f} MB transferred)")

    # 3. Compare against BFS on the paper's Table 2 metric:
    #    % of requests needed to retrieve 90% of targets.
    bfs_result = BFSCrawler().crawl(env)
    total, avail = env.total_targets(), env.n_available()
    sb_metric = requests_to_fraction(result.trace, total, avail)
    bfs_metric = requests_to_fraction(bfs_result.trace, total, avail)
    print(f"\nrequests to reach 90% of targets (lower is better):")
    print(f"  SB-CLASSIFIER : {sb_metric:6.1f}% of site pages")
    print(f"  BFS           : {bfs_metric:6.1f}% of site pages")

    # 4. Estimate wall-clock time under 1-second politeness (Sec. 4.4).
    seconds = result.trace.n_requests * 1.0
    print(f"\nestimated polite-crawl duration for SB-CLASSIFIER: "
          f"{seconds / 3600:.1f} h (at 1 request/second)")

    # 5. What did the bandit learn?  Top tag-path groups by mean reward.
    print("\ntop learned tag-path groups (mean reward):")
    bandit = result.info["bandit"]
    actions = result.info["actions"]
    top = sorted(bandit.arms.items(), key=lambda kv: -kv[1].mean_reward)[:3]
    for action_id, arm in top:
        path = actions.stats(action_id).example_tag_path
        print(f"  reward {arm.mean_reward:6.2f}  ...{' '.join(path.split()[-4:])}")


if __name__ == "__main__":
    main()
