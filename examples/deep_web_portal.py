#!/usr/bin/env python3
"""Deep-web crawling (the paper's future work): datasets hidden behind a
search form are invisible to link-following crawlers; the deep-web SB
crawler enumerates GET-form submissions under its bandit.

Run:  python examples/deep_web_portal.py
"""

from repro import CrawlEnvironment, SBConfig, SiteProfile, generate_site, sb_classifier
from repro.deepweb import deep_web_sb_classifier


def main() -> None:
    profile = SiteProfile(
        name="stats-office",
        base_url="https://stats.office.example",
        n_pages=700,
        target_fraction=0.25,
        html_to_target_pct=7.0,
        target_depth_mean=4.0,
        target_depth_std=1.5,
        deep_web_portals=3,   # three search portals hide extra datasets
        seed=11,
    )
    graph = generate_site(profile)
    env = CrawlEnvironment(graph)
    total = env.total_targets()
    portals = [p for p in graph.html_pages() if p.forms]
    deep = sum(
        sum(len(graph.page(u).links) for u in form.result_urls)
        for p in portals
        for form in p.forms
    )
    print(f"site: {env.n_available()} pages, {total} targets "
          f"({deep} of them behind {len(portals)} search portals)\n")

    surface = sb_classifier(SBConfig(seed=1)).crawl(env)
    print(f"SB-CLASSIFIER (links only): {surface.n_targets}/{total} targets "
          f"in {surface.n_requests} requests")

    deep_crawler = deep_web_sb_classifier(SBConfig(seed=1))
    deep_result = deep_crawler.crawl(env)
    print(f"SB-DEEPWEB (links + forms): {deep_result.n_targets}/{total} "
          f"targets in {deep_result.n_requests} requests")

    gained = deep_result.n_targets - surface.n_targets
    extra = deep_result.n_requests - surface.n_requests
    print(f"\nform enumeration recovered {gained} hidden targets for "
          f"{extra} extra requests")


if __name__ == "__main__":
    main()
