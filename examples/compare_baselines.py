#!/usr/bin/env python3
"""Figure 4-style comparison: run all seven crawlers on one site and plot
(ASCII) the targets-vs-requests curves.

Run:  python examples/compare_baselines.py [site] [scale]
"""

import sys

from repro import CrawlEnvironment, load_paper_site
from repro.analysis.metrics import requests_to_fraction, targets_vs_requests_curve
from repro.experiments.report import ascii_curve
from repro.experiments.runner import CRAWLER_ORDER, crawler_factory


def main(site: str = "in", scale: float = 0.4) -> None:
    env = CrawlEnvironment(load_paper_site(site, scale=scale))
    total, avail = env.total_targets(), env.n_available()
    print(f"site {site}: {avail} pages, {total} targets\n")

    print(f"{'crawler':14} {'requests':>9} {'targets':>8} {'req-to-90%':>11}")
    curves = {}
    for name in CRAWLER_ORDER:
        crawler = crawler_factory(name, seed=1)
        result = crawler.crawl(env)
        metric = requests_to_fraction(result.trace, total, avail)
        metric_text = f"{metric:.1f}%" if metric != float("inf") else "never"
        print(f"{name:14} {result.n_requests:9d} {result.n_targets:8d} "
              f"{metric_text:>11}")
        curves[name] = targets_vs_requests_curve(result.trace)

    print()
    for name in ("SB-CLASSIFIER", "BFS"):
        xs, ys = curves[name]
        print(ascii_curve(xs.tolist(), ys.tolist(), height=10,
                          title=f"{name}: cumulative targets vs requests"))
        print()


if __name__ == "__main__":
    site = sys.argv[1] if len(sys.argv) > 1 else "in"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    main(site, scale)
