#!/usr/bin/env python3
"""Hyper-parameter study (paper Sec. 4.6): the effect of the similarity
threshold θ and the exploration coefficient α on crawl efficiency.

Run:  python examples/hyperparameter_study.py
"""

import math

from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_oracle
from repro.analysis.metrics import requests_to_fraction


def main(site: str = "ju", scale: float = 0.4) -> None:
    env = CrawlEnvironment(load_paper_site(site, scale=scale))
    total, avail = env.total_targets(), env.n_available()
    print(f"site {site}: {avail} pages, {total} targets  (SB-ORACLE)\n")

    print("theta (tag-path similarity threshold):")
    for theta in (0.0, 0.55, 0.75, 0.95):
        result = sb_oracle(SBConfig(seed=1, theta=theta)).crawl(env)
        metric = requests_to_fraction(result.trace, total, avail)
        print(f"  theta={theta:4.2f}: req-to-90%={metric:6.1f}%  "
              f"actions={result.info['n_actions']:4d}")
    print("  (theta=0 -> one action, random walk; theta->1 -> one action "
          "per path, no generalisation)")

    print("\nalpha (exploration vs exploitation):")
    for label, alpha in (("0.1", 0.1), ("2sqrt2", 2 * math.sqrt(2)), ("30", 30.0)):
        result = sb_oracle(SBConfig(seed=1, alpha=alpha)).crawl(env)
        metric = requests_to_fraction(result.trace, total, avail)
        print(f"  alpha={label:>6}: req-to-90%={metric:6.1f}%")
    print("  (large alpha over-explores; the paper keeps alpha = 2*sqrt(2))")

    print("\nn (tag-path n-gram order):")
    for n in (1, 2, 3):
        result = sb_oracle(SBConfig(seed=1, ngram_n=n)).crawl(env)
        metric = requests_to_fraction(result.trace, total, avail)
        print(f"  n={n}: req-to-90%={metric:6.1f}%")
    print("  (n=1 ignores segment order; n>=2 preserves it)")


if __name__ == "__main__":
    main()
