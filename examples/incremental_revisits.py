#!/usr/bin/env python3
"""Incremental revisits (the paper's future work): keep a crawled site
fresh as it publishes new statistics datasets over time, comparing four
revisit-scheduling policies under the same request budget.

Run:  python examples/incremental_revisits.py
"""

from repro.revisit import (
    ChangeRatePolicy,
    TagPathGroupPolicy,
    ThompsonRevisitPolicy,
    UniformRevisitPolicy,
    simulate_revisits,
)
from repro.webgraph.sites import load_paper_site


def main() -> None:
    print("Simulating 25 epochs of site evolution on an nc replica;")
    print("each epoch the site publishes ~6 new targets and the policy")
    print("may revisit 15 pages.\n")
    for factory in (
        UniformRevisitPolicy,
        ChangeRatePolicy,
        ThompsonRevisitPolicy,
        TagPathGroupPolicy,
    ):
        graph = load_paper_site("nc", scale=0.3)
        report = simulate_revisits(
            graph,
            factory(seed=1),
            n_epochs=25,
            budget_per_epoch=15,
            new_targets_per_epoch=6.0,
            seed=17,
        )
        print(report.render())
    print(
        "\nTAG-PATH reuses the SB crawler's structural grouping: feedback"
        "\non one catalog immediately prioritises its structural siblings."
    )


if __name__ == "__main__":
    main()
