"""Tests for report rendering helpers and misc result objects."""

import math

from repro.experiments.report import (
    ascii_curve,
    fmt_cell,
    render_pairs_table,
    render_table,
)


def test_fmt_cell_variants():
    assert fmt_cell(3.14159, digits=2).strip() == "3.14"
    assert fmt_cell(None, width=4) == "  NA"
    assert fmt_cell(math.inf).strip() == "+inf"
    assert len(fmt_cell(1.0, width=10)) == 10


def test_render_table_alignment():
    text = render_table(
        "Title", ["col-a", "col-b"],
        [("row-one", [1.0, 2.0]), ("a-very-long-row-label-beyond", [3.0, None])],
        label_width=12,
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    # All data rows have the same width.
    data = [l for l in lines if l.startswith(("row", "a-ve"))]
    assert len({len(l) for l in data}) == 1
    assert "NA" in text


def test_render_pairs_table():
    text = render_pairs_table(
        "Pairs", ["s1"], [("cfg", [(12.3, 45.6)])]
    )
    assert "12.3" in text and "45.6" in text and "|" in text


def test_ascii_curve_monotone_render():
    plot = ascii_curve([0, 1, 2, 3], [0, 1, 2, 3], width=20, height=5)
    assert plot.count("*") >= 3
    assert "x_max=3" in plot


def test_ascii_curve_flat_series():
    plot = ascii_curve([1, 2, 3], [0, 0, 0], title="flat")
    assert "flat" in plot


def test_crawl_result_properties(small_env):
    from repro.baselines import BFSCrawler

    result = BFSCrawler().crawl(small_env, budget=30)
    assert result.n_requests == len(result.trace.records)
    assert result.n_targets == len(result.targets)


def test_site_statistics_as_row(small_site):
    row = small_site.statistics().as_row()
    assert row["#Available"] > 0
    assert 0 < row["Density (%)"] < 100
    assert "Target Depth Mean" in row
