"""Property tests: every Checkpointable survives snapshot → restore.

For each component the invariant is the same (docs/checkpoint.md):
``snapshot_state`` serialised through canonical JSON (the exact bytes a
`CheckpointStore` persists), restored into a *freshly constructed*
component, must reproduce the snapshot byte for byte — and, for the
stateful/stochastic components, the restored copy must *continue*
identically to the original.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import Checkpointable, canonical_json

FEW = settings(max_examples=20, deadline=None)


def _roundtrip(component, fresh):
    """Snapshot → JSON bytes → restore into ``fresh`` → snapshot again."""
    assert isinstance(component, Checkpointable)
    blob = canonical_json(component.snapshot_state())
    # decode exactly like CheckpointStore does: tuples become lists,
    # dict-key types must already be strings
    fresh.restore_state(json.loads(blob))
    assert canonical_json(fresh.snapshot_state()) == blob
    return fresh


# -- frontier ------------------------------------------------------------


@FEW
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 4)), max_size=60
    ),
    pops=st.integers(0, 10),
    seed=st.integers(0, 3),
)
def test_frontier_roundtrip_and_continuation(ops, pops, seed):
    from repro.core.frontier import Frontier

    frontier = Frontier(seed=seed)
    for url_index, action_id in ops:
        frontier.add(f"https://s.example/p{url_index}", action_id)
    for _ in range(pops):
        if len(frontier) == 0:
            break
        frontier.pop_random()
    restored = _roundtrip(frontier, Frontier(seed=seed))
    # continuation: the Fenwick tree and the RNG stream must both have
    # survived — the next weighted draws agree
    while len(frontier):
        assert restored.pop_random() == frontier.pop_random()


# -- bandits -------------------------------------------------------------


@FEW
@given(
    rewards=st.lists(
        st.tuples(st.integers(0, 5), st.floats(0, 1, allow_nan=False)),
        max_size=40,
    )
)
def test_sleeping_bandit_roundtrip(rewards):
    from repro.core.bandit import SleepingBandit

    bandit = SleepingBandit()
    for action_id, reward in rewards:
        bandit.record_selection(action_id)
        bandit.record_reward(action_id, reward)
    restored = _roundtrip(bandit, SleepingBandit())
    if bandit.arms:
        awake = sorted(bandit.arms)
        assert restored.select(awake, t=50) == bandit.select(awake, t=50)


@FEW
@given(
    rewards=st.lists(
        st.tuples(st.integers(0, 5), st.floats(0, 1, allow_nan=False)),
        max_size=30,
    ),
    seed=st.integers(0, 5),
    policy=st.sampled_from(["epsilon-greedy", "thompson"]),
)
def test_stochastic_bandits_roundtrip_and_continuation(rewards, seed, policy):
    from repro.core.bandit import EpsilonGreedyBandit, ThompsonSamplingBandit

    make = {
        "epsilon-greedy": lambda: EpsilonGreedyBandit(seed=seed),
        "thompson": lambda: ThompsonSamplingBandit(seed=seed),
    }[policy]
    bandit = make()
    awake = [0, 1, 2]
    for action_id, reward in rewards:
        bandit.record_selection(action_id % 3)
        bandit.record_reward(action_id % 3, reward)
    bandit.select(awake, t=10)      # burn RNG state
    restored = _roundtrip(bandit, make())
    # the RNG stream continues identically after restore
    for t in range(11, 16):
        assert restored.select(awake, t=t) == bandit.select(awake, t=t)


# -- tag-path vectorizer + HNSW + action space ---------------------------


_PATHS = st.lists(
    st.lists(st.sampled_from(["html", "body", "div", "ul", "li", "a"]),
             min_size=1, max_size=5).map(lambda parts: "/".join(parts)),
    max_size=30,
)


@FEW
@given(paths=_PATHS)
def test_vectorizer_roundtrip(paths):
    from repro.core.tagpath import TagPathVectorizer

    vec = TagPathVectorizer(n=2, m=6)
    for path in paths:
        vec.project(path)
    restored = _roundtrip(vec, TagPathVectorizer(n=2, m=6))
    # vocabulary growth continues identically: a new path hashes the same
    probe = "html/body/div/a"
    assert (restored.project(probe) == vec.project(probe)).all()
    assert restored.vocabulary_size == vec.vocabulary_size


@FEW
@given(
    n_vectors=st.integers(0, 12),
    seed=st.integers(0, 3),
    data_seed=st.integers(0, 100),
)
def test_hnsw_roundtrip_and_continuation(n_vectors, seed, data_seed):
    import numpy as np

    from repro.core.hnsw import HnswIndex

    rng = np.random.default_rng(data_seed)
    index = HnswIndex(dim=8, seed=seed)
    for key in range(n_vectors):
        index.insert(key, rng.standard_normal(8))
    restored = _roundtrip(index, HnswIndex(dim=8, seed=seed))
    # level-assignment RNG continues identically: inserting the same new
    # vector into both indexes yields identical link structure
    extra = rng.standard_normal(8)
    index.insert(1000, extra)
    restored.insert(1000, extra)
    assert canonical_json(restored.snapshot_state()) == canonical_json(
        index.snapshot_state()
    )
    if n_vectors:
        query = rng.standard_normal(8)
        assert restored.search(query, k=3) == index.search(query, k=3)


@FEW
@given(paths=_PATHS, theta=st.sampled_from([0.3, 0.75, 0.95]))
def test_action_space_roundtrip(paths, theta):
    from repro.core.actions import ActionSpace
    from repro.core.tagpath import TagPathVectorizer

    space = ActionSpace(TagPathVectorizer(n=2, m=6), theta=theta)
    for path in paths:
        space.assign(path)
    # the crawler checkpoints the vectorizer separately, so restore both
    # before asking the restored space to continue
    fresh = ActionSpace(TagPathVectorizer(n=2, m=6), theta=theta)
    fresh.vectorizer.restore_state(
        json.loads(canonical_json(space.vectorizer.snapshot_state()))
    )
    restored = _roundtrip(space, fresh)
    assert restored.assign("html/body/a") == space.assign("html/body/a")


# -- URL classifier ------------------------------------------------------


@FEW
@given(
    labels=st.lists(
        st.tuples(st.integers(0, 30), st.sampled_from(["HTML", "Target"])),
        max_size=25,
    ),
    model=st.sampled_from(["LR", "NB"]),
)
def test_url_classifier_roundtrip(labels, model):
    from repro.core.url_classifier import OnlineUrlClassifier, UrlClass

    def make():
        return OnlineUrlClassifier(batch_size=5, model=model, seed=1)

    clf = make()
    for url_index, label in labels:
        clf.add_labeled(
            f"https://s.example/doc{url_index}.html", UrlClass(label)
        )
    restored = _roundtrip(clf, make())
    probe = "https://s.example/record999.pdf"
    assert restored.classify(probe) == clf.classify(probe)


# -- monitors, matrices, ledgers -----------------------------------------


@FEW
@given(
    counts=st.lists(st.integers(0, 3), max_size=40),
    window=st.integers(1, 5),
)
def test_early_stopping_roundtrip(counts, window):
    from repro.core.early_stopping import EarlyStoppingMonitor

    def make():
        return EarlyStoppingMonitor(window=window, patience=3)

    monitor = make()
    total = 0
    for delta in counts:
        total += delta
        monitor.observe(total)
    restored = _roundtrip(monitor, make())
    for step in range(5):
        total += 1
        assert restored.observe(total) == monitor.observe(total)


@FEW
@given(
    pairs=st.lists(
        st.tuples(st.sampled_from(["HTML", "Target", "Neither"]),
                  st.sampled_from(["HTML", "Target", "Neither"])),
        max_size=30,
    )
)
def test_confusion_matrix_roundtrip(pairs):
    from repro.ml.metrics import ConfusionMatrix

    matrix = ConfusionMatrix()
    for true_label, predicted in pairs:
        matrix.update(true_label, predicted)
    restored = _roundtrip(matrix, ConfusionMatrix())
    assert restored.total == matrix.total


@FEW
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["GET", "HEAD"]), st.integers(0, 9000),
                  st.booleans()),
        max_size=30,
    )
)
def test_cost_ledger_roundtrip(ops):
    from repro.http.ledger import CostLedger

    ledger = CostLedger()
    for method, size, is_target in ops:
        ledger.record(method, size, is_target)
    restored = _roundtrip(ledger, CostLedger())
    assert restored.n_requests == ledger.n_requests


@FEW
@given(
    disallow=st.lists(st.sampled_from(["/admin", "/tmp", "/x"]), max_size=3),
    allow=st.lists(st.sampled_from(["/admin/pub", "/y"]), max_size=2),
    delay=st.one_of(st.none(), st.floats(0, 5, allow_nan=False)),
)
def test_robots_policy_roundtrip(disallow, allow, delay):
    from repro.http.robots import RobotsPolicy

    policy = RobotsPolicy(
        disallow=disallow, allow=allow, crawl_delay=delay,
        sitemaps=["https://s.example/sitemap.xml"],
    )
    restored = _roundtrip(policy, RobotsPolicy())
    assert restored.allowed("https://s.example/admin/x") == policy.allowed(
        "https://s.example/admin/x"
    )


# -- observability -------------------------------------------------------


@FEW
@given(
    counter_incs=st.lists(st.floats(0, 10, allow_nan=False), max_size=15),
    gauge_value=st.floats(-5, 5, allow_nan=False),
    histogram_obs=st.lists(st.floats(0, 100, allow_nan=False), max_size=15),
)
def test_metrics_registry_roundtrip(counter_incs, gauge_value, histogram_obs):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    counter = registry.counter("crawl_requests_total")
    for amount in counter_incs:
        counter.inc(amount)
    registry.gauge("frontier_size").set(gauge_value)
    histogram = registry.histogram("page_bytes", (10.0, 50.0, 100.0))
    for value in histogram_obs:
        histogram.observe(value)
    restored = _roundtrip(registry, MetricsRegistry())
    assert restored.render() == registry.render()


def test_memory_sink_snapshot_is_a_rewind_point():
    from repro.obs.sinks import MemorySink

    sink = MemorySink()
    for n in range(7):
        sink.on_event(f"event-{n}")
    snapshot = json.loads(canonical_json(sink.snapshot_state()))
    for n in range(3):
        sink.on_event(f"late-event-{n}")
    sink.restore_state(snapshot)
    assert len(sink) == 7
    assert canonical_json(sink.snapshot_state()) == canonical_json(snapshot)


# -- HTTP client (needs a simulated server, so plain deterministic test) --


def test_http_client_roundtrip():
    from repro.http.environment import CrawlEnvironment
    from repro.webgraph.sites import load_paper_site

    env = CrawlEnvironment(load_paper_site("be", scale=0.05))
    client = env.new_client(crawler_name="probe")
    for _ in range(5):
        client.get(env.graph.root_url)
    blob = canonical_json(client.snapshot_state())
    fresh = env.new_client(crawler_name="probe")
    fresh.restore_state(json.loads(blob))
    assert canonical_json(fresh.snapshot_state()) == blob
    assert fresh.ledger.n_requests == client.ledger.n_requests
