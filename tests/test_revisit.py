"""Tests for the incremental-revisit extension."""

import pytest

from repro.revisit.evolution import EvolvingSite
from repro.revisit.harness import simulate_revisits
from repro.revisit.policies import (
    ChangeRatePolicy,
    TagPathGroupPolicy,
    ThompsonRevisitPolicy,
    UniformRevisitPolicy,
)
from repro.webgraph.generator import generate_site
from tests.conftest import make_profile

POLICIES = [
    UniformRevisitPolicy,
    ChangeRatePolicy,
    ThompsonRevisitPolicy,
    TagPathGroupPolicy,
]


def _graph(name="evo-test", **overrides):
    return generate_site(make_profile(name=name, **overrides))


# -- evolution model -----------------------------------------------------

def test_advance_publishes_targets():
    site = EvolvingSite(_graph(), new_targets_per_epoch=10.0, seed=1)
    before = len(site.graph.target_pages())
    for _ in range(10):
        site.advance(1.0)
    after = len(site.graph.target_pages())
    assert after > before
    published = {c for c in site.changes if c.kind == "new-target"}
    assert len(published) == after - before


def test_new_targets_linked_from_catalogs():
    site = EvolvingSite(_graph(name="evo-t2"), new_targets_per_epoch=10.0, seed=2)
    site.advance(5.0)
    new_urls = site.new_targets_since(0.0)
    assert new_urls
    linked = {
        link.url
        for page in site.graph.html_pages()
        for link in page.links
    }
    assert new_urls <= linked
    # Graph stays consistent after mutation.
    assert site.graph.validate() == []


def test_edits_bump_versions():
    site = EvolvingSite(_graph(name="evo-t3"), seed=3)
    url = site.graph.html_pages()[0].url
    assert site.version(url) == 0
    site.advance(50.0)
    versions = [site.version(p.url) for p in site.graph.html_pages()]
    assert any(v > 0 for v in versions)


def test_advance_requires_positive_dt():
    site = EvolvingSite(_graph(name="evo-t4"), seed=4)
    with pytest.raises(ValueError):
        site.advance(0.0)


def test_evolution_deterministic():
    a = EvolvingSite(_graph(name="evo-t5"), seed=5)
    b = EvolvingSite(_graph(name="evo-t5"), seed=5)
    a.advance(3.0)
    b.advance(3.0)
    assert [c.url for c in a.changes] == [c.url for c in b.changes]


# -- policies --------------------------------------------------------------

@pytest.mark.parametrize("factory", POLICIES)
def test_schedule_respects_budget(factory):
    policy = factory(seed=0)
    for i in range(50):
        policy.register(f"u{i}", now=0.0, group=i % 3)
    picks = policy.schedule(budget=7, now=1.0)
    assert len(picks) == 7
    assert len(set(picks)) == 7


@pytest.mark.parametrize("factory", POLICIES)
def test_observe_updates_bookkeeping(factory):
    policy = factory(seed=0)
    policy.register("u", now=0.0, group=1)
    policy.observe("u", changed=True, new_targets=2, now=3.0)
    entry = policy.pages["u"]
    assert entry.n_visits == 1
    assert entry.n_changed == 1
    assert entry.n_new_targets == 2
    assert entry.last_visit == 3.0


def test_uniform_picks_stalest():
    policy = UniformRevisitPolicy()
    policy.register("old", now=0.0)
    policy.register("fresh", now=0.0)
    policy.observe("fresh", changed=False, new_targets=0, now=5.0)
    assert policy.schedule(budget=1, now=6.0) == ["old"]


def test_change_rate_prefers_churny_pages():
    policy = ChangeRatePolicy()
    for url in ("hot", "cold"):
        policy.register(url, now=0.0)
    for step in range(5):
        policy.observe("hot", changed=True, new_targets=0, now=step + 1)
        policy.observe("cold", changed=False, new_targets=0, now=step + 1)
    assert policy.schedule(budget=1, now=10.0) == ["hot"]


def test_tag_path_group_generalises():
    """Feedback on one group member raises priority of its siblings."""
    policy = TagPathGroupPolicy()
    policy.register("catalog-a", now=0.0, group=7)
    policy.register("catalog-b", now=0.0, group=7)
    policy.register("news", now=0.0, group=8)
    # Only catalog-a ever observed, but it yielded targets.
    for step in range(3):
        policy.observe("catalog-a", changed=True, new_targets=4, now=step + 1)
        policy.observe("news", changed=True, new_targets=0, now=step + 1)
    picks = policy.schedule(budget=2, now=10.0)
    # The never-visited sibling of the productive group outranks the
    # frequently-changing-but-unproductive news page.
    assert "catalog-b" in picks
    assert "news" not in picks


# -- harness --------------------------------------------------------------

@pytest.mark.parametrize("factory", POLICIES)
def test_simulation_end_to_end(factory):
    graph = _graph(name=f"evo-sim-{factory.__name__}", n_pages=150)
    report = simulate_revisits(
        graph, factory(seed=1), n_epochs=8, budget_per_epoch=10,
        new_targets_per_epoch=4.0, seed=9,
    )
    assert report.n_epochs == 8
    assert report.revisit_requests == 8 * 10
    assert 0.0 <= report.recall <= 1.0
    assert report.discovered <= report.published
    assert len(report.per_epoch_recall) == 8
    assert report.policy == factory(seed=1).name
    assert "recall" in report.render()


def test_structure_aware_policy_competitive():
    """The paper's future-work idea: structural grouping helps revisits."""
    def run(factory, name):
        graph = _graph(name=name, n_pages=300)
        return simulate_revisits(
            graph, factory(seed=1), n_epochs=20, budget_per_epoch=8,
            new_targets_per_epoch=5.0, seed=11,
        )

    tagpath = run(TagPathGroupPolicy, "evo-cmp-tp")
    uniform = run(UniformRevisitPolicy, "evo-cmp-un")
    assert tagpath.recall >= uniform.recall
