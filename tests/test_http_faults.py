"""Tests for the fault-injection layer: determinism, pass-through
identity, every fault kind, and graceful degradation in crawlers."""

import pytest

from repro.baselines import BFSCrawler
from repro.core.crawler import SBConfig, sb_oracle
from repro.http.client import HttpClient, RetryPolicy
from repro.http.environment import CrawlEnvironment
from repro.http.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyServer,
    InjectedTimeoutError,
)
from repro.http.messages import TIMEOUT_STATUS
from repro.http.server import SimulatedServer
from repro.obs.sinks import MemorySink


# -- FaultSpec validation ---------------------------------------------------

def test_fault_spec_rejects_bad_values():
    with pytest.raises(ValueError):
        FaultSpec(rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(kinds=("server_error", "alien"))
    with pytest.raises(ValueError):
        FaultSpec(burst_length=0)
    with pytest.raises(ValueError):
        FaultSpec(truncate_fraction=1.0)


def test_plan_disabled_at_rate_zero():
    plan = FaultPlan(FaultSpec(rate=0.0), seed=3)
    assert not plan.enabled
    assert plan.next_fault("https://s.example/a", "GET") is None


# -- determinism ------------------------------------------------------------

def _schedule(plan: FaultPlan, urls: list[str]) -> list[tuple]:
    out = []
    for url in urls:
        try:
            fault = plan.next_fault(url, "GET")
        except InjectedTimeoutError:  # pragma: no cover - plan never raises
            fault = "timeout"
        out.append(None if fault is None else (fault.kind, fault.status))
    return out


def test_same_seed_same_fault_schedule():
    urls = [f"https://s.example/p{i % 7}" for i in range(200)]
    spec = FaultSpec(rate=0.3)
    a = _schedule(FaultPlan(spec, seed=11), urls)
    b = _schedule(FaultPlan(spec, seed=11), urls)
    assert a == b
    assert any(x is not None for x in a)


def test_different_seeds_differ():
    urls = [f"https://s.example/p{i}" for i in range(200)]
    spec = FaultSpec(rate=0.3)
    a = _schedule(FaultPlan(spec, seed=1), urls)
    b = _schedule(FaultPlan(spec, seed=2), urls)
    assert a != b


def test_reset_rewinds_the_plan():
    urls = [f"https://s.example/p{i}" for i in range(100)]
    plan = FaultPlan(FaultSpec(rate=0.4), seed=5)
    first = _schedule(plan, urls)
    plan.reset()
    assert _schedule(plan, urls) == first


def test_server_error_bursts_stick_to_the_url():
    plan = FaultPlan(FaultSpec(rate=1.0, kinds=("server_error",),
                               burst_length=3), seed=2)
    url = "https://s.example/a"
    first = plan.next_fault(url, "GET")
    assert first.kind == "server_error"
    # the next two hits on the same URL continue the burst with the same
    # status and consume no randomness
    state = plan._rng.getstate()
    second = plan.next_fault(url, "GET")
    third = plan.next_fault(url, "GET")
    assert (second.status, third.status) == (first.status, first.status)
    assert plan._rng.getstate() == state


def test_max_faults_caps_the_plan():
    plan = FaultPlan(FaultSpec(rate=1.0, kinds=("rate_limit",),
                               max_faults=2), seed=1)
    faults = [plan.next_fault(f"https://s.example/p{i}", "GET")
              for i in range(10)]
    assert sum(f is not None for f in faults) == 2


# -- FaultyServer pass-through identity -------------------------------------

def test_rate_zero_is_byte_identical_to_clean_server(small_site):
    clean = SimulatedServer(small_site)
    faulty = FaultyServer(SimulatedServer(small_site),
                          FaultPlan(FaultSpec(rate=0.0), seed=9))
    for page in list(small_site.pages())[:50]:
        assert faulty.get(page.url) == clean.get(page.url)
        assert faulty.head(page.url) == clean.head(page.url)


def test_faulty_server_proxies_graph_and_invalidate(small_site):
    inner = SimulatedServer(small_site)
    faulty = FaultyServer(inner, FaultPlan(FaultSpec(rate=0.0)))
    assert faulty.graph is small_site
    faulty.invalidate(small_site.root_url)  # must not raise


# -- each fault kind through the server -------------------------------------

def _single_kind_server(site, kind, **spec_kwargs):
    plan = FaultPlan(FaultSpec(rate=1.0, kinds=(kind,), **spec_kwargs), seed=4)
    return FaultyServer(SimulatedServer(site), plan)


def test_injected_server_error(small_site):
    server = _single_kind_server(small_site, "server_error", burst_length=1)
    response = server.get(small_site.root_url)
    assert response.status in (500, 503)
    assert response.fault == "server_error"
    assert response.is_transient_error


def test_injected_rate_limit_advertises_retry_after(small_site):
    server = _single_kind_server(small_site, "rate_limit", retry_after=7.0)
    response = server.get(small_site.root_url)
    assert response.status == 429
    assert response.headers["Retry-After"] == "7"
    assert response.retry_after_seconds() == 7.0


def test_injected_timeout_raises(small_site):
    server = _single_kind_server(small_site, "timeout")
    with pytest.raises(InjectedTimeoutError):
        server.get(small_site.root_url)


def test_injected_slow_response_carries_latency(small_site):
    server = _single_kind_server(small_site, "slow", slow_latency=9.0)
    response = server.get(small_site.root_url)
    assert response.ok
    assert response.fault == "slow"
    assert response.latency == 9.0


def test_injected_truncation_shrinks_body_and_size(small_site):
    clean = SimulatedServer(small_site).get(small_site.root_url)
    server = _single_kind_server(small_site, "truncate", truncate_fraction=0.5)
    response = server.get(small_site.root_url)
    assert response.truncated
    assert response.fault == "truncate"
    assert response.is_transient_error
    assert len(response.body) < len(clean.body)
    assert 0 < response.size < clean.size


# -- client integration -----------------------------------------------------

def test_client_converts_timeout_to_synthetic_response(small_site):
    server = _single_kind_server(small_site, "timeout")
    client = HttpClient(server)
    response = client.get(small_site.root_url)
    assert response.status == TIMEOUT_STATUS
    assert response.fault == "timeout"
    assert client.n_requests == 1  # the attempt is still accounted


def test_client_charges_slow_latency_to_ledger(small_site):
    server = _single_kind_server(small_site, "slow", slow_latency=9.0)
    client = HttpClient(server)
    client.get(small_site.root_url)
    assert client.ledger.wait_seconds == 9.0


def test_truncated_target_not_counted_as_target(small_site):
    from repro.webgraph.model import PageKind

    target = next(p for p in small_site.pages() if p.kind is PageKind.TARGET)
    server = _single_kind_server(small_site, "truncate")
    client = HttpClient(server)
    client.get(target.url)
    assert not client.trace.records[-1].is_target


def test_fault_injected_event_emitted(small_site):
    server = _single_kind_server(small_site, "server_error", burst_length=1)
    sink = MemorySink()
    client = HttpClient(server, observer=sink)
    client.get(small_site.root_url)
    kinds = [e.kind for e in sink.events]
    assert "fault_injected" in kinds
    event = sink.of_kind("fault_injected")[0]
    assert event.fault == "server_error"
    assert event.status in (500, 503)


# -- graceful degradation in crawlers ---------------------------------------

FLAKY = dict(rate=0.25, burst_length=2)


def _flaky_env(site, seed=1, observer=None, **spec):
    return CrawlEnvironment(
        site,
        observer=observer,
        fault_plan=FaultPlan(FaultSpec(**{**FLAKY, **spec}), seed=seed),
        retry_policy=RetryPolicy(seed=seed, max_attempts=3),
    )


def test_bfs_survives_heavy_faults(small_site):
    env = _flaky_env(small_site)
    result = BFSCrawler().crawl(env)
    assert result.n_requests > 0
    assert result.targets  # still finds some targets
    assert result.targets <= env.target_urls()


def test_sb_crawler_survives_heavy_faults(small_site):
    env = _flaky_env(small_site)
    result = sb_oracle(SBConfig(seed=1)).crawl(env)
    assert result.n_requests > 0
    assert result.targets <= env.target_urls()


def test_crawl_under_faults_is_deterministic(small_site):
    runs = [BFSCrawler().crawl(_flaky_env(small_site, seed=3)) for _ in range(2)]
    a, b = runs
    assert [r.url for r in a.trace.records] == [r.url for r in b.trace.records]
    assert a.targets == b.targets
    assert a.dead_letters == b.dead_letters


def test_abandoned_urls_end_in_dead_letters(small_site):
    # everything times out: every URL must eventually be dead-lettered,
    # and the crawl must terminate (bounded requeues, bounded retries)
    env = CrawlEnvironment(
        small_site,
        fault_plan=FaultPlan(FaultSpec(rate=1.0, kinds=("timeout",)), seed=1),
        retry_policy=RetryPolicy(seed=1, max_attempts=2, total_budget=64),
    )
    result = BFSCrawler().crawl(env)
    assert result.targets == set()
    assert result.dead_letters
    assert result.n_dead_letters == len(result.dead_letters)


def test_clean_path_unchanged_by_disabled_fault_stack(small_site):
    plain = CrawlEnvironment(small_site)
    disarmed = CrawlEnvironment(
        small_site, fault_plan=FaultPlan(FaultSpec(rate=0.0), seed=1)
    )
    a = BFSCrawler().crawl(plain)
    b = BFSCrawler().crawl(disarmed)
    assert [r.url for r in a.trace.records] == [r.url for r in b.trace.records]
    assert a.targets == b.targets
    # organic permanent errors (the site's own 404s) are dead-lettered
    # identically on both paths — the fault stack adds nothing
    assert a.dead_letters == b.dead_letters
