"""Metrics instruments, registry semantics, and the event→metric fold."""

import pytest

from repro.obs import MetricsObserver, MetricsRegistry
from repro.obs.events import (
    ActionCreated,
    ActionSelected,
    ClassifierBatchTrained,
    EarlyStopTriggered,
    FetchEvent,
    TargetFound,
)
from repro.obs.metrics import Counter, Gauge, Histogram


def test_counter_increments_and_rejects_decrease():
    c = Counter("requests_total")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.render() == "counter   requests_total 4"


def test_gauge_tracks_last_value():
    g = Gauge("frontier_size")
    g.set(10)
    g.set(7)
    assert g.value == 7
    assert g.render() == "gauge     frontier_size 7"


def test_histogram_buckets_and_overflow():
    h = Histogram("sizes", buckets=(10.0, 100.0))
    for value in (5, 10, 50, 1000):
        h.observe(value)
    # per-bucket counts: <=10 twice (5, 10), <=100 once (50), +inf once
    assert h.counts == [2, 1, 1]
    assert h.n == 4
    assert h.total == 1065
    assert h.mean() == pytest.approx(266.25)
    rendered = h.render()
    assert "count=4 sum=1065" in rendered
    assert "le=+inf 1" in rendered


def test_histogram_requires_sorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(10.0, 1.0))


def test_registry_get_or_create_returns_same_instrument():
    r = MetricsRegistry()
    a = r.counter("x")
    b = r.counter("x")
    assert a is b
    a.inc()
    assert r.get("x").value == 1
    assert r.get("missing") is None


def test_registry_rejects_kind_mismatch():
    r = MetricsRegistry()
    r.counter("x")
    with pytest.raises(TypeError):
        r.gauge("x")
    with pytest.raises(TypeError):
        r.histogram("x", buckets=(1.0,))


def test_registry_render_is_name_sorted_and_deterministic():
    r = MetricsRegistry()
    r.gauge("zeta").set(1.5)
    r.counter("alpha").inc(2)
    assert r.names() == ["alpha", "zeta"]
    assert r.render() == "counter   alpha 2\ngauge     zeta 1.5"
    assert r.render() == r.render()
    assert r.as_dict() == {"alpha": 2, "zeta": 1.5}


def test_metrics_observer_folds_fetch_events():
    obs = MetricsObserver()
    obs.on_event(FetchEvent(ordinal=1, method="GET", url="u1", status=200,
                            size=100, is_target=False))
    obs.on_event(FetchEvent(ordinal=2, method="HEAD", url="u2", status=301,
                            size=0, is_target=False))
    obs.on_event(FetchEvent(ordinal=3, method="GET", url="u3", status=404,
                            size=50, is_target=False))
    obs.on_event(FetchEvent(ordinal=4, method="GET", url="u4", status=200,
                            size=2000, is_target=True))
    snap = obs.registry.as_dict()
    assert snap["requests_total"] == 4
    assert snap["requests_get"] == 3
    assert snap["requests_head"] == 1
    assert snap["responses_redirect"] == 1
    assert snap["responses_error"] == 1
    assert snap["bytes_total"] == 2150
    assert snap["targets_total"] == 1
    assert snap["response_size_bytes"]["count"] == 4
    # first target at ordinal 4 -> gap of 4 requests since "start"
    assert snap["target_gap_requests"] == {"count": 1, "sum": 4, "mean": 4.0}
    assert obs.harvest_rate() == pytest.approx(0.25)


def test_metrics_observer_folds_crawler_events():
    obs = MetricsObserver()
    obs.on_event(ActionSelected(step=1, action_id=-1, score=0.0, n_awake=0,
                                frontier_size=24, url="u", reward=0))
    obs.on_event(ActionCreated(action_id=0, tag_path="html/body/a",
                               n_actions=1, step=1))
    obs.on_event(ActionSelected(step=2, action_id=0, score=1.25, n_awake=1,
                                frontier_size=30, url="v", reward=2))
    obs.on_event(ClassifierBatchTrained(n_batches=1, n_examples=50,
                                        prequential_accuracy=0.9,
                                        recent_accuracy=0.88))
    obs.on_event(TargetFound(ordinal=9, url="t", n_targets=1))
    obs.on_event(EarlyStopTriggered(step=40, ema=0.01, window=10, patience=3))
    snap = obs.registry.as_dict()
    assert snap["steps_total"] == 2
    assert snap["reward_per_pull"] == {"count": 2, "sum": 2, "mean": 1.0}
    assert snap["frontier_size"] == 30       # gauge: last value wins
    assert snap["actions_awake"] == 1
    assert snap["actions_total"] == 1
    assert snap["classifier_batches_trained"] == 1
    assert snap["classifier_prequential_accuracy"] == 0.9
    assert snap["classifier_recent_accuracy"] == 0.88
    assert snap["early_stops"] == 1
    # TargetFound itself adds nothing: targets count from FetchEvents
    assert snap["targets_total"] == 0


def test_metrics_observer_shares_external_registry():
    r = MetricsRegistry()
    obs = MetricsObserver(r)
    assert obs.registry is r
    obs.on_event(FetchEvent(ordinal=1, method="GET", url="u", status=200,
                            size=10, is_target=False))
    assert r.get("requests_total").value == 1


# -- registry merge fold (campaign shard aggregation) -----------------------


def _shard_registry(requests, frontier, sizes=()):
    registry = MetricsRegistry()
    registry.counter("requests_total").inc(requests)
    registry.gauge("frontier_size").set(frontier)
    histogram = registry.histogram("response_size_bytes", (10.0, 100.0))
    for value in sizes:
        histogram.observe(value)
    return registry


def test_registry_merge_adds_counters_gauges_histograms():
    a = _shard_registry(5, 2, sizes=(5, 50))
    b = _shard_registry(3, 4, sizes=(500,))
    a.merge(b)
    assert a.get("requests_total").value == 8
    # Shard-final gauges are per-shard levels; the campaign level sums.
    assert a.get("frontier_size").value == 6
    histogram = a.get("response_size_bytes")
    assert histogram.counts == [1, 1, 1]
    assert histogram.n == 3
    assert histogram.total == 555


def test_registry_merge_empty_identity_and_associativity():
    def parts():
        return (
            _shard_registry(2, 1, sizes=(5,)),
            _shard_registry(7, 3, sizes=(50, 500)),
            _shard_registry(1, 0),
        )

    a, b, c = parts()
    left = MetricsRegistry().merge(
        MetricsRegistry().merge(a).merge(b)
    ).merge(c)
    a, b, c = parts()
    right = MetricsRegistry().merge(a).merge(
        MetricsRegistry().merge(b).merge(c)
    )
    assert left.as_dict() == right.as_dict()
    assert left.render() == right.render()

    merged = MetricsRegistry().merge(parts()[0])
    again = MetricsRegistry().merge(parts()[0]).merge(MetricsRegistry())
    assert merged.as_dict() == again.as_dict()


def test_registry_merge_rejects_kind_mismatch():
    a = MetricsRegistry()
    a.counter("metric_x").inc()
    b = MetricsRegistry()
    b.gauge("metric_x").set(1)
    with pytest.raises(TypeError):
        a.merge(b)


def test_registry_merge_rejects_bucket_mismatch():
    a = MetricsRegistry()
    a.histogram("sizes", (1.0, 2.0)).observe(1)
    b = MetricsRegistry()
    b.histogram("sizes", (1.0, 5.0)).observe(1)
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_merge_returns_self_and_preserves_help():
    total = MetricsRegistry()
    shard = MetricsRegistry()
    shard.counter("requests_total", "GET + HEAD requests issued").inc(2)
    assert total.merge(shard) is total
    assert total.get("requests_total").help == "GET + HEAD requests issued"
