"""Tests for DOM segments and serialisation."""

import pytest

from repro.html.dom import DomElement, parse_segment, render_segment


def test_segment_round_trip():
    for segment in ("div", "div#main", "div.a.b", "div#x.a", "a.download"):
        tag, elem_id, classes = parse_segment(segment)
        assert render_segment(tag, elem_id, classes) == segment


def test_parse_segment_components():
    assert parse_segment("div#main.container") == ("div", "main", ("container",))
    assert parse_segment("ul.menu.open") == ("ul", None, ("menu", "open"))
    assert parse_segment("p") == ("p", None, ())


def test_parse_segment_rejects_empty_tag():
    with pytest.raises(ValueError):
        parse_segment("#justid")


def test_element_segment_property():
    element = DomElement("div", "main", ("container",))
    assert element.segment == "div#main.container"


def test_find_child():
    parent = DomElement("div")
    child = DomElement("ul", None, ("menu",))
    parent.append(child)
    assert parent.find_child("ul.menu") is child
    assert parent.find_child("ul.other") is None


def test_to_html_escapes_attributes_and_text():
    element = DomElement("a", attrs={"href": 'x?a=1&b="2"'})
    element.append("Tom & Jerry <3")
    html = element.to_html()
    assert "&amp;" in html
    assert "&lt;3" in html
    assert 'href="x?a=1&amp;b=&quot;2&quot;"' in html


def test_to_html_nested_structure():
    root = DomElement("html")
    body = DomElement("body")
    root.append(body)
    body.append(DomElement("p"))
    html = root.to_html()
    assert html.index("<body>") < html.index("<p>") < html.index("</body>")
