"""Tests for ``repro.precheck --ci``: JSON summary and exit codes.

The real checks (whole-program lint + doc-gate pytest run) are too slow
to run inside the unit suite, so these tests monkeypatch ``CHECKS`` with
tiny ``python -c`` commands and verify the reporting contract the CI
workflow relies on: the last stdout line is a JSON object, and the exit
code is non-zero iff any check failed.
"""

import json

import pytest

import repro.precheck as precheck

PASS = ("-c", "print('fine')")
FAIL = ("-c", "import sys; sys.exit(3)")


def _run_ci(capsys) -> tuple[int, dict]:
    code = precheck.main(["--ci"])
    out = capsys.readouterr().out
    summary = json.loads(out.strip().splitlines()[-1])
    return code, summary


def test_ci_mode_reports_success(monkeypatch, capsys):
    monkeypatch.setattr(precheck, "CHECKS", (("quick check", PASS),))
    code, summary = _run_ci(capsys)
    assert code == 0
    assert summary["ok"] is True
    assert [c["name"] for c in summary["checks"]] == ["quick check"]
    assert summary["checks"][0]["ok"] is True
    assert summary["checks"][0]["returncode"] == 0


def test_ci_mode_fails_loudly_on_injected_failure(monkeypatch, capsys):
    monkeypatch.setattr(
        precheck, "CHECKS", (("good", PASS), ("bad", FAIL))
    )
    code, summary = _run_ci(capsys)
    assert code == 1
    assert summary["ok"] is False
    by_name = {c["name"]: c for c in summary["checks"]}
    assert by_name["good"]["ok"] is True
    assert by_name["bad"]["ok"] is False
    assert by_name["bad"]["returncode"] == 3


def test_human_mode_unchanged(monkeypatch, capsys):
    monkeypatch.setattr(precheck, "CHECKS", (("good", PASS),))
    assert precheck.main([]) == 0
    out = capsys.readouterr().out
    assert "all checks passed" in out
    with pytest.raises(json.JSONDecodeError):
        json.loads(out.strip().splitlines()[-1])


def test_human_mode_failure_exit_code(monkeypatch, capsys):
    monkeypatch.setattr(precheck, "CHECKS", (("bad", FAIL),))
    assert precheck.main([]) == 1
    assert "1 of 1 checks failed" in capsys.readouterr().out


def test_ci_summary_commands_are_real_argv(monkeypatch, capsys):
    monkeypatch.setattr(precheck, "CHECKS", (("quick check", PASS),))
    _, summary = _run_ci(capsys)
    command = summary["checks"][0]["command"]
    assert isinstance(command, list)
    assert command[1:] == list(PASS)
