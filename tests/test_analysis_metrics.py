"""Tests for evaluation metrics over crawl traces."""

import math

from repro.analysis.metrics import (
    auc_targets_per_request,
    non_target_volume_fraction,
    requests_to_fraction,
    site_non_target_bytes,
    targets_vs_requests_curve,
    volume_curve,
)
from repro.analysis.trace import CrawlRecord, CrawlTrace


def _trace(records):
    trace = CrawlTrace(crawler="t", site="s")
    for method, url, status, size, is_target in records:
        trace.append(CrawlRecord(method, url, status, size, is_target))
    return trace


def test_requests_to_fraction_basic():
    # 10 requests; targets at positions 2, 4, 6 (1-indexed); total 3 targets.
    records = [
        ("GET", f"u{i}", 200, 100, i in (1, 3, 5)) for i in range(10)
    ]
    trace = _trace(records)
    # 90% of 3 targets = ceil(2.7) = 3 → reached at request 6 of 20 available
    assert requests_to_fraction(trace, 3, 20) == 100.0 * 6 / 20


def test_requests_to_fraction_never_reached():
    trace = _trace([("GET", "u", 200, 10, False)] * 5)
    assert math.isinf(requests_to_fraction(trace, 3, 10))


def test_requests_to_fraction_degenerate():
    trace = _trace([])
    assert math.isinf(requests_to_fraction(trace, 0, 10))
    assert math.isinf(requests_to_fraction(trace, 5, 0))


def test_head_requests_count(small_env):
    records = [
        ("HEAD", "u0", 200, 280, False),
        ("GET", "u1", 200, 100, True),
    ]
    trace = _trace(records)
    assert requests_to_fraction(trace, 1, 10) == 20.0  # 2 requests / 10


def test_non_target_volume_fraction():
    records = [
        ("GET", "h1", 200, 1000, False),
        ("GET", "t1", 200, 500, True),
        ("GET", "h2", 200, 1000, False),
        ("GET", "t2", 200, 500, True),
    ]
    trace = _trace(records)
    # total target volume 1000; 90% = 900 reached at t2, after 2000
    # non-target bytes out of total 4000 → 50%
    assert non_target_volume_fraction(trace, 1000, 4000) == 50.0


def test_non_target_volume_never_reached():
    trace = _trace([("GET", "h", 200, 100, False)])
    assert math.isinf(non_target_volume_fraction(trace, 1000, 100))


def test_curves_shapes():
    records = [("GET", f"u{i}", 200, 10 * (i + 1), i % 2 == 0) for i in range(6)]
    trace = _trace(records)
    xs, ys = targets_vs_requests_curve(trace)
    assert list(xs) == [1, 2, 3, 4, 5, 6]
    assert list(ys) == [1, 1, 2, 2, 3, 3]
    non_target, target = volume_curve(trace)
    assert non_target[-1] == trace.non_target_bytes
    assert target[-1] == trace.target_bytes


def test_auc_bounds():
    perfect = _trace([("GET", f"t{i}", 200, 1, True) for i in range(5)])
    awful = _trace([("GET", f"h{i}", 200, 1, False) for i in range(5)])
    assert auc_targets_per_request(awful, 5) == 0.0
    assert 0.5 < auc_targets_per_request(perfect, 5) <= 1.0


def test_site_non_target_bytes(small_env):
    value = site_non_target_bytes(small_env.graph)
    html_bytes = sum(p.size for p in small_env.graph.html_pages())
    assert value >= html_bytes


def test_trace_aggregates_and_truncation():
    records = [
        ("GET", "a", 200, 10, False),
        ("GET", "b", 200, 20, True),
        ("GET", "c", 404, 5, False),
    ]
    trace = _trace(records)
    assert trace.n_requests == 3
    assert trace.n_targets == 1
    assert trace.total_bytes == 35
    assert trace.target_bytes == 20
    assert trace.non_target_bytes == 15
    assert trace.target_urls() == {"b"}
    truncated = trace.truncated(2)
    assert truncated.n_requests == 2
    assert truncated.n_targets == 1
    assert trace.records[2].is_error
