"""Unit tests for the intraprocedural CFG builder (lint phase 3).

Assertions are made against statement *identity* (``block_of`` returns
the block holding a given AST node) instead of hard-coded block indices,
so the tests survive builder-internal renumbering.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint import CFG, build_cfg
from repro.lint.cfg import ENTRY, EXIT


def cfg_of(source: str) -> tuple[CFG, ast.FunctionDef]:
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func), func


def first(tree: ast.AST, kind: type) -> ast.AST:
    return next(n for n in ast.walk(tree) if isinstance(n, kind))


def all_of(tree: ast.AST, kind: type) -> list[ast.AST]:
    return sorted(
        (n for n in ast.walk(tree) if isinstance(n, kind)),
        key=lambda n: n.lineno,
    )


def test_virtual_entry_and_exit_blocks_are_empty():
    cfg, _ = cfg_of("def f():\n    return 1\n")
    assert cfg.blocks[ENTRY].stmts == []
    assert cfg.blocks[EXIT].stmts == []


def test_straight_line_body_is_one_block():
    cfg, func = cfg_of("def f():\n    x = 1\n    y = 2\n    return y\n")
    (body,) = cfg.successors(ENTRY)
    assert cfg.blocks[body].stmts == func.body
    assert cfg.successors(body) == [EXIT]  # return unwinds to EXIT
    assert EXIT in cfg.reachable_from(ENTRY)


def test_if_else_arms_join_before_exit():
    cfg, func = cfg_of(
        """
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
        """
    )
    header = cfg.block_of(first(func, ast.If))
    then_block = cfg.block_of(func.body[0].body[0])
    else_block = cfg.block_of(func.body[0].orelse[0])
    join = cfg.block_of(func.body[1])  # the return statement
    assert sorted(cfg.successors(header)) == sorted([then_block, else_block])
    assert cfg.successors(then_block) == [join]
    assert cfg.successors(else_block) == [join]


def test_while_loop_back_edge_break_and_continue():
    cfg, func = cfg_of(
        """
        def f(items):
            while items:
                if stop(items):
                    break
                if skip(items):
                    continue
                work(items)
            done()
        """
    )
    header = cfg.block_of(first(func, ast.While))
    after = cfg.block_of(func.body[1])  # done()
    body_end = cfg.block_of(func.body[0].body[2])  # work(items)
    assert after in cfg.successors(header)
    assert header in cfg.successors(body_end)  # back edge
    break_block = cfg.block_of(first(func, ast.Break))
    continue_block = cfg.block_of(first(func, ast.Continue))
    assert cfg.successors(break_block) == [after]
    assert cfg.successors(continue_block) == [header]


def test_nested_loops_bind_break_and_continue_to_innermost():
    cfg, func = cfg_of(
        """
        def f(rows):
            for row in rows:
                for cell in row:
                    if cell:
                        break
                else:
                    continue
                break
        """
    )
    outer, inner = all_of(func, ast.For)
    inner_break, outer_break = all_of(func, ast.Break)
    (the_continue,) = all_of(func, ast.Continue)
    # The inner break lands in the inner loop's after-block — the block
    # that holds the outer break — not anywhere in the outer loop.
    assert cfg.successors(cfg.block_of(inner_break)) == \
        [cfg.block_of(outer_break)]
    # The for-else continue targets the *outer* header.
    assert cfg.successors(cfg.block_of(the_continue)) == \
        [cfg.block_of(outer)]
    assert cfg.block_of(inner) != cfg.block_of(outer)


def test_with_body_lives_in_successor_of_header_block():
    cfg, func = cfg_of(
        """
        def f(path):
            with open(path) as fh:
                fh.read()
            after()
        """
    )
    header = cfg.block_of(first(func, ast.With))
    body = cfg.block_of(func.body[0].body[0])  # fh.read()
    tail = cfg.block_of(func.body[1])  # after()
    assert cfg.successors(header) == [body]
    assert tail in cfg.successors(body)
    # The With node itself is a header: its body stays out of the block.
    assert func.body[0].body[0] not in cfg.blocks[header].stmts


def test_return_through_try_finally_runs_the_finally_copy():
    cfg, func = cfg_of(
        """
        def f(path):
            fh = open(path)
            try:
                return fh.read()
            finally:
                fh.close()
        """
    )
    close_stmt = first(func, ast.Try).finalbody[0]
    ret_block = cfg.block_of(first(func, ast.Return))
    # Two out-edges: the return path's finally copy and the implicit
    # uncaught-exception finally copy (finally is inlined per exit
    # path).  Either way control runs fh.close() before reaching EXIT.
    succs = cfg.successors(ret_block)
    assert succs and EXIT not in succs
    for fin_copy in succs:
        assert close_stmt in cfg.blocks[fin_copy].stmts
        assert EXIT in cfg.successors(fin_copy)
    copies = [b.index for b in cfg.blocks if close_stmt in b.stmts]
    assert len(copies) >= 2


def test_exception_edges_reach_handler_from_pre_try_and_body():
    cfg, func = cfg_of(
        """
        def f():
            x = fallback()
            try:
                x = compute()
            except ValueError:
                x = None
            return x
        """
    )
    pre = cfg.block_of(func.body[0])
    body = cfg.block_of(func.body[1].body[0])
    handler = cfg.block_of(first(func, ast.ExceptHandler))
    preds = cfg.predecessors()
    # The pre-try edge keeps the handler seeing pre-statement facts: an
    # exception may fire before the first body statement completes.
    assert pre in preds[handler]
    assert body in preds[handler]


def test_build_is_deterministic():
    source = """
        def f(items):
            total = 0
            for item in items:
                try:
                    total += cost(item)
                except KeyError:
                    continue
                finally:
                    audit(item)
            return total
        """
    shape_a = [
        (b.index, tuple(b.succs), len(b.stmts))
        for b in cfg_of(source)[0].blocks
    ]
    shape_b = [
        (b.index, tuple(b.succs), len(b.stmts))
        for b in cfg_of(source)[0].blocks
    ]
    assert shape_a == shape_b
