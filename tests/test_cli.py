"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_all_experiments_registered():
    expected = {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "table7", "figure4", "figure5", "figure7", "figure15",
        "faultmatrix", "campaignmatrix",
    }
    assert set(EXPERIMENTS) == expected


def test_cli_runs_table1(capsys):
    assert main(["table1", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "computed in" in out


def test_cli_runs_figure5(capsys):
    assert main(["figure5", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_precheck_builds_the_documented_commands():
    """The pre-PR check bundles lint + doc gates (docs/static_analysis.md)."""
    from repro.precheck import build_commands, repo_root

    commands = build_commands(python="PY")
    assert [argv for _, argv in commands] == [
        ["PY", "-m", "repro.lint", "--project", "src"],
        ["PY", "-m", "pytest", "-q", "tests/test_docs.py",
         "tests/test_obs_events.py"],
    ]
    root = repo_root()
    assert (root / "src").is_dir() and (root / "tests").is_dir()


def test_cli_compare(capsys):
    assert main(["compare", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Paired comparison" in out
    assert "SB-CLASSIFIER - BFS" in out


def test_cli_campaign_verb(capsys, tmp_path):
    out_file = tmp_path / "report.json"
    assert main([
        "campaign", "--sites", "cl,qa", "--crawler", "BFS",
        "--scale", "0.05", "--shards", "2", "--workers", "2",
        "--json", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "campaign: 2 sites" in out
    assert "digest" in out
    import json

    payload = json.loads(out_file.read_text())
    assert payload["config"]["crawler"] == "BFS"
    assert len(payload["sites"]) == 2


def test_cli_campaign_rejects_bad_backend():
    with pytest.raises(SystemExit):
        main(["campaign", "--backend", "threads"])
