"""Atomicity and fallback contract of :class:`repro.checkpoint.CheckpointStore`.

docs/checkpoint.md: the manifest is written last, torn writes are
detected via missing-manifest / digest mismatch, and the previous
checkpoint wins.  If checkpoints exist but none validates the store
raises instead of silently starting fresh.
"""

import json

import pytest

from repro.checkpoint import (
    MANIFEST_FIELDS,
    SCHEMA_VERSION,
    CheckpointStore,
    CorruptCheckpointError,
    canonical_json,
    payload_digest,
)


def _payload(step, kind="sb-crawl"):
    return {"kind": kind, "step": step, "state": {"visited": list(range(step))}}


def test_write_then_read_latest_round_trips(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.write_checkpoint(_payload(3), step=3)
    assert path.is_dir()
    loaded = store.read_latest()
    assert loaded is not None
    assert loaded.payload == _payload(3)
    assert loaded.step == 3
    assert loaded.corrupt_skipped == ()


def test_sequence_numbers_increase_and_latest_wins(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    store.write_checkpoint(_payload(2), step=2)
    loaded = store.read_latest()
    assert loaded.step == 2
    assert loaded.seq > 1


def test_manifest_carries_the_documented_fields(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.write_checkpoint(_payload(5), step=5)
    manifest = json.loads((path / "manifest.json").read_text())
    assert set(manifest) == set(MANIFEST_FIELDS)
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["step"] == 5
    assert manifest["digest"] == payload_digest(_payload(5))


def test_empty_store_reads_none(tmp_path):
    assert CheckpointStore(tmp_path).read_latest() is None
    assert CheckpointStore(tmp_path / "never-created").read_latest() is None


def test_torn_state_falls_back_to_previous_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    newest = store.write_checkpoint(_payload(2), step=2)
    # simulate a torn write: state.json truncated mid-payload
    state_path = newest / "state.json"
    state_path.write_text(state_path.read_text()[: 10])
    loaded = store.read_latest()
    assert loaded.step == 1                     # the previous checkpoint wins
    assert newest.name in loaded.corrupt_skipped


def test_missing_manifest_means_incomplete_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    newest = store.write_checkpoint(_payload(2), step=2)
    (newest / "manifest.json").unlink()
    loaded = store.read_latest()
    assert loaded.step == 1
    assert newest.name in loaded.corrupt_skipped


def test_truncated_manifest_is_detected(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    newest = store.write_checkpoint(_payload(2), step=2)
    manifest_path = newest / "manifest.json"
    manifest_path.write_text(manifest_path.read_text()[:-8])
    assert store.read_latest().step == 1


def test_digest_mismatch_is_detected(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    newest = store.write_checkpoint(_payload(2), step=2)
    tampered = _payload(2)
    tampered["state"]["visited"].append(99)
    (newest / "state.json").write_text(canonical_json(tampered))
    assert store.read_latest().step == 1


def test_all_corrupt_raises_instead_of_starting_fresh(tmp_path):
    store = CheckpointStore(tmp_path)
    only = store.write_checkpoint(_payload(1), step=1)
    (only / "state.json").write_text("{not json")
    with pytest.raises(CorruptCheckpointError):
        store.read_latest()


def test_schema_version_drift_is_rejected(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    newest = store.write_checkpoint(_payload(2), step=2)
    manifest_path = newest / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema_version"] = SCHEMA_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    assert store.read_latest().step == 1        # drifted entry is skipped


def test_kind_filter_selects_matching_payloads(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1, kind="shard-progress"), step=1)
    store.write_checkpoint(_payload(2, kind="sb-crawl"), step=2)
    assert store.read_latest(kind="shard-progress").step == 1
    assert store.read_latest(kind="sb-crawl").step == 2
    assert store.read_latest(kind="no-such-kind") is None


def test_read_all_returns_ascending_and_skips_corrupt(tmp_path):
    store = CheckpointStore(tmp_path)
    store.write_checkpoint(_payload(1), step=1)
    middle = store.write_checkpoint(_payload(2), step=2)
    store.write_checkpoint(_payload(3), step=3)
    (middle / "manifest.json").unlink()
    loaded = store.read_all()
    assert [entry.step for entry in loaded] == [1, 3]


def test_prune_old_keeps_the_newest_generations(tmp_path):
    store = CheckpointStore(tmp_path)
    for step in range(1, 6):
        store.write_checkpoint(_payload(step), step=step)
    store.prune_old(keep=2)
    loaded = store.read_all()
    assert [entry.step for entry in loaded] == [4, 5]
    assert store.read_latest().step == 5


def test_store_relocates_freely(tmp_path):
    """Payloads hold no absolute paths: moving the directory must not
    invalidate the digest."""
    import shutil

    original = tmp_path / "a"
    store = CheckpointStore(original)
    store.write_checkpoint(_payload(7), step=7)
    moved = tmp_path / "b"
    shutil.move(str(original), str(moved))
    assert CheckpointStore(moved).read_latest().payload == _payload(7)
