"""Tests for the NP-hardness machinery (Prop. 4): the Set Cover ↔ graph
crawling reduction is validated executably, including as a hypothesis
property over random instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    CrawlInstance,
    SetCoverInstance,
    crawl_budget_for_cover_budget,
    crawl_exists_within_budget,
    min_crawl_cost,
    reduce_set_cover_to_crawl,
    set_cover_exact,
    set_cover_greedy,
)


def _instance(n_elements, subsets):
    return SetCoverInstance(
        n_elements=n_elements,
        subsets=tuple(frozenset(s) for s in subsets),
    )


def test_set_cover_instance_validates_coverage():
    with pytest.raises(ValueError):
        _instance(3, [{0, 1}])


def test_exact_finds_minimum():
    instance = _instance(4, [{0, 1}, {2, 3}, {0, 1, 2}, {3}])
    cover = set_cover_exact(instance)
    assert len(cover) == 2  # {0,1} ∪ {2,3} or {0,1,2} ∪ {3}


def test_greedy_is_feasible():
    instance = _instance(5, [{0, 1, 2}, {2, 3}, {3, 4}, {4}])
    cover = set_cover_greedy(instance)
    covered = set().union(*(instance.subsets[i] for i in cover))
    assert covered == {0, 1, 2, 3, 4}


def test_greedy_at_least_exact():
    instance = _instance(6, [{0, 1, 2, 3}, {0, 4}, {1, 5}, {4, 5}])
    assert len(set_cover_greedy(instance)) >= len(set_cover_exact(instance))


def test_reduction_structure():
    instance = _instance(3, [{0, 1}, {1, 2}])
    crawl = reduce_set_cover_to_crawl(instance)
    assert crawl.n_nodes == 1 + 2 + 3
    assert crawl.root == 0
    assert crawl.targets == frozenset({3, 4, 5})
    # root links every set vertex
    assert set(crawl.successors(0)) == {1, 2}
    # set vertex 1 (= subset {0,1}) links elements 0 and 1 → nodes 3, 4
    assert set(crawl.successors(1)) == {3, 4}


def test_reduction_equivalence_worked_example():
    """Cover of size B exists iff crawl of cost |U| + B + 1 exists."""
    instance = _instance(4, [{0, 1}, {2, 3}, {1, 2}])
    crawl = reduce_set_cover_to_crawl(instance)
    optimum = len(set_cover_exact(instance))  # = 2
    assert min_crawl_cost(crawl) == instance.n_elements + optimum + 1
    assert crawl_exists_within_budget(
        crawl, crawl_budget_for_cover_budget(instance, optimum)
    )
    assert not crawl_exists_within_budget(
        crawl, crawl_budget_for_cover_budget(instance, optimum - 1)
    )


@st.composite
def set_cover_instances(draw):
    n_elements = draw(st.integers(2, 6))
    n_subsets = draw(st.integers(1, 5))
    subsets = [
        draw(
            st.sets(st.integers(0, n_elements - 1), min_size=1,
                    max_size=n_elements)
        )
        for _ in range(n_subsets)
    ]
    # Guarantee coverage by adding singletons for uncovered elements.
    covered = set().union(*subsets)
    for element in range(n_elements):
        if element not in covered:
            subsets.append({element})
    return _instance(n_elements, subsets)


@given(set_cover_instances())
@settings(max_examples=40, deadline=None)
def test_reduction_equivalence_property(instance):
    """Prop. 4 equivalence on random instances: the minimal crawl cost of
    G_sc equals |U| + (minimal cover size) + 1."""
    crawl = reduce_set_cover_to_crawl(instance)
    optimum = len(set_cover_exact(instance))
    assert min_crawl_cost(crawl) == instance.n_elements + optimum + 1


def test_min_crawl_cost_on_plain_graph():
    # r -> a -> t ; r -> t2 : must include a to reach t.
    crawl = CrawlInstance(
        n_nodes=4,
        root=0,
        edges=((0, 1), (1, 2), (0, 3)),
        targets=frozenset({2, 3}),
    )
    assert min_crawl_cost(crawl) == 4


def test_min_crawl_cost_unreachable_target():
    crawl = CrawlInstance(
        n_nodes=3, root=0, edges=((0, 1),), targets=frozenset({2})
    )
    with pytest.raises(ValueError):
        min_crawl_cost(crawl)


def test_too_large_instance_rejected():
    crawl = CrawlInstance(
        n_nodes=40,
        root=0,
        edges=tuple((0, i) for i in range(1, 40)),
        targets=frozenset({39}),
    )
    with pytest.raises(ValueError):
        min_crawl_cost(crawl)
