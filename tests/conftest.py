"""Shared fixtures: small deterministic sites and environments."""

from __future__ import annotations

import pytest

from repro.http.environment import CrawlEnvironment
from repro.webgraph.generator import SiteProfile, generate_site


def make_profile(**overrides) -> SiteProfile:
    """A small, fast site profile with sensible defaults for tests."""
    defaults = dict(
        name="testsite",
        base_url="https://www.testsite.example",
        n_pages=220,
        target_fraction=0.30,
        html_to_target_pct=8.0,
        target_depth_mean=3.0,
        target_depth_std=1.0,
        target_size_mean=500_000.0,
        target_size_std=1_500_000.0,
        n_sections=4,
        seed=7,
    )
    defaults.update(overrides)
    return SiteProfile(**defaults)


@pytest.fixture(scope="session")
def small_site():
    """A ~220-page website graph shared across the test session."""
    return generate_site(make_profile())


@pytest.fixture(scope="session")
def small_env(small_site):
    return CrawlEnvironment(small_site)


@pytest.fixture(scope="session")
def deep_site():
    """A site with a deep catalog chain (ju-like)."""
    return generate_site(
        make_profile(
            name="deepsite",
            base_url="https://www.deepsite.example",
            n_pages=400,
            target_depth_mean=12.0,
            target_depth_std=6.0,
            url_style="node",
        )
    )


@pytest.fixture(scope="session")
def deep_env(deep_site):
    return CrawlEnvironment(deep_site)
