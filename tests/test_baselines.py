"""Tests for the baseline crawlers."""

import pytest

from repro.baselines import (
    BFSCrawler,
    DFSCrawler,
    FocusedCrawler,
    OmniscientCrawler,
    RandomCrawler,
    TPOffCrawler,
    TresCrawler,
)
from repro.webgraph.model import same_site

EXHAUSTIVE = [
    BFSCrawler,
    DFSCrawler,
    lambda: RandomCrawler(seed=0),
    FocusedCrawler,
    lambda: TPOffCrawler(bootstrap_pages=40),
]


@pytest.mark.parametrize("factory", EXHAUSTIVE)
def test_exhaustive_baselines_find_all_targets(small_env, factory):
    result = factory().crawl(small_env)
    assert result.targets == small_env.target_urls()


@pytest.mark.parametrize("factory", EXHAUSTIVE)
def test_baselines_respect_boundary(small_env, factory):
    result = factory().crawl(small_env)
    for record in result.trace.records:
        assert same_site(small_env.root_url, record.url)


@pytest.mark.parametrize("factory", EXHAUSTIVE)
def test_baselines_never_refetch(small_env, factory):
    result = factory().crawl(small_env)
    urls = [r.url for r in result.trace.records if r.method == "GET"]
    assert len(urls) == len(set(urls))


def test_budget_respected(small_env):
    result = BFSCrawler().crawl(small_env, budget=30)
    assert result.n_requests <= 30 + 30  # bounded chain overshoot


def test_bfs_visits_in_depth_order(small_env):
    result = BFSCrawler().crawl(small_env)
    depths = small_env.graph.depths()
    get_depths = [
        depths[r.url]
        for r in result.trace.records
        if r.method == "GET" and r.url in depths
    ]
    # BFS order: depth never decreases by more than the redirect slack.
    running_max = 0
    for depth in get_depths:
        running_max = max(running_max, depth)
        assert depth >= running_max - 2


def test_random_crawler_seed_determinism(small_env):
    a = RandomCrawler(seed=4).crawl(small_env)
    b = RandomCrawler(seed=4).crawl(small_env)
    assert [r.url for r in a.trace.records] == [r.url for r in b.trace.records]


def test_omniscient_is_lower_bound(small_env):
    omniscient = OmniscientCrawler().crawl(small_env)
    assert omniscient.targets == small_env.target_urls()
    # Every request retrieves a target: the unreachable efficiency bound.
    assert omniscient.n_requests == len(small_env.target_urls())
    assert all(r.is_target for r in omniscient.trace.records)


def test_omniscient_budget(small_env):
    result = OmniscientCrawler().crawl(small_env, budget=5)
    assert result.n_requests == 5


def test_tpoff_groups_formed(small_env):
    result = TPOffCrawler(bootstrap_pages=40).crawl(small_env)
    assert result.info["n_groups"] > 1


def test_tres_finds_targets_with_oracle(small_env):
    result = TresCrawler(n_pretraining_pages=50, seed=0).crawl(
        small_env, max_steps=80
    )
    # TRES visits target links immediately thanks to the oracle.
    assert result.n_targets > 0
    assert result.info["steps"] <= 80


def test_tres_full_crawl_small_site(small_env):
    result = TresCrawler(seed=0).crawl(small_env)
    assert result.targets == small_env.target_urls()


def test_focused_learns_something(small_env):
    crawler = FocusedCrawler(retrain_every=20)
    result = crawler.crawl(small_env)
    assert crawler._model.n_updates > 0
    assert result.n_targets > 0
