"""Phase-4 CONC rule tests: one injected-violation fixture per rule
(the acceptance bar for the shard-safety analyzer), calibration checks
for the idioms the rules must NOT flag, and the certificate's
determinism/digest contract."""

from __future__ import annotations

import json
import textwrap

from repro.lint import (Finding, Linter, RuleConfig, build_certificate,
                        certificate_digest, default_conc_rules,
                        render_certificate)

CONC_CODES = {rule.code for rule in default_conc_rules()}

#: Package scaffolding shared by every injected fixture.
SCAFFOLD = {
    "src/repro/__init__.py": "",
    "src/repro/campaign/__init__.py": "",
}


def project_run(tmp_path, tree: dict[str, str]):
    for rel, content in {**SCAFFOLD, **tree}.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return Linter(RuleConfig()).run([tmp_path / "src/repro"], project=True)


def conc_findings(tmp_path, tree: dict[str, str]) -> list[Finding]:
    run = project_run(tmp_path, tree)
    return [f for f in run.findings if f.rule in CONC_CODES]


def lint(source: str, path: str = "src/repro/campaign/mod.py"):
    return Linter(RuleConfig()).check_source(
        textwrap.dedent(source), path=path
    )


def only(findings, code):
    return [f for f in findings if f.rule == code]


# ---------------------------------------------------------------------------
# The rule family
# ---------------------------------------------------------------------------


def test_conc_catalogue_is_stable():
    rules = default_conc_rules()
    assert [r.code for r in rules] == [
        "CONC001", "CONC002", "CONC003", "CONC004", "CONC005",
    ]
    assert all(r.name and r.rationale for r in rules)


# ---------------------------------------------------------------------------
# CONC001 — shared-mutable-reachable
# ---------------------------------------------------------------------------


def test_injected_conc001_mutation_is_caught(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            _SEEN = {}

            def run_shard(site):
                _SEEN[site] = True
                return site
        """,
    }), "CONC001")
    assert len(findings) == 1
    assert findings[0].line == 5
    assert "run_shard" in findings[0].message
    assert "_SEEN" in findings[0].message


def test_conc001_flags_reads_of_contested_state_only(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            _HOT = {}
            FROZEN = {"a": 1}

            def warm(key, value):
                _HOT[key] = value

            def read_hot(key):
                return _HOT.get(key)

            def read_frozen(key):
                return FROZEN.get(key)
        """,
    }), "CONC001")
    lines = sorted(f.line for f in findings)
    assert lines == [6, 9]  # the mutation and the contested read
    assert all("read_frozen" not in f.message for f in findings)


def test_conc001_ignores_unreachable_mutations(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/analysis/__init__.py": "",
        "src/repro/analysis/offline.py": """
            _MEMO = {}

            def memoize_result(key, value):
                _MEMO[key] = value
        """,
    }), "CONC001")
    assert findings == []  # analysis/ is not a worker entry package


# ---------------------------------------------------------------------------
# CONC002 — rng-stream-escape
# ---------------------------------------------------------------------------


def test_injected_conc002_escape_is_caught():
    findings = only(lint("""
        import random

        def make_stream(seed):
            rng = random.Random(seed)
            return rng
    """), "CONC002")
    assert len(findings) == 1
    assert findings[0].line == 6
    assert "derive_rng" in findings[0].message


def test_conc002_self_attribute_store_is_ownership_not_escape():
    assert only(lint("""
        import random

        class Crawler:
            def __init__(self, seed):
                self._rng = random.Random(seed)
    """), "CONC002") == []


def test_conc002_derive_rng_construction_is_sanctioned():
    assert only(lint("""
        from repro.utils.rng import derive_rng

        def make_stream(seed):
            return derive_rng(seed, "campaign")
    """), "CONC002") == []


def test_conc002_container_push_is_an_escape():
    findings = only(lint("""
        import random

        def pool(seeds, registry):
            for seed in seeds:
                rng = random.Random(seed)
                registry.append(rng)
    """), "CONC002")
    assert len(findings) == 1


def test_injected_conc002_shared_module_stream_is_caught(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            import random

            _RNG = random.Random(7)

            def jitter_a():
                return _RNG.random()

            def jitter_b():
                return _RNG.random()
        """,
    }), "CONC002")
    assert len(findings) == 1
    assert findings[0].line == 4  # anchored at the stream assignment
    assert "jitter_a" in findings[0].message


def test_conc002_single_consumer_module_stream_is_quiet(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            import random

            _RNG = random.Random(7)

            def jitter():
                return _RNG.random()
        """,
    }), "CONC002")
    assert findings == []


# ---------------------------------------------------------------------------
# CONC003 — nondeterministic-iteration
# ---------------------------------------------------------------------------


def test_injected_conc003_set_order_into_output_is_caught():
    findings = only(lint("""
        def order(urls):
            pending = set(urls)
            out = []
            for u in pending:
                out.append(u)
            return out
    """), "CONC003")
    assert len(findings) == 1
    assert "sorted" in findings[0].message


def test_conc003_order_free_aggregation_is_quiet():
    assert only(lint("""
        def total(urls):
            pending = set(urls)
            count = 0
            for u in pending:
                count += len(u)
            return count
    """), "CONC003") == []


def test_conc003_sorted_iteration_is_quiet():
    assert only(lint("""
        def order(urls):
            pending = set(urls)
            out = []
            for u in sorted(pending):
                out.append(u)
            return out
    """), "CONC003") == []


def test_conc003_yield_of_loop_variable_fires():
    findings = only(lint("""
        def emit(tags):
            for tag in {t.lower() for t in tags}:
                yield tag
    """), "CONC003")
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# CONC004 — unguarded-global-write
# ---------------------------------------------------------------------------


def test_injected_conc004_global_write_is_caught(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            _TOTAL = 0

            def bump(n):
                global _TOTAL
                _TOTAL = _TOTAL + n
        """,
    }), "CONC004")
    assert len(findings) == 1
    assert findings[0].line == 6
    assert "_TOTAL" in findings[0].message


def test_conc004_unreachable_global_write_is_quiet(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/analysis/__init__.py": "",
        "src/repro/analysis/tally.py": """
            _TOTAL = 0

            def bump(n):
                global _TOTAL
                _TOTAL = _TOTAL + n
        """,
    }), "CONC004")
    assert findings == []


# ---------------------------------------------------------------------------
# CONC005 — hidden-io
# ---------------------------------------------------------------------------


def test_injected_conc005_wall_clock_is_caught(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            import time

            def stamp(event):
                return (event, time.time())
        """,
    }), "CONC005")
    assert len(findings) == 1
    assert findings[0].line == 5
    assert "stamp" in findings[0].message


def test_injected_conc005_filesystem_and_environ_are_caught(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            import os

            def read_cfg(path):
                return open(path).read()

            def api_key():
                return os.environ["REPRO_KEY"]
        """,
    }), "CONC005")
    assert len(findings) == 2


def test_conc005_io_outside_the_worker_surface_is_quiet(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/analysis/__init__.py": "",
        "src/repro/analysis/report.py": """
            def dump(path, payload):
                with open(path, "w") as fh:
                    fh.write(payload)
        """,
    }), "CONC005")
    assert findings == []


# ---------------------------------------------------------------------------
# Suppression parity
# ---------------------------------------------------------------------------


def test_conc_findings_respect_noqa_markers(tmp_path):
    findings = only(conc_findings(tmp_path, {
        "src/repro/campaign/engine.py": """
            _SEEN = {}

            def run_shard(site):
                _SEEN[site] = True  # repro: noqa[CONC001] single-process only
                return site
        """,
    }), "CONC001")
    assert findings == []


# ---------------------------------------------------------------------------
# The certificate
# ---------------------------------------------------------------------------


def test_certificate_is_deterministic_and_digest_sealed(tmp_path):
    tree = {
        "src/repro/campaign/engine.py": """
            def run_shard(site):
                return site
        """,
    }
    docs = []
    for _ in range(2):
        run = project_run(tmp_path, tree)
        docs.append(build_certificate(run, "repro.campaign"))
    assert render_certificate(docs[0]) == render_certificate(docs[1])
    assert docs[0]["digest"] == certificate_digest(docs[0])
    assert docs[0]["summary"]["safe"] is True
    assert all(entry["verdict"] == "pass"
               for entry in docs[0]["rules"].values())


def test_certificate_goes_unsafe_on_violations(tmp_path):
    run = project_run(tmp_path, {
        "src/repro/campaign/engine.py": """
            import time

            def stamp(event):
                return (event, time.time())
        """,
    })
    doc = build_certificate(run, "repro.campaign")
    assert doc["summary"]["safe"] is False
    assert doc["rules"]["CONC005"]["verdict"] == "fail"
    assert doc["findings"][0]["path"].startswith("src/")  # repo-relative


def test_certificate_symbols_cover_the_target_package(tmp_path):
    run = project_run(tmp_path, {
        "src/repro/campaign/engine.py": """
            _STATE = {}

            def pure_fn(x):
                return x

            def writer(k, v):
                _STATE[k] = v
        """,
    })
    doc = build_certificate(run, "repro.campaign")
    by_name = {s["qualname"]: s for s in doc["symbols"]}
    assert by_name["pure_fn"]["effect"] == "pure"
    assert by_name["writer"]["effect"] == "mutates-module-state"
    assert by_name["writer"]["worker_reachable"] is True


def test_committed_certificate_matches_regeneration():
    """The committed bench_results/shard_safety.json must be exactly
    what a fresh run over the tree emits — same contract CI enforces
    via the shard-safety job, kept here so drift fails locally first."""
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    committed_path = repo / "bench_results" / "shard_safety.json"
    assert committed_path.exists(), "committed certificate missing"
    committed = json.loads(committed_path.read_text(encoding="utf-8"))
    assert committed["digest"] == certificate_digest(committed)

    run = Linter(RuleConfig()).run(
        [repo / "src" / "repro"], project=True,
        reference_roots=[repo / name for name in
                         ("src", "tests", "examples", "benchmarks")],
    )
    regenerated = build_certificate(run, "repro.campaign")
    assert regenerated["digest"] == committed["digest"], (
        "shard-safety certificate drift: regenerate with "
        "python -m repro.lint --shard-safety repro.campaign --no-cache "
        "src/repro"
    )
