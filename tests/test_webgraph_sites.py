"""Tests for the 18 paper site profiles."""

import pytest

from repro.webgraph.sites import (
    FULLY_CRAWLED_SITES,
    PAPER_SITES,
    PAPER_STATS,
    load_paper_site,
    paper_site_profiles,
)


def test_eighteen_sites():
    assert len(PAPER_SITES) == 18
    assert set(PAPER_SITES) == set(PAPER_STATS)


def test_eleven_fully_crawled():
    assert len(FULLY_CRAWLED_SITES) == 11
    assert set(FULLY_CRAWLED_SITES) == {
        "be", "cl", "cn", "ed", "in", "is", "ju", "nc", "oe", "ok", "qa",
    }


def test_profiles_in_order():
    profiles = paper_site_profiles()
    assert [p.name for p in profiles] == sorted(PAPER_SITES)


def test_unknown_site_raises():
    with pytest.raises(KeyError):
        load_paper_site("zz")


@pytest.mark.parametrize("site", ["qa", "cl"])
def test_small_sites_generate_and_validate(site):
    graph = load_paper_site(site, scale=0.5)
    assert graph.validate() == []
    stats = graph.statistics()
    paper = PAPER_STATS[site]
    paper_density = paper.targets_k / paper.available_k
    assert abs(stats.target_density - paper_density) < 0.12


def test_scale_parameter_shrinks():
    big = load_paper_site("qa", scale=1.0)
    small = load_paper_site("qa", scale=0.3)
    assert len(small) < len(big)


def test_relative_size_ordering_preserved():
    sizes = {name: profile.n_pages for name, profile in PAPER_SITES.items()}
    assert sizes["qa"] < sizes["cl"] < sizes["be"] < sizes["ju"]
    assert sizes["ju"] < sizes["jp"]


def test_deep_sites_are_deep():
    assert PAPER_SITES["ju"].target_depth_mean > 3 * PAPER_SITES["ce"].target_depth_mean
    assert PAPER_SITES["in"].target_depth_mean > 3 * PAPER_SITES["ce"].target_depth_mean


def test_multilingual_flags_match_paper():
    for name, profile in PAPER_SITES.items():
        assert (len(profile.languages) > 1) == PAPER_STATS[name].multilingual
