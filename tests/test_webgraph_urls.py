"""Tests for URL synthesis."""

import random

import pytest

from repro.webgraph.mime import is_blocklisted_extension
from repro.webgraph.model import same_site
from repro.webgraph.urls import UrlFactory, section_slugs


@pytest.mark.parametrize("style", ["path", "extension", "node", "query"])
def test_urls_unique_and_in_site(style):
    factory = UrlFactory("https://www.site.example", style=style, seed=1)
    root = factory.root()
    urls = {root}
    for _ in range(200):
        for maker in (
            lambda: factory.html_url("en", "data"),
            lambda: factory.target_url("en", "data", "text/csv"),
            lambda: factory.section_url("en", "data"),
            lambda: factory.error_url("en", "data"),
        ):
            url = maker()
            assert url not in urls, f"duplicate URL in style {style}"
            urls.add(url)
            assert same_site(root, url)


def test_extension_style_targets_have_extensions():
    factory = UrlFactory("https://www.site.example", style="extension", seed=2)
    factory.root()
    url = factory.target_url("en", "data", "application/pdf")
    assert url.endswith(".pdf")
    html = factory.html_url("en", "data")
    assert html.endswith(".html")


def test_node_style_is_extensionless():
    factory = UrlFactory("https://www.site.example", style="node", seed=3)
    factory.root()
    target = factory.target_url("en", "data", "application/pdf")
    assert "." not in target.rsplit("/", 1)[-1]
    html = factory.html_url("en", "data")
    assert "/node/" in html


def test_media_urls_blocklisted():
    factory = UrlFactory("https://www.site.example", seed=4)
    factory.root()
    for _ in range(20):
        assert is_blocklisted_extension(factory.media_url("data"))


def test_offsite_urls_are_offsite():
    factory = UrlFactory("https://www.site.example", seed=5)
    root = factory.root()
    assert not same_site(root, factory.offsite_url())


def test_multilingual_prefix():
    factory = UrlFactory(
        "https://www.site.example", languages=("en", "fr"), seed=6
    )
    factory.root()
    url = factory.html_url("fr", "donnees")
    assert "/fr/" in url


def test_unknown_style_rejected():
    with pytest.raises(ValueError):
        UrlFactory("https://www.site.example", style="bogus")


def test_section_slugs_distinct():
    rng = random.Random(0)
    slugs = section_slugs("en", 15, rng)
    assert len(slugs) == 15
    assert len(set(slugs)) == 15


def test_section_slugs_unknown_language_falls_back():
    rng = random.Random(0)
    assert section_slugs("xx", 3, rng)
