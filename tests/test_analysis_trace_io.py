"""Tests for crawl-trace persistence."""

import json

import pytest

from repro.analysis.trace import CrawlRecord, CrawlTrace
from repro.analysis.trace_io import load_trace, save_trace


def _trace():
    trace = CrawlTrace(crawler="SB-CLASSIFIER", site="ju")
    trace.append(CrawlRecord("GET", "https://x.example/", 200, 1000, False))
    trace.append(CrawlRecord("HEAD", "https://x.example/a", 200, 280, False))
    trace.append(CrawlRecord("GET", "https://x.example/f.csv", 200, 512, True))
    trace.append(CrawlRecord("GET", "https://x.example/dead", 404, 100, False))
    trace.stopped_early_at = 3
    return trace


def test_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    original = _trace()
    save_trace(original, path)
    loaded = load_trace(path)
    assert loaded.crawler == original.crawler
    assert loaded.site == original.site
    assert loaded.stopped_early_at == 3
    assert loaded.records == original.records
    assert loaded.n_targets == 1


def test_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    save_trace(CrawlTrace(crawler="c", site="s"), path)
    loaded = load_trace(path)
    assert loaded.records == []


def test_truncated_file_detected(tmp_path):
    path = tmp_path / "trace.jsonl"
    save_trace(_trace(), path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_bad_format_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": 99, "n_records": 0}) + "\n")
    with pytest.raises(ValueError, match="format"):
        load_trace(path)


def test_empty_file(tmp_path):
    path = tmp_path / "nothing.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_trace(path)


def test_metrics_survive_round_trip(tmp_path):
    from repro.analysis.metrics import requests_to_fraction

    path = tmp_path / "trace.jsonl"
    original = _trace()
    save_trace(original, path)
    loaded = load_trace(path)
    assert requests_to_fraction(loaded, 1, 10) == requests_to_fraction(
        original, 1, 10
    )
