"""Tests for deterministic RNG derivation."""

from repro.utils.rng import derive_rng, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")


def test_derive_seed_varies_with_tags():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a", "b") != derive_seed(42, "ab")


def test_derive_seed_varies_with_parent():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_nearby_parent_seeds_decorrelated():
    # Streams from adjacent parent seeds should differ immediately.
    a = derive_rng(100, "t").random()
    b = derive_rng(101, "t").random()
    assert a != b


def test_derive_rng_reproducible_stream():
    r1 = derive_rng(5, "stream")
    r2 = derive_rng(5, "stream")
    assert [r1.random() for _ in range(10)] == [r2.random() for _ in range(10)]


def test_tag_separator_prevents_collisions():
    # ("ab", "c") must differ from ("a", "bc") despite equal concatenation.
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
