"""Tests for the multi-site campaign scheduler."""

import pytest

from repro.campaign import SiteWorkload, schedule_campaign


def _sites(counts):
    return [
        SiteWorkload(site=f"s{i}", n_requests=n) for i, n in enumerate(counts)
    ]


def test_empty_campaign():
    report = schedule_campaign([], n_workers=2)
    assert report.makespan_seconds == 0.0
    assert report.speedup == 1.0


def test_single_site_is_politeness_bound():
    report = schedule_campaign(_sites([100]), n_workers=8,
                               politeness_delay=1.0, service_time=0.01)
    # One site cannot be parallelised: ~99 politeness gaps + last request.
    assert report.makespan_seconds == pytest.approx(99.0 + 0.01, abs=0.5)
    assert report.speedup == pytest.approx(1.0, abs=0.1)


def test_many_sites_parallelise():
    report = schedule_campaign(_sites([100] * 8), n_workers=8,
                               politeness_delay=1.0, service_time=0.01)
    sequential = report.sequential_seconds
    assert sequential == pytest.approx(800.0, rel=0.05)
    # Eight independent sites with eight workers finish in ~one site-time.
    assert report.makespan_seconds < sequential / 6
    assert report.speedup > 6


def test_workers_cap_parallelism():
    two = schedule_campaign(_sites([50] * 8), n_workers=2,
                            politeness_delay=0.0, service_time=1.0)
    eight = schedule_campaign(_sites([50] * 8), n_workers=8,
                              politeness_delay=0.0, service_time=1.0)
    # Without politeness, makespan scales with 1/workers.
    assert two.makespan_seconds == pytest.approx(400 / 2, rel=0.05)
    assert eight.makespan_seconds == pytest.approx(400 / 8, rel=0.05)


def test_zero_request_sites_finish_instantly():
    report = schedule_campaign(_sites([0, 10]), n_workers=1)
    assert report.per_site_finish["s0"] == 0.0
    assert report.per_site_finish["s1"] > 0.0


def test_makespan_at_least_largest_site():
    report = schedule_campaign(_sites([200, 10, 10]), n_workers=16,
                               politeness_delay=1.0, service_time=0.0)
    assert report.makespan_seconds >= 199.0


def test_invalid_workers():
    with pytest.raises(ValueError):
        schedule_campaign(_sites([1]), n_workers=0)


def test_utilisation_bounded():
    report = schedule_campaign(_sites([30, 30, 30]), n_workers=3,
                               politeness_delay=0.5, service_time=0.1)
    assert 0.0 < report.utilisation <= 1.0


def test_from_trace(small_env):
    from repro.baselines import BFSCrawler

    result = BFSCrawler().crawl(small_env)
    workload = SiteWorkload.from_trace(result.trace)
    assert workload.n_requests == result.n_requests
    assert workload.total_bytes == result.trace.total_bytes
    report = schedule_campaign([workload], n_workers=2)
    assert report.makespan_seconds > 0
    assert "campaign" in report.render()


def test_bytes_affect_service_time():
    fast = schedule_campaign(
        [SiteWorkload("a", 10, total_bytes=0)],
        n_workers=1, politeness_delay=0.0, service_time=0.01,
    )
    slow = schedule_campaign(
        [SiteWorkload("a", 10, total_bytes=10_000_000_000)],
        n_workers=1, politeness_delay=0.0, service_time=0.01,
    )
    assert slow.makespan_seconds > fast.makespan_seconds


def test_campaign_lower_bounds_property():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=6),
        st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def check(counts, workers):
        service = 0.05
        delay = 1.0
        report = schedule_campaign(
            _sites(counts), n_workers=workers,
            politeness_delay=delay, service_time=service,
        )
        # Lower bound 1: the largest site's politeness chain.
        largest = max(counts)
        if largest > 0:
            assert report.makespan_seconds >= (largest - 1) * delay
        # Lower bound 2: total service time split over workers.
        total_service = sum(counts) * service
        assert report.makespan_seconds >= total_service / workers - 1e-9
        # Upper bound: fully sequential execution.
        assert report.makespan_seconds <= report.sequential_seconds + service

    check()


def test_report_is_identical_under_permuted_workload_order():
    """The determinism property the shard-safety certificate protects:
    ``schedule_campaign`` is a pure function of the workload *set* —
    makespan, per-site finishes and even the float-summed sequential
    baseline must be bit-identical however the input list is ordered."""
    from repro.utils.rng import derive_rng

    workloads = [
        SiteWorkload(site=f"site-{i:02d}", n_requests=5 + (i * 7) % 23,
                     total_bytes=(i * 131071) % 900_000)
        for i in range(12)
    ]
    baseline = schedule_campaign(workloads, n_workers=3,
                                 politeness_delay=0.7, service_time=0.03)
    rng = derive_rng(1234, "campaign", "permutation")
    for _ in range(5):
        shuffled = list(workloads)
        rng.shuffle(shuffled)
        report = schedule_campaign(shuffled, n_workers=3,
                                   politeness_delay=0.7, service_time=0.03)
        assert report.makespan_seconds == baseline.makespan_seconds
        assert report.sequential_seconds == baseline.sequential_seconds
        assert report.per_site_finish == baseline.per_site_finish
        assert report.worker_busy_seconds == baseline.worker_busy_seconds


def test_workload_rejects_negative_counts():
    """Regression: a corrupt or hand-built trace summary must fail fast,
    not feed negative request counts into the scheduler."""
    with pytest.raises(ValueError, match="n_requests"):
        SiteWorkload(site="bad", n_requests=-1)
    with pytest.raises(ValueError, match="total_bytes"):
        SiteWorkload(site="bad", n_requests=1, total_bytes=-5)


def test_from_trace_accepts_any_tracelike():
    """``from_trace`` is typed against the structural TraceLike protocol
    — a plain stand-in with the three properties works."""
    from repro.campaign import TraceLike

    class Recorded:
        site = "stub"
        n_requests = 7
        total_bytes = 1234

    workload = SiteWorkload.from_trace(Recorded())
    assert isinstance(Recorded(), TraceLike)
    assert (workload.site, workload.n_requests, workload.total_bytes) == (
        "stub", 7, 1234
    )
