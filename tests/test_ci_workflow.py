"""Sanity checks for .github/workflows/ci.yml.

CI configuration cannot be executed locally, but most workflow rot is
structural: a renamed job, a dropped Python version, a command that
drifted from the documented tier-1 invocation.  Parsing the YAML and
asserting the load-bearing parts catches that class of breakage in the
ordinary test run.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


def _load():
    return yaml.safe_load(WORKFLOW.read_text(encoding="utf-8"))


def test_workflow_parses_and_declares_all_jobs():
    doc = _load()
    assert set(doc["jobs"]) == {
        "tests", "lint", "shard-safety", "campaign-smoke",
        "resume-equivalence", "precheck", "bench", "bench-smoke",
    }


def test_workflow_cancels_superseded_runs():
    """A new push must cancel the in-flight run for the same ref instead
    of queueing behind it."""
    doc = _load()
    concurrency = doc["concurrency"]
    assert "${{ github.ref }}" in concurrency["group"]
    assert concurrency["cancel-in-progress"] is True


def test_every_job_has_a_timeout():
    """A hung job must never hold the concurrency group for the runner
    default of six hours — every job carries an explicit timeout."""
    doc = _load()
    for name, job in doc["jobs"].items():
        minutes = job.get("timeout-minutes")
        assert isinstance(minutes, int), f"job {name} has no timeout-minutes"
        assert 0 < minutes <= 60, f"job {name} timeout out of range"


def test_actions_are_pinned_to_full_version_tags():
    """Every `uses:` reference must pin a full MAJOR.MINOR.PATCH tag —
    floating major tags silently change the executed action."""
    import re

    doc = _load()
    for name, job in doc["jobs"].items():
        for step in job["steps"]:
            uses = step.get("uses")
            if uses is None:
                continue
            assert re.search(r"@v\d+\.\d+\.\d+$", uses), (
                f"job {name}: unpinned action reference {uses!r}"
            )


def test_tests_job_runs_tier1_on_both_pythons():
    doc = _load()
    tests = doc["jobs"]["tests"]
    assert tests["strategy"]["matrix"]["python-version"] == ["3.11", "3.12"]
    commands = [step.get("run", "") for step in tests["steps"]]
    assert any("python -m pytest -x -q" in c for c in commands)
    # tier-1 needs the src layout on the path
    assert doc["env"]["PYTHONPATH"] == "src"


def test_setup_python_uses_pip_cache():
    doc = _load()
    for job in doc["jobs"].values():
        for step in job["steps"]:
            if "setup-python" in str(step.get("uses", "")):
                assert step["with"]["cache"] == "pip"


def test_lint_and_precheck_run_the_documented_gates():
    doc = _load()
    lint_cmds = [s.get("run", "") for s in doc["jobs"]["lint"]["steps"]]
    assert any("python -m repro.lint --project --format json src" in c
               for c in lint_cmds)
    pre_cmds = [s.get("run", "") for s in doc["jobs"]["precheck"]["steps"]]
    assert any("python -m repro.precheck --ci" in c for c in pre_cmds)


def test_lint_job_archives_report_and_summarises_findings():
    """The lint job must (a) write the JSON report, (b) upload it as a
    workflow artifact even on failure, (c) append the findings count to
    the step summary, and (d) still propagate the lint exit status."""
    doc = _load()
    steps = doc["jobs"]["lint"]["steps"]
    commands = "\n".join(s.get("run", "") for s in steps)
    assert "lint-report.json" in commands
    assert "GITHUB_STEP_SUMMARY" in commands
    assert 'exit "$status"' in commands
    uploads = [s for s in steps
               if "upload-artifact" in str(s.get("uses", ""))]
    assert len(uploads) == 1
    assert uploads[0]["if"] == "always()"
    assert "lint-report.json" in uploads[0]["with"]["path"]


def test_lint_job_renders_and_uploads_sarif():
    """The same findings go out as SARIF 2.1.0 for code-scanning
    consumers: rendered even when the lint step failed, never changing
    the job verdict, and included in the uploaded artifact."""
    doc = _load()
    steps = doc["jobs"]["lint"]["steps"]
    sarif_steps = [s for s in steps
                   if "--format sarif" in s.get("run", "")]
    assert len(sarif_steps) == 1
    step = sarif_steps[0]
    assert step["if"] == "always()"          # render even after findings
    assert "|| true" in step["run"]          # but never flip the verdict
    assert "lint-report.sarif" in step["run"]
    uploads = [s for s in steps
               if "upload-artifact" in str(s.get("uses", ""))]
    assert "lint-report.sarif" in uploads[0]["with"]["path"]


def test_shard_safety_job_enforces_certificate_drift_gate():
    """The shard-safety job regenerates the phase-4 certificate with the
    cache bypassed and fails on any byte of drift from the committed
    bench_results/shard_safety.json."""
    doc = _load()
    steps = doc["jobs"]["shard-safety"]["steps"]
    commands = "\n".join(s.get("run", "") for s in steps)
    assert "--shard-safety repro.campaign" in commands
    assert "--no-cache" in commands
    assert "git diff --exit-code bench_results/shard_safety.json" in commands


def test_campaign_smoke_job_enforces_backend_equivalence():
    """The campaign-smoke job must run `repro campaign --backend both`
    (which exits non-zero unless the serial and multiprocessing reports
    are byte-identical), check cross-invocation byte-stability with cmp,
    and archive the report."""
    doc = _load()
    steps = doc["jobs"]["campaign-smoke"]["steps"]
    commands = "\n".join(s.get("run", "") for s in steps)
    assert "python -m repro campaign" in commands
    assert "--backend both" in commands
    assert "cmp campaign-a.json campaign-b.json" in commands
    uploads = [s for s in steps
               if "upload-artifact" in str(s.get("uses", ""))]
    assert len(uploads) == 1
    assert uploads[0]["if"] == "always()"


def test_resume_equivalence_job_enforces_kill_and_resume_gate():
    """The resume-equivalence job must (a) record an uninterrupted
    reference through BOTH backends, (b) run a checkpointed campaign and
    SIGTERM it, (c) resume with --resume and compare byte-for-byte
    against the reference, and (d) upload the checkpoint dir only on
    failure (docs/checkpoint.md)."""
    doc = _load()
    steps = doc["jobs"]["resume-equivalence"]["steps"]
    commands = "\n".join(s.get("run", "") for s in steps)
    assert "--backend both" in commands
    assert "reference.json" in commands
    assert "--checkpoint" in commands
    assert "--checkpoint-every" in commands
    assert "kill -TERM" in commands
    assert "--resume" in commands
    assert "resumed.json" in commands
    # the interrupted run's exit 1 (partial report) must be tolerated
    kill_step = next(s for s in steps if "kill -TERM" in s.get("run", ""))
    assert "|| true" in kill_step["run"]
    uploads = [s for s in steps
               if "upload-artifact" in str(s.get("uses", ""))]
    assert len(uploads) == 1
    assert uploads[0]["if"] == "failure()"
    assert "ckpt" in uploads[0]["with"]["path"]


def test_bench_job_always_runs_and_uploads_trajectory_artifact():
    """The hot-path bench job must run on every CI event (no `if` gate),
    at reduced scale without enforcing the regression gate, and archive
    its BENCH_<n>.json as the named bench-trajectory artifact."""
    doc = _load()
    bench = doc["jobs"]["bench"]
    assert "if" not in bench  # every push/PR accumulates a trajectory point
    scale = float(bench["env"]["REPRO_BENCH_SCALE"])
    assert 0 < scale < 1.0
    commands = "\n".join(s.get("run", "") for s in bench["steps"])
    assert "python -m repro bench" in commands
    assert "--gate-against" not in commands  # reduced scale: no gate
    uploads = [s for s in bench["steps"]
               if "upload-artifact" in str(s.get("uses", ""))]
    assert len(uploads) == 1
    assert uploads[0]["if"] == "always()"
    assert uploads[0]["with"]["name"] == "bench-trajectory"


def test_bench_smoke_enforces_gate_at_full_scale():
    """The schedule/label-gated job is where the regression gate has
    teeth: a full-scale `repro bench` run compared against the committed
    baseline document."""
    doc = _load()
    steps = doc["jobs"]["bench-smoke"]["steps"]
    gate_steps = [s for s in steps
                  if "--gate-against" in s.get("run", "")]
    assert len(gate_steps) == 1
    step = gate_steps[0]
    assert "bench_results/BENCH_9.json" in step["run"]
    # The gate only has meaning at full scale (cross-scale pages/sec are
    # not comparable) — the step must override the job-level smoke scale.
    assert float(step["env"]["REPRO_BENCH_SCALE"]) == 1.0


def test_bench_baseline_document_is_committed():
    """The gate needs a committed baseline: bench_results/BENCH_9.json
    must exist, parse, and carry the gated number."""
    import json

    baseline = (Path(__file__).resolve().parent.parent
                / "bench_results" / "BENCH_9.json")
    assert baseline.exists(), "committed bench baseline missing"
    doc = json.loads(baseline.read_text())
    assert doc["schema_version"] == 1
    assert doc["scale"] == 1.0
    assert doc["e2e_pages_per_sec"] > 0


def test_bench_smoke_is_gated_and_scaled_down():
    doc = _load()
    bench = doc["jobs"]["bench-smoke"]
    assert "schedule" in bench["if"]
    assert "bench" in bench["if"]
    scale = float(bench["env"]["REPRO_BENCH_SCALE"])
    assert 0 < scale < 1.0
    commands = [s.get("run", "") for s in bench["steps"]]
    assert any("--benchmark-json" in c for c in commands)
    uploads = [s for s in bench["steps"] if "upload-artifact" in str(s.get("uses", ""))]
    assert uploads


def test_workflow_commands_reference_real_modules():
    # the modules the workflow invokes must exist and import cleanly
    import repro.lint      # noqa: F401
    import repro.precheck  # noqa: F401
