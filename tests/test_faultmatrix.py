"""Tests for the fault-matrix experiment (recall/cost vs fault rate)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.faultmatrix import compute_fault_matrix

SCALE = 0.15
CONFIG = ExperimentConfig(scale=SCALE, sb_runs=1, seeds=(1,))
RATES = (0.0, 0.3)


def _compute():
    return compute_fault_matrix(CONFIG, site="cl", crawler="BFS",
                                rates=RATES, seed=1)


def test_fault_matrix_shape_and_control_column():
    result = _compute()
    assert result.rates == list(RATES)
    assert len(result.recall_pct) == len(RATES)
    # control column: the injector is disarmed (organic 5xx pages can
    # still drive retries, but nothing is ever *injected*)
    assert result.faults_injected[0] == 0
    assert result.recall_pct[0] > 0


def test_fault_matrix_faults_cost_requests():
    result = _compute()
    # at a 30% fault rate the injector must have fired, and the retry
    # stack must have issued extra requests relative to the control
    assert result.faults_injected[1] > 0
    assert result.retries[1] > 0
    assert result.requests[1] > result.requests[0]


def test_fault_matrix_is_deterministic():
    a = _compute()
    b = _compute()
    assert a == b


def test_fault_matrix_render_mentions_every_rate():
    text = _compute().render()
    assert "Fault matrix" in text
    for rate in RATES:
        assert f"rate={rate:g}" in text
    assert "Recall" in text


def test_fault_matrix_registered_as_cli_experiment():
    from repro.__main__ import EXPERIMENTS

    assert "faultmatrix" in EXPERIMENTS
