"""Volume-cost-model integration tests (the paper's second cost
function ω, Sec. 2.2 / Table 3)."""

import pytest

from repro.analysis.metrics import non_target_volume_fraction, site_non_target_bytes
from repro.baselines import BFSCrawler
from repro.core.crawler import SBConfig, sb_oracle
from repro.http.environment import CrawlEnvironment
from repro.webgraph.sites import load_paper_site


@pytest.fixture(scope="module")
def wo_env():
    return CrawlEnvironment(load_paper_site("wo", scale=0.35))


def test_sb_beats_bfs_on_volume_metric(wo_env):
    total_target = wo_env.total_target_bytes()
    total_non_target = site_non_target_bytes(wo_env.graph)
    sb = sb_oracle(SBConfig(seed=1)).crawl(wo_env)
    bfs = BFSCrawler().crawl(wo_env)
    sb_metric = non_target_volume_fraction(sb.trace, total_target, total_non_target)
    bfs_metric = non_target_volume_fraction(bfs.trace, total_target, total_non_target)
    assert sb_metric < bfs_metric


def test_volume_budget_stops_before_request_budget(wo_env):
    """A tight byte budget cuts the crawl long before the site ends."""
    full = sb_oracle(SBConfig(seed=1)).crawl(wo_env)
    budget = full.trace.total_bytes / 10
    capped = sb_oracle(SBConfig(seed=1)).crawl(
        wo_env, budget=budget, cost_model="volume"
    )
    assert capped.n_requests < full.n_requests
    # The budget is checked before each request; the crawl can overshoot
    # by at most the in-flight response (sizes are only known on arrival).
    largest_response = max(r.size for r in capped.trace.records)
    assert capped.trace.total_bytes <= budget + largest_response


def test_target_volume_dominates_for_sb(wo_env):
    """SB downloads mostly target bytes; BFS mostly page bytes — within
    an equal-request prefix of the crawl."""
    sb = sb_oracle(SBConfig(seed=1)).crawl(wo_env)
    bfs = BFSCrawler().crawl(wo_env)
    horizon = min(sb.n_requests, bfs.n_requests) // 2
    sb_prefix = sb.trace.truncated(horizon)
    bfs_prefix = bfs.trace.truncated(horizon)
    assert sb_prefix.target_bytes > bfs_prefix.target_bytes


def test_ledger_matches_trace(wo_env):
    result = sb_oracle(SBConfig(seed=2)).crawl(wo_env)
    # The trace's byte totals must reconcile with the volume the ledger
    # accumulated (both fed by the same client).
    assert result.trace.total_bytes == (
        result.trace.target_bytes + result.trace.non_target_bytes
    )
