"""Tests for the online URL classifier (Algorithm 2)."""

import pytest

from repro.core.url_classifier import (
    LinkContext,
    OnlineUrlClassifier,
    OracleUrlClassifier,
    UrlClass,
)
from repro.webgraph.model import PageKind


def _feed(classifier, n_html=20, n_target=20):
    for i in range(max(n_html, n_target)):
        if i < n_html:
            classifier.add_labeled(
                f"https://s.example/pages/article-{i}", UrlClass.HTML
            )
        if i < n_target:
            classifier.add_labeled(
                f"https://s.example/files/data-{i}.csv", UrlClass.TARGET
            )


def test_initial_phase_until_batch_and_both_classes():
    classifier = OnlineUrlClassifier(batch_size=10)
    assert classifier.initial_training_phase
    for i in range(10):
        classifier.add_labeled(f"https://s.example/p{i}", UrlClass.HTML)
    # batch trained but only one class seen: still in initial phase
    assert classifier.n_batches_trained == 1
    assert classifier.initial_training_phase
    for i in range(10):
        classifier.add_labeled(f"https://s.example/f{i}.csv", UrlClass.TARGET)
    assert not classifier.initial_training_phase


def test_neither_labels_dropped():
    classifier = OnlineUrlClassifier(batch_size=5)
    for i in range(20):
        classifier.add_labeled(f"https://s.example/x{i}", UrlClass.NEITHER)
    assert classifier.n_batches_trained == 0  # batch never fills


def test_learns_html_vs_target():
    classifier = OnlineUrlClassifier(batch_size=10, seed=0)
    _feed(classifier, 40, 40)
    assert classifier.classify("https://s.example/files/new.csv") is UrlClass.TARGET
    assert classifier.classify("https://s.example/pages/new-article") is UrlClass.HTML


@pytest.mark.parametrize("model", ["LR", "SVM", "NB", "PA"])
def test_all_model_variants_work(model):
    classifier = OnlineUrlClassifier(batch_size=10, model=model, seed=0)
    _feed(classifier, 40, 40)
    assert classifier.classify("https://s.example/files/other.csv") is UrlClass.TARGET


def test_unknown_model_rejected():
    with pytest.raises(ValueError):
        OnlineUrlClassifier(model="DeepNet")


def test_unknown_feature_set_rejected():
    with pytest.raises(ValueError):
        OnlineUrlClassifier(feature_set="EVERYTHING")


def test_url_cont_uses_context():
    classifier = OnlineUrlClassifier(
        batch_size=10, feature_set="URL_CONT", seed=0
    )
    context_target = LinkContext(anchor="Download CSV", dom_path="ul.files li a")
    context_html = LinkContext(anchor="Read more", dom_path="div.article p a")
    for i in range(30):
        classifier.add_labeled(f"https://s.example/f{i}", UrlClass.TARGET, context_target)
        classifier.add_labeled(f"https://s.example/p{i}", UrlClass.HTML, context_html)
    # Same URL shape, distinguishable only through context features.
    assert classifier.classify("https://s.example/f999", context_target) is UrlClass.TARGET
    assert classifier.classify("https://s.example/p999", context_html) is UrlClass.HTML


def test_replay_buffer_bounded():
    classifier = OnlineUrlClassifier(batch_size=10, replay_buffer=25)
    _feed(classifier, 100, 100)
    assert len(classifier._replay) <= 25


def test_replay_disabled_is_pure_incremental():
    classifier = OnlineUrlClassifier(batch_size=10, replay_buffer=0)
    _feed(classifier, 30, 30)
    assert len(classifier._replay) == 0


def test_oracle_classifier(small_site):
    oracle = OracleUrlClassifier(small_site)
    for page in small_site.pages():
        label = oracle.classify(page.url)
        if page.kind is PageKind.HTML:
            assert label is UrlClass.HTML
        elif page.kind is PageKind.TARGET:
            assert label is UrlClass.TARGET
        elif page.kind is PageKind.ERROR:
            assert label is UrlClass.NEITHER
    assert oracle.classify("https://nowhere.example/x") is UrlClass.NEITHER


def test_oracle_resolves_redirects(small_site):
    oracle = OracleUrlClassifier(small_site)
    redirect = next(
        p for p in small_site.pages() if p.kind is PageKind.REDIRECT
    )
    destination = small_site.page(redirect.redirect_to)
    assert oracle.classify(redirect.url).value.lower() == (
        "html" if destination.kind is PageKind.HTML else "target"
    )


def test_prequential_accuracy_tracks_learning():
    classifier = OnlineUrlClassifier(batch_size=10, seed=0)
    _feed(classifier, 200, 200)
    # After warm-up the model separates the two URL families easily.
    assert classifier.prequential_accuracy() > 0.8
    assert classifier.recent_accuracy() > 0.95


def test_prequential_zero_before_training():
    classifier = OnlineUrlClassifier(batch_size=10)
    assert classifier.prequential_accuracy() == 0.0
    assert classifier.recent_accuracy() == 0.0


def test_prequential_window_bounded():
    classifier = OnlineUrlClassifier(batch_size=10, seed=0)
    _feed(classifier, 600, 600)
    assert len(classifier._prequential_window) <= 500
