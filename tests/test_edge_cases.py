"""Edge-case and failure-injection tests across modules."""

import math

import pytest

from repro.analysis.metrics import requests_to_fraction
from repro.analysis.trace import CrawlRecord, CrawlTrace
from repro.baselines import BFSCrawler, DFSCrawler, RandomCrawler
from repro.core.crawler import SBConfig, sb_classifier, sb_oracle
from repro.experiments.report import render_pairs_table
from repro.http.environment import CrawlEnvironment
from repro.webgraph.generator import SiteProfile, generate_site
from tests.conftest import make_profile


# -- tiny and degenerate sites ---------------------------------------------

def test_minimal_site_generates():
    graph = generate_site(make_profile(name="mini", n_pages=40, n_sections=2))
    assert graph.validate() == []
    assert len(graph.target_pages()) >= 1


def test_single_language_single_section():
    graph = generate_site(
        make_profile(name="mono", n_pages=60, n_sections=1,
                     languages=("en",))
    )
    assert graph.validate() == []


def test_extreme_density_site():
    graph = generate_site(
        make_profile(name="dense", n_pages=120, target_fraction=0.8,
                     html_to_target_pct=40.0)
    )
    stats = graph.statistics()
    assert stats.target_density > 0.6
    env = CrawlEnvironment(graph)
    result = sb_oracle(SBConfig(seed=1)).crawl(env)
    assert result.targets == env.target_urls()


def test_near_zero_density_site():
    graph = generate_site(
        make_profile(name="sparse", n_pages=150, target_fraction=0.01,
                     html_to_target_pct=1.0)
    )
    env = CrawlEnvironment(graph)
    result = sb_classifier(SBConfig(seed=1)).crawl(env)
    assert result.targets == env.target_urls()


# -- budgets --------------------------------------------------------------

def test_budget_zero(small_env):
    for crawler in (sb_oracle(SBConfig(seed=1)), BFSCrawler()):
        result = crawler.crawl(small_env, budget=0)
        assert result.n_requests <= 2  # at most robots + in-flight check


def test_budget_one(small_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(small_env, budget=1)
    assert result.n_requests <= 3


@pytest.mark.parametrize("factory", [BFSCrawler, DFSCrawler,
                                     lambda: RandomCrawler(seed=0)])
def test_baseline_volume_budget(small_env, factory):
    budget = 500_000.0
    result = factory().crawl(small_env, budget=budget, cost_model="volume")
    full = factory().crawl(small_env)
    assert result.trace.total_bytes <= full.trace.total_bytes
    # The budget bounds the volume up to one in-flight response.
    assert result.trace.total_bytes <= budget + 300_000


def test_budget_larger_than_site(small_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(small_env, budget=10**9)
    assert result.targets == small_env.target_urls()


# -- metric edge cases ---------------------------------------------------------

def test_requests_to_fraction_full_fraction():
    trace = CrawlTrace()
    for i in range(4):
        trace.append(CrawlRecord("GET", f"t{i}", 200, 1, True))
    assert requests_to_fraction(trace, 4, 10, fraction=1.0) == 40.0


def test_requests_to_fraction_single_target():
    trace = CrawlTrace()
    trace.append(CrawlRecord("GET", "t", 200, 1, True))
    assert requests_to_fraction(trace, 1, 4) == 25.0


def test_render_pairs_table_handles_none():
    text = render_pairs_table(
        "T", ["a"], [("row", [(None, math.inf)])]
    )
    assert "NA" in text and "+inf" in text


# -- environment edge cases --------------------------------------------------

def test_empty_target_mime_set(small_site):
    env = CrawlEnvironment(small_site, target_mimes=frozenset())
    assert env.total_targets() == 0
    result = sb_oracle(SBConfig(seed=1)).crawl(env)
    assert result.targets == set()


def test_scaled_profile_minimum_size():
    profile = make_profile()
    tiny = profile.scaled(0.0001)
    graph = generate_site(tiny)
    assert len(graph) >= 20


def test_crawl_same_env_repeatedly(small_env):
    """Environments are reusable: repeated crawls are independent."""
    first = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    second = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    assert first.n_requests == second.n_requests
    assert first.targets == second.targets


def test_crawler_handles_unknown_in_site_links():
    """Dangling in-site links (404s at fetch time) must not crash."""
    from repro.webgraph.model import Link, Page, PageKind, WebsiteGraph

    graph = WebsiteGraph("https://www.d.example/", name="dangle")
    graph.add_page(
        Page(
            url="https://www.d.example/",
            kind=PageKind.HTML,
            size=2000,
            links=[
                Link("https://www.d.example/ghost", "html body div a"),
                Link("https://www.d.example/t.csv", "html body ul li a"),
            ],
        )
    )
    graph.add_page(
        Page(url="https://www.d.example/t.csv", kind=PageKind.TARGET,
             mime_type="text/csv", size=100)
    )
    env = CrawlEnvironment(graph)
    result = sb_classifier(SBConfig(seed=1)).crawl(env)
    assert "https://www.d.example/t.csv" in result.targets
