"""Tests for the HTTP client: accounting, tracing, boundary enforcement."""

import pytest

from repro.http.client import HttpClient, OffsiteRequestError
from repro.http.server import SimulatedServer
from repro.webgraph.model import PageKind


def test_client_records_trace_and_ledger(small_site):
    server = SimulatedServer(small_site)
    client = HttpClient(server, crawler_name="t")
    client.get(small_site.root_url)
    client.head(small_site.root_url)
    assert client.ledger.n_get == 1
    assert client.ledger.n_head == 1
    assert client.n_requests == 2
    assert len(client.trace) == 2
    assert client.trace.records[0].method == "GET"
    assert client.trace.records[1].method == "HEAD"


def test_target_fetch_flagged_in_trace(small_site):
    server = SimulatedServer(small_site)
    client = HttpClient(server)
    target = next(p for p in small_site.pages() if p.kind is PageKind.TARGET)
    response = client.get(target.url)
    assert response.ok
    record = client.trace.records[-1]
    assert record.is_target
    assert client.ledger.bytes_target == target.size


def test_head_of_target_not_counted_as_target(small_site):
    server = SimulatedServer(small_site)
    client = HttpClient(server)
    target = next(p for p in small_site.pages() if p.kind is PageKind.TARGET)
    client.head(target.url)
    assert not client.trace.records[-1].is_target
    assert client.ledger.bytes_target == 0


def test_offsite_request_rejected(small_site):
    client = HttpClient(SimulatedServer(small_site))
    with pytest.raises(OffsiteRequestError):
        client.get("https://elsewhere.example/page")
    with pytest.raises(OffsiteRequestError):
        client.head("https://elsewhere.example/page")


def test_boundary_enforcement_can_be_disabled(small_site):
    client = HttpClient(SimulatedServer(small_site), enforce_boundary=False)
    response = client.get("https://elsewhere.example/page")
    assert response.status == 404


def test_budget_spent_models(small_site):
    client = HttpClient(SimulatedServer(small_site))
    client.get(small_site.root_url)
    assert client.budget_spent("requests") == 1.0
    assert client.budget_spent("volume") == float(client.bytes_received)
    with pytest.raises(ValueError):
        client.budget_spent("time")


def test_environment_new_clients_are_independent(small_env):
    a = small_env.new_client("a")
    b = small_env.new_client("b")
    a.get(small_env.root_url)
    assert a.n_requests == 1
    assert b.n_requests == 0


def test_environment_parse_cache(small_env):
    client = small_env.new_client()
    response = client.get(small_env.root_url)
    first = small_env.parse(response)
    second = small_env.parse(response)
    assert first is second
    assert first.links
