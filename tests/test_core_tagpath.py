"""Tests for tag-path vectorisation, including the paper's Fig. 3 example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tagpath import (
    BOS,
    EOS,
    TagPathVectorizer,
    projection_hash,
    tokenize_tag_path,
)


def test_paper_figure3_hash_values():
    """Fig. 3: D = 4 (m = 2), w = 11, Π = 766 245 317; h(2) = 1 and
    h(4) = h(8) = h(9) = 3."""
    m, w, prime = 2, 11, 766_245_317
    assert projection_hash(2, m, w, prime) == 1
    assert projection_hash(4, m, w, prime) == 3
    assert projection_hash(8, m, w, prime) == 3
    assert projection_hash(9, m, w, prime) == 3


def test_hash_range():
    for x in range(200):
        assert 0 <= projection_hash(x, m=4, w=11) < 16


def test_hash_requires_w_greater_than_m():
    with pytest.raises(ValueError):
        projection_hash(1, m=8, w=8)


def test_tokenize_includes_bos_eos():
    tokens = tokenize_tag_path("html body div a")
    assert tokens[0] == BOS
    assert tokens[-1] == EOS
    assert tokens[1:-1] == ["html", "body", "div", "a"]


def test_vocabulary_grows_dynamically():
    vectorizer = TagPathVectorizer(n=2, m=4)
    assert vectorizer.vocabulary_size == 0
    vectorizer.project("html body a")
    first = vectorizer.vocabulary_size
    assert first > 0
    vectorizer.project("html body a")
    assert vectorizer.vocabulary_size == first  # no new n-grams
    vectorizer.project("html body div ul li a")
    assert vectorizer.vocabulary_size > first


def test_projection_dimension():
    vectorizer = TagPathVectorizer(n=2, m=5)
    vector = vectorizer.project("html body div a")
    assert vector.shape == (32,)


def test_collision_buckets_use_means():
    """Bucket values are means over ALL positions mapped to the bucket
    (zeros included), per the paper's worked example."""
    vectorizer = TagPathVectorizer(n=1, m=2, w=11)
    vector = vectorizer.project("html body div a")
    # Recompute by hand from internals.
    d = vectorizer.vocabulary_size
    counts = {}
    for token in tokenize_tag_path("html body div a"):
        position = vectorizer._vocabulary[(token,)]
        counts[position] = counts.get(position, 0.0) + 1.0
    expected = np.zeros(4)
    bucket_size = np.zeros(4)
    for position in range(d):
        bucket = vectorizer._position_bucket[position]
        bucket_size[bucket] += 1
        expected[bucket] += counts.get(position, 0.0)
    occupied = bucket_size > 0
    expected[occupied] /= bucket_size[occupied]
    assert np.allclose(vector, expected)


def test_same_path_similar_direction_over_time():
    vectorizer = TagPathVectorizer(n=2, m=8)
    path = "html body div.content ul.items li a"
    v1 = vectorizer.project(path)
    for i in range(20):
        vectorizer.project(f"html body div.other{i} p a")
    v2 = vectorizer.project(path)
    cosine = float(v1 @ v2 / (np.linalg.norm(v1) * np.linalg.norm(v2)))
    assert cosine > 0.8


def test_different_paths_less_similar_than_identical():
    vectorizer = TagPathVectorizer(n=2, m=8)
    a1 = vectorizer.project("html body div.datasets ul li a")
    a2 = vectorizer.project("html body div.datasets ul li a")
    b = vectorizer.project("html body footer div.links ul li a")

    def cos(x, y):
        return float(x @ y / (np.linalg.norm(x) * np.linalg.norm(y)))

    assert cos(a1, a2) > cos(a1, b)


def test_n1_ignores_order():
    vectorizer = TagPathVectorizer(n=1, m=8)
    v1 = vectorizer.project("html body div a")
    v2 = vectorizer.project("html div body a")
    assert np.allclose(v1, v2)


def test_n2_respects_order():
    vectorizer = TagPathVectorizer(n=2, m=8)
    v1 = vectorizer.project("html body div a")
    v2 = vectorizer.project("html div body a")
    assert not np.allclose(v1, v2)


def test_rejects_bad_n():
    with pytest.raises(ValueError):
        TagPathVectorizer(n=0)


@given(st.lists(st.sampled_from(["div", "ul", "li", "a", "p", "span"]),
                min_size=1, max_size=10))
@settings(max_examples=60)
def test_projection_always_finite_nonnegative(segments):
    vectorizer = TagPathVectorizer(n=2, m=6)
    vector = vectorizer.project(" ".join(["html", "body"] + segments))
    assert np.isfinite(vector).all()
    assert (vector >= 0).all()
    assert vector.sum() > 0


def test_memoized_projection_bit_identical_to_fresh():
    """The per-path featurization cache must not change a single bit:
    a cached re-projection equals what a fresh vectorizer (same history)
    computes, even after the vocabulary grew in between."""
    paths = [
        "html body div.content a",
        "html body ul li a",
        "html body div.content a",          # cache hit
        "html body div.content span.new a",  # grows the vocabulary
        "html body div.content a",          # hit again, larger vocab
    ]
    cached = TagPathVectorizer()
    replay = TagPathVectorizer()
    for replay_path in paths:
        replay.project(replay_path)
    for index, path in enumerate(paths):
        vector = cached.project(path)
        if index == len(paths) - 1:
            reference = replay.project(path)
            assert vector.tobytes() == reference.tobytes()


def test_project_many_matches_sequential_projection():
    """Batched projection under the final vocabulary == a sequential
    loop once every n-gram is known."""
    paths = ["html body div a", "html body ul li a", "html body div a"]
    warm = TagPathVectorizer()
    for path in paths:
        warm.project(path)  # vocabulary now complete
    matrix = warm.project_many(paths)
    assert matrix.shape == (len(paths), warm.dim)
    for row, path in enumerate(paths):
        assert matrix[row].tobytes() == warm.project(path).tobytes()
