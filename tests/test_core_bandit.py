"""Tests for the sleeping bandit (AUER scores, Sec. 3.2)."""

import math

import pytest

from repro.core.bandit import DEFAULT_ALPHA, SleepingBandit


def test_default_alpha_is_2sqrt2():
    assert abs(DEFAULT_ALPHA - 2 * math.sqrt(2)) < 1e-12


def test_sleeping_action_scores_zero():
    bandit = SleepingBandit()
    bandit.ensure_arm(0)
    bandit.record_reward(0, 100.0)
    assert bandit.score(0, t=10, awake=False) == 0.0
    assert bandit.score(0, t=10, awake=True) > 0.0


def test_score_formula():
    bandit = SleepingBandit(alpha=2.0, epsilon=0.0)
    bandit.ensure_arm(0)
    bandit.record_selection(0)
    bandit.record_reward(0, 4.0)
    t = 8
    expected = 4.0 + 2.0 * math.sqrt(math.log(t) / 1.0)
    assert abs(bandit.score(0, t) - expected) < 1e-12


def test_unselected_arm_has_huge_exploration():
    bandit = SleepingBandit()
    bandit.ensure_arm(0)
    bandit.ensure_arm(1)
    bandit.record_selection(0)
    bandit.record_reward(0, 5.0)
    # arm 1 never selected: epsilon guard produces a very large bonus
    assert bandit.score(1, t=10) > bandit.score(0, t=10)


def test_select_prefers_high_mean_when_explored():
    bandit = SleepingBandit()
    for arm in (0, 1):
        for _ in range(50):
            bandit.record_selection(arm)
    for _ in range(50):
        bandit.record_reward(0, 10.0)
        bandit.record_reward(1, 0.0)
    assert bandit.select([0, 1], t=1000) == 0


def test_select_requires_awake_actions():
    with pytest.raises(ValueError):
        SleepingBandit().select([], t=1)


def test_incremental_mean_matches_algorithm4():
    """R ← R + (reward − R)/N(a), the paper's running-mean update."""
    bandit = SleepingBandit()
    rewards = [3.0, 0.0, 6.0, 1.0]
    for r in rewards:
        bandit.record_selection(0)
        bandit.record_reward(0, r)
    # N increments before the reward, so each update divides by the
    # current selection count, matching Algorithm 4 exactly.
    expected = 0.0
    for i, r in enumerate(rewards, start=1):
        expected += (r - expected) / i
    assert abs(bandit.arms[0].mean_reward - expected) < 1e-12


def test_reward_without_selection_seeds_mean():
    bandit = SleepingBandit()
    bandit.record_reward(7, 5.0)
    assert bandit.arms[7].mean_reward == 5.0


def test_nonzero_reward_stats():
    bandit = SleepingBandit()
    for arm, reward in ((0, 4.0), (1, 0.0), (2, 8.0)):
        bandit.record_selection(arm)
        bandit.record_reward(arm, reward)
    mean, std = bandit.nonzero_reward_stats()
    assert mean == 6.0
    assert abs(std - 2.0) < 1e-12


def test_top_mean_rewards():
    bandit = SleepingBandit()
    for arm, reward in enumerate([5.0, 1.0, 9.0, 3.0]):
        bandit.record_selection(arm)
        bandit.record_reward(arm, reward)
    assert bandit.top_mean_rewards(2) == [9.0, 5.0]
    assert len(bandit.top_mean_rewards(10)) == 4


def test_epsilon_greedy_exploits_when_greedy():
    from repro.core.bandit import EpsilonGreedyBandit

    bandit = EpsilonGreedyBandit(explore_probability=0.0, seed=0)
    for arm, reward in ((0, 1.0), (1, 9.0)):
        bandit.record_selection(arm)
        bandit.record_reward(arm, reward)
    assert all(bandit.select([0, 1], t=10) == 1 for _ in range(20))


def test_epsilon_greedy_explores():
    from repro.core.bandit import EpsilonGreedyBandit

    bandit = EpsilonGreedyBandit(explore_probability=1.0, seed=0)
    for arm in (0, 1):
        bandit.record_selection(arm)
        bandit.record_reward(arm, float(arm))
    picks = {bandit.select([0, 1], t=10) for _ in range(50)}
    assert picks == {0, 1}


def test_thompson_converges_to_best_arm():
    from repro.core.bandit import ThompsonSamplingBandit

    bandit = ThompsonSamplingBandit(seed=0)
    for _ in range(200):
        bandit.record_selection(0)
        bandit.record_reward(0, 10.0)
        bandit.record_selection(1)
        bandit.record_reward(1, 0.0)
    picks = [bandit.select([0, 1], t=500) for _ in range(30)]
    assert sum(1 for p in picks if p == 0) >= 28


def test_make_bandit_factory():
    import pytest

    from repro.core.bandit import (
        EpsilonGreedyBandit,
        SleepingBandit,
        ThompsonSamplingBandit,
        make_bandit,
    )

    assert type(make_bandit("auer")) is SleepingBandit
    assert isinstance(make_bandit("epsilon-greedy"), EpsilonGreedyBandit)
    assert isinstance(make_bandit("thompson"), ThompsonSamplingBandit)
    with pytest.raises(ValueError):
        make_bandit("linucb")


def test_policy_bandits_raise_on_empty():
    import pytest

    from repro.core.bandit import make_bandit

    for policy in ("epsilon-greedy", "thompson"):
        with pytest.raises(ValueError):
            make_bandit(policy).select([], t=1)
