"""Tests for the simulated HTTP server."""

from repro.http.messages import HEAD_RESPONSE_SIZE, INTERRUPTED_RESPONSE_SIZE
from repro.http.server import SimulatedServer
from repro.webgraph.model import PageKind


def _first(graph, kind):
    for page in graph.pages():
        if page.kind is kind:
            return page
    raise AssertionError(f"no page of kind {kind}")


def test_get_html_returns_body(small_site):
    server = SimulatedServer(small_site)
    response = server.get(small_site.root_url)
    assert response.ok
    assert response.mime_root() == "text/html"
    assert response.body.startswith("<!DOCTYPE html>")
    assert response.size == len(response.body)


def test_get_target_returns_size_without_body(small_site):
    server = SimulatedServer(small_site)
    target = _first(small_site, PageKind.TARGET)
    response = server.get(target.url)
    assert response.ok
    assert response.mime_root() == target.mime_type
    assert response.size == target.size
    assert response.body == ""


def test_get_error_page(small_site):
    server = SimulatedServer(small_site)
    error = _first(small_site, PageKind.ERROR)
    response = server.get(error.url)
    assert response.is_error
    assert response.status == error.status


def test_get_redirect_is_not_followed(small_site):
    server = SimulatedServer(small_site)
    redirect = _first(small_site, PageKind.REDIRECT)
    response = server.get(redirect.url)
    assert response.is_redirect
    assert response.redirect_to == redirect.redirect_to
    assert response.headers["Location"] == redirect.redirect_to


def test_get_unknown_url_is_404(small_site):
    server = SimulatedServer(small_site)
    response = server.get(small_site.root_url + "does-not-exist")
    assert response.status == 404


def test_media_transfer_interrupted(small_site):
    server = SimulatedServer(small_site)
    media = _first(small_site, PageKind.OTHER)
    response = server.get(media.url)
    assert response.interrupted
    assert response.size == INTERRUPTED_RESPONSE_SIZE
    full = server.get(media.url, blocklist_mime=False)
    assert not full.interrupted
    assert full.size == media.size


def test_head_is_cheap_and_truthful(small_site):
    server = SimulatedServer(small_site)
    target = _first(small_site, PageKind.TARGET)
    head = server.head(target.url)
    assert head.ok
    assert head.size == HEAD_RESPONSE_SIZE
    assert head.mime_root() == target.mime_type
    assert head.headers["Content-Length"] == str(target.size)


def test_head_unknown_url(small_site):
    server = SimulatedServer(small_site)
    assert server.head(small_site.root_url + "nope").status == 404


def test_render_cache_consistency(small_site):
    server = SimulatedServer(small_site)
    a = server.get(small_site.root_url).body
    b = server.get(small_site.root_url).body
    assert a is b  # cached render
