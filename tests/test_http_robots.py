"""Tests for robots.txt parsing, spider traps and polite crawling."""

import pytest

from repro.core.crawler import SBConfig, sb_classifier, sb_oracle
from repro.http.environment import CrawlEnvironment
from repro.http.robots import (
    RobotsPolicy,
    fetch_robots_policy,
    parse_robots_txt,
    parse_sitemap,
)
from repro.baselines import BFSCrawler, DFSCrawler
from repro.webgraph.generator import generate_site
from tests.conftest import make_profile

SAMPLE = """
# comments are ignored
User-agent: *
Disallow: /internal/
Disallow: /tmp
Allow: /internal/public/
Crawl-delay: 2

User-agent: badbot
Disallow: /

Sitemap: https://www.x.example/sitemap.xml
"""


def test_parse_basic_rules():
    policy = parse_robots_txt(SAMPLE)
    assert not policy.allowed("https://www.x.example/internal/search?x=1")
    assert not policy.allowed("https://www.x.example/tmp/file")
    assert policy.allowed("https://www.x.example/data/file.csv")
    assert policy.crawl_delay == 2.0
    assert policy.sitemaps == ["https://www.x.example/sitemap.xml"]


def test_allow_overrides_shorter_disallow():
    policy = parse_robots_txt(SAMPLE)
    assert policy.allowed("https://www.x.example/internal/public/doc")


def test_specific_agent_group():
    policy = parse_robots_txt(SAMPLE, user_agent="badbot")
    assert not policy.allowed("https://www.x.example/anything")


def test_multiple_agents_share_group():
    text = "User-agent: a\nUser-agent: b\nDisallow: /x/\n"
    for agent in ("a", "b"):
        policy = parse_robots_txt(text, user_agent=agent)
        assert not policy.allowed("https://s.example/x/page")


def test_empty_robots_allows_everything():
    policy = parse_robots_txt("")
    assert policy.allowed("https://s.example/anything")


def test_query_string_included_in_path_match():
    policy = parse_robots_txt("User-agent: *\nDisallow: /search?\n")
    assert not policy.allowed("https://s.example/search?q=x")
    assert policy.allowed("https://s.example/search-tips")


def test_parse_sitemap():
    xml = (
        '<?xml version="1.0"?><urlset>'
        "<url><loc>https://s.example/a</loc></url>"
        "<url><loc> https://s.example/b </loc></url>"
        "</urlset>"
    )
    assert parse_sitemap(xml) == ["https://s.example/a", "https://s.example/b"]
    assert parse_sitemap("no xml here") == []


# -- server integration -----------------------------------------------------

@pytest.fixture(scope="module")
def trap_env():
    graph = generate_site(
        make_profile(name="trapsite", n_pages=200, trap_pages=40)
    )
    return CrawlEnvironment(graph)


def test_server_serves_robots_and_sitemap(trap_env):
    client = trap_env.new_client()
    robots = client.get(trap_env.root_url.rstrip("/") + "/robots.txt")
    assert robots.ok
    assert "Disallow: /internal/" in robots.body
    assert not client.trace.records[-1].is_target
    sitemap = client.get(trap_env.root_url.rstrip("/") + "/sitemap.xml")
    assert sitemap.ok
    urls = parse_sitemap(sitemap.body)
    assert trap_env.root_url in urls
    assert not client.trace.records[-1].is_target


def test_fetch_robots_policy_missing_file(small_env):
    # small_env has robots (default); build one without.
    graph = generate_site(
        make_profile(name="norobots", n_pages=120, with_robots=False)
    )
    env = CrawlEnvironment(graph)
    client = env.new_client()
    policy = fetch_robots_policy(client, env.root_url)
    assert policy.allowed("https://www.testsite.example/anything")


def test_polite_sb_skips_trap(trap_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(trap_env)
    trap_fetches = [
        r for r in result.trace.records if "/internal/search" in r.url
    ]
    assert trap_fetches == []
    assert result.targets == trap_env.target_urls()


def test_impolite_dfs_falls_into_trap(trap_env):
    """The paper: DFS 'may fall into robot traps'."""

    class ImpoliteDFS(DFSCrawler):
        respect_robots = False

    result = ImpoliteDFS().crawl(trap_env)
    trap_fetches = [
        r for r in result.trace.records if "/internal/search" in r.url
    ]
    assert len(trap_fetches) >= 40  # crawled the whole trap chain


def test_polite_bfs_skips_trap(trap_env):
    result = BFSCrawler().crawl(trap_env)
    assert not [r for r in result.trace.records if "/internal/search" in r.url]
    assert result.targets == trap_env.target_urls()


def test_empty_disallow_value_is_ignored():
    policy = parse_robots_txt("User-agent: *\nDisallow:\n")
    assert policy.allowed("https://s.example/anything")
    assert policy.disallow == []


def test_equal_length_allow_wins_tie():
    policy = parse_robots_txt("User-agent: *\nDisallow: /a/\nAllow: /a/\n")
    assert policy.allowed("https://s.example/a/page")


def test_unknown_directives_and_garbage_delay_ignored():
    text = (
        "User-agent: *\n"
        "Noindex: /x/\n"
        "Crawl-delay: soon\n"
        "Disallow: /y/\n"
    )
    policy = parse_robots_txt(text)
    assert policy.crawl_delay is None
    assert policy.allowed("https://s.example/x/page")
    assert not policy.allowed("https://s.example/y/page")


def test_directive_keys_case_insensitive():
    policy = parse_robots_txt("USER-AGENT: *\nDISALLOW: /z/\n")
    assert not policy.allowed("https://s.example/z/page")


def test_user_agent_lookup_case_insensitive():
    policy = parse_robots_txt("User-agent: BadBot\nDisallow: /\n",
                              user_agent="badbot")
    assert not policy.allowed("https://s.example/anything")


def test_fetch_robots_policy_degrades_when_robots_unreachable(small_site):
    """An abandoned robots.txt fetch (all-timeouts fault plan) must fall
    back to allow-everything, not crash the crawl setup."""
    from repro.http.client import RetryPolicy
    from repro.http.faults import FaultPlan, FaultSpec

    env = CrawlEnvironment(
        small_site,
        fault_plan=FaultPlan(FaultSpec(rate=1.0, kinds=("timeout",)), seed=1),
        retry_policy=RetryPolicy(seed=1, max_attempts=2),
    )
    client = env.new_client()
    policy = fetch_robots_policy(client, env.root_url)
    assert policy.allowed(env.root_url + "/anything")


def test_sb_robots_can_be_disabled(trap_env):
    result = sb_oracle(SBConfig(seed=1, respect_robots=False)).crawl(trap_env)
    trap_fetches = [
        r for r in result.trace.records if "/internal/search" in r.url
    ]
    assert trap_fetches  # wasted requests in the trap
