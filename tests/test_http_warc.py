"""Tests for the WARC-style archival format."""

import pytest

from repro.http.messages import Response
from repro.http.warc import WarcWriter, archive_crawl, read_warc


def _response(url="https://s.example/a", body="<html>hi</html>", status=200,
              mime="text/html"):
    return Response(url=url, method="GET", status=status, mime_type=mime,
                    size=len(body), body=body)


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "crawl.warc"
    with WarcWriter(path) as writer:
        writer.write_response(_response())
        writer.write_response(
            _response(url="https://s.example/b", body="other content")
        )
    records = list(read_warc(path))
    assert len(records) == 2
    assert records[0].url == "https://s.example/a"
    assert records[0].payload == "<html>hi</html>"
    assert records[1].payload == "other content"
    assert records[0].record_id != records[1].record_id


def test_payload_with_blank_lines_and_unicode(tmp_path):
    body = "line one\n\nWARC/1.1 looks like a header\n\n\nliné unicode é"
    path = tmp_path / "tricky.warc"
    with WarcWriter(path) as writer:
        writer.write_response(_response(body=body))
        writer.write_response(_response(url="https://s.example/x", body="tail"))
    records = list(read_warc(path))
    assert records[0].payload == body
    assert records[1].payload == "tail"


def test_empty_payload(tmp_path):
    path = tmp_path / "empty.warc"
    with WarcWriter(path) as writer:
        writer.write_response(_response(body="", mime="application/pdf"))
    [record] = read_warc(path)
    assert record.payload == ""
    assert record.mime_type == "application/pdf"


def test_digest_verified(tmp_path):
    path = tmp_path / "tampered.warc"
    with WarcWriter(path) as writer:
        writer.write_response(_response(body="original"))
    text = path.read_text().replace("original", "tampered")
    path.write_text(text)
    with pytest.raises(ValueError, match="digest"):
        list(read_warc(path))


def test_append_mode(tmp_path):
    path = tmp_path / "append.warc"
    with WarcWriter(path) as writer:
        writer.write_response(_response())
    with WarcWriter(path) as writer:
        writer.write_response(_response(url="https://s.example/b"))
    assert len(list(read_warc(path))) == 2


def test_archive_crawl(tmp_path, small_env):
    urls = [small_env.root_url] + sorted(small_env.graph.urls())[:10]
    path = tmp_path / "site.warc"
    count = archive_crawl(small_env.server, urls, path)
    assert count == len(urls)
    records = list(read_warc(path))
    assert [r.url for r in records] == urls
    assert records[0].status == 200
