"""Adversarial / fuzzing tests: crawlers must terminate and keep their
invariants on pathological graphs (redirect loops, self links, cycles,
dead ends) and on arbitrary random graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BFSCrawler, DFSCrawler, RandomCrawler
from repro.core.crawler import SBConfig, sb_classifier, sb_oracle
from repro.http.environment import CrawlEnvironment
from repro.webgraph.model import Link, Page, PageKind, WebsiteGraph

BASE = "https://www.fuzz.example"

ALL_CRAWLERS = [
    lambda: sb_oracle(SBConfig(seed=1)),
    lambda: sb_classifier(SBConfig(seed=1)),
    BFSCrawler,
    DFSCrawler,
    lambda: RandomCrawler(seed=1),
]


def _page(url, links=(), kind=PageKind.HTML, **kwargs):
    defaults = dict(mime_type="text/html", status=200, size=3000)
    if kind is PageKind.TARGET:
        defaults = dict(mime_type="text/csv", status=200, size=1000)
    if kind is PageKind.ERROR:
        defaults = dict(mime_type=None, status=404, size=100)
    defaults.update(kwargs)
    return Page(url=url, kind=kind, links=list(links), **defaults)


def _graph(pages):
    graph = WebsiteGraph(f"{BASE}/", name="fuzz")
    for page in pages:
        graph.add_page(page)
    return graph


def _link(url, path="html body div.c ul li a"):
    return Link(url=url, tag_path=path, anchor="x")


# -- hand-crafted pathologies -------------------------------------------

def _crawl_all(graph):
    env = CrawlEnvironment(graph)
    results = []
    for factory in ALL_CRAWLERS:
        results.append(factory().crawl(env))
    return env, results


def test_redirect_loop_terminates():
    graph = _graph([
        _page(f"{BASE}/", [_link(f"{BASE}/a")]),
        _page(f"{BASE}/a", kind=PageKind.REDIRECT, status=301,
              redirect_to=f"{BASE}/b", mime_type=None),
        _page(f"{BASE}/b", kind=PageKind.REDIRECT, status=301,
              redirect_to=f"{BASE}/a", mime_type=None),
    ])
    env, results = _crawl_all(graph)
    for result in results:
        assert result.n_requests < 50


def test_self_redirect_terminates():
    graph = _graph([
        _page(f"{BASE}/", [_link(f"{BASE}/self")]),
        _page(f"{BASE}/self", kind=PageKind.REDIRECT, status=302,
              redirect_to=f"{BASE}/self", mime_type=None),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        assert result.n_requests < 50


def test_self_link_cycle():
    graph = _graph([
        _page(f"{BASE}/", [_link(f"{BASE}/"), _link(f"{BASE}/t")]),
        _page(f"{BASE}/t", kind=PageKind.TARGET),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        assert result.targets == {f"{BASE}/t"}


def test_two_cycle_with_targets():
    graph = _graph([
        _page(f"{BASE}/", [_link(f"{BASE}/a")]),
        _page(f"{BASE}/a", [_link(f"{BASE}/b"), _link(f"{BASE}/t1")]),
        _page(f"{BASE}/b", [_link(f"{BASE}/a"), _link(f"{BASE}/t2")]),
        _page(f"{BASE}/t1", kind=PageKind.TARGET),
        _page(f"{BASE}/t2", kind=PageKind.TARGET),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        assert result.targets == {f"{BASE}/t1", f"{BASE}/t2"}


def test_redirect_to_target():
    graph = _graph([
        _page(f"{BASE}/", [_link(f"{BASE}/alias")]),
        _page(f"{BASE}/alias", kind=PageKind.REDIRECT, status=301,
              redirect_to=f"{BASE}/t", mime_type=None),
        _page(f"{BASE}/t", kind=PageKind.TARGET),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        assert f"{BASE}/t" in result.targets


def test_redirect_offsite_ignored():
    graph = _graph([
        _page(f"{BASE}/", [_link(f"{BASE}/out")]),
        _page(f"{BASE}/out", kind=PageKind.REDIRECT, status=301,
              redirect_to="https://other.example/x", mime_type=None),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        for record in result.trace.records:
            assert record.url.startswith(BASE)


def test_root_is_error_page():
    graph = _graph([
        _page(f"{BASE}/", kind=PageKind.ERROR, status=500),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        assert result.n_targets == 0


def test_page_with_hundreds_of_duplicate_links():
    links = [_link(f"{BASE}/t")] * 300
    graph = _graph([
        _page(f"{BASE}/", links),
        _page(f"{BASE}/t", kind=PageKind.TARGET),
    ])
    _, results = _crawl_all(graph)
    for result in results:
        # The duplicate links cost at most one fetch.
        assert result.n_requests < 20


def test_long_redirect_chain_capped():
    pages = [_page(f"{BASE}/", [_link(f"{BASE}/r0")])]
    for i in range(60):
        pages.append(
            _page(f"{BASE}/r{i}", kind=PageKind.REDIRECT, status=301,
                  redirect_to=f"{BASE}/r{i + 1}", mime_type=None)
        )
    pages.append(_page(f"{BASE}/r60", kind=PageKind.TARGET))
    graph = _graph(pages)
    _, results = _crawl_all(graph)
    for result in results:
        assert result.n_requests < 200  # chain capped, no infinite loop


# -- random-graph property test ---------------------------------------------

@st.composite
def random_graphs(draw):
    n_pages = draw(st.integers(2, 14))
    kinds = [PageKind.HTML]  # root must be HTML
    for _ in range(n_pages - 1):
        kinds.append(
            draw(
                st.sampled_from(
                    [PageKind.HTML, PageKind.HTML, PageKind.TARGET,
                     PageKind.ERROR, PageKind.REDIRECT]
                )
            )
        )
    urls = [f"{BASE}/"] + [f"{BASE}/p{i}" for i in range(1, n_pages)]
    pages = []
    for index, (url, kind) in enumerate(zip(urls, kinds)):
        if kind is PageKind.REDIRECT:
            destination = urls[draw(st.integers(0, n_pages - 1))]
            pages.append(
                _page(url, kind=kind, status=301, redirect_to=destination,
                      mime_type=None)
            )
            continue
        links = []
        if kind is PageKind.HTML:
            n_links = draw(st.integers(0, 5))
            for _ in range(n_links):
                links.append(_link(urls[draw(st.integers(0, n_pages - 1))]))
        pages.append(_page(url, links, kind=kind))
    return _graph(pages)


@given(random_graphs(), st.sampled_from(["sb-oracle", "sb-classifier", "bfs"]))
@settings(max_examples=60, deadline=None)
def test_random_graph_invariants(graph, crawler_name):
    factories = {
        "sb-oracle": lambda: sb_oracle(SBConfig(seed=1)),
        "sb-classifier": lambda: sb_classifier(SBConfig(seed=1)),
        "bfs": BFSCrawler,
    }
    env = CrawlEnvironment(graph)
    result = factories[crawler_name]().crawl(env)
    # Termination is implied by returning at all; invariants:
    get_urls = [r.url for r in result.trace.records if r.method == "GET"]
    assert len(get_urls) == len(set(get_urls))          # never refetch
    assert result.targets <= env.target_urls()          # no phantom targets
    reachable = set(graph.depths())
    assert result.targets <= reachable
    # Bounded effort: at most one GET per node plus redirect slack,
    # plus HEADs for the classifier variant.
    assert len(get_urls) <= len(graph) + 30
