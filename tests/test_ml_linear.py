"""Tests for the online linear models."""

import random

import pytest

from repro.ml.features import hashed_bow
from repro.ml.linear import (
    LinearSVMSGD,
    LogisticRegressionSGD,
    PassiveAggressiveClassifier,
)
from repro.ml.naive_bayes import MultinomialNaiveBayes

DIM = 1 << 12

MODELS = [
    lambda: LogisticRegressionSGD(DIM, seed=0),
    lambda: LinearSVMSGD(DIM, seed=0),
    lambda: PassiveAggressiveClassifier(DIM, seed=0),
    lambda: MultinomialNaiveBayes(DIM),
]


def _separable_data(n=200, seed=0):
    """URL-like strings: /files/*.csv are class 1, /pages/* class 0."""
    rng = random.Random(seed)
    data = []
    for i in range(n):
        if rng.random() < 0.5:
            data.append((f"https://s.example/files/data-{i}.csv", 1))
        else:
            data.append((f"https://s.example/pages/article-{i}", 0))
    return data


@pytest.mark.parametrize("factory", MODELS)
def test_learns_separable_urls(factory):
    model = factory()
    data = _separable_data()
    train, test = data[:150], data[150:]
    X = [hashed_bow(u, dim=DIM) for u, _ in train]
    y = [label for _, label in train]
    for start in range(0, len(X), 10):
        model.partial_fit(X[start : start + 10], y[start : start + 10])
    correct = sum(
        1 for u, label in test if model.predict(hashed_bow(u, dim=DIM)) == label
    )
    assert correct / len(test) > 0.9, type(model).__name__


@pytest.mark.parametrize("factory", MODELS)
def test_partial_fit_length_mismatch(factory):
    model = factory()
    with pytest.raises(ValueError):
        model.partial_fit([hashed_bow("x", dim=DIM)], [0, 1])


def test_lr_predict_proba_in_range():
    model = LogisticRegressionSGD(DIM, seed=0)
    x = hashed_bow("anything", dim=DIM)
    assert 0.0 <= model.predict_proba(x) <= 1.0
    model.partial_fit([x] * 10, [1] * 10)
    assert model.predict_proba(x) > 0.5


def test_lr_dim_mismatch_rejected():
    model = LogisticRegressionSGD(DIM)
    with pytest.raises(ValueError):
        model.decision_function(hashed_bow("x", dim=DIM * 2))


def test_pa_skips_when_margin_satisfied():
    model = PassiveAggressiveClassifier(DIM, seed=0)
    x = hashed_bow("stable example", dim=DIM)
    model.partial_fit([x] * 5, [1] * 5)
    updates = model.n_updates
    # Margin now satisfied: further identical examples cause no updates.
    model.partial_fit([x] * 5, [1] * 5)
    assert model.n_updates == updates


def test_nb_incremental_counts():
    model = MultinomialNaiveBayes(DIM)
    x1 = hashed_bow("files csv data", dim=DIM)
    x0 = hashed_bow("pages article news", dim=DIM)
    model.partial_fit([x1, x0], [1, 0])
    assert model.class_counts.tolist() == [1.0, 1.0]
    model.partial_fit([x1], [1])
    assert model.class_counts.tolist() == [1.0, 2.0]
    assert model.predict(x1) == 1
    assert model.predict(x0) == 0


def test_nb_rejects_bad_labels():
    model = MultinomialNaiveBayes(DIM)
    with pytest.raises(ValueError):
        model.partial_fit([hashed_bow("x", dim=DIM)], [2])


def test_untrained_models_predict_something():
    x = hashed_bow("x", dim=DIM)
    for factory in MODELS:
        assert factory().predict(x) in (0, 1)
