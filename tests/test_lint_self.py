"""The self-lint gate: ``src/repro`` must stay clean under the full
rule set.  This is the tier-1 hook that keeps determinism violations
from creeping in under refactor pressure — the equivalent of running
``python -m repro.lint src/repro`` in CI."""

from __future__ import annotations

from pathlib import Path

from repro.lint import Linter, load_pyproject_config
from repro.lint.reporters import render_text

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def test_source_tree_is_lint_clean():
    config = load_pyproject_config(REPO / "pyproject.toml")
    findings = Linter(config).check_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_injected_det001_violation_is_caught():
    """Injecting an unseeded global-RNG call into ``core/frontier.py``
    must produce a DET001 finding naming the file and the line."""
    frontier = SRC / "core" / "frontier.py"
    source = frontier.read_text(encoding="utf-8")
    lines = source.splitlines()
    # Splice a violation into pop_random's body.
    anchor = next(
        index for index, line in enumerate(lines)
        if "def pop_random" in line
    )
    lines.insert(anchor + 1, "        jitter = random.random()")
    findings = Linter().check_source("\n".join(lines), path=str(frontier))
    det001 = [f for f in findings if f.rule == "DET001"]
    assert len(det001) == 1
    assert det001[0].path == str(frontier)
    assert det001[0].line == anchor + 2  # 1-indexed, line after the def
    assert "random.random" in det001[0].message


def test_gate_matches_cli_invocation():
    """The pytest gate and ``python -m repro.lint src/repro`` agree."""
    from repro.lint.__main__ import EXIT_CLEAN, main

    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(["--config", str(REPO / "pyproject.toml"), str(SRC)])
    assert code == EXIT_CLEAN, stdout.getvalue()
