"""The self-lint gate: ``src/repro`` must stay clean under the full
rule set — per-file rules *and* the whole-program FLOW pass.  This is
the tier-1 hook that keeps determinism violations from creeping in
under refactor pressure — the equivalent of running
``python -m repro.lint --project src/repro`` in CI.

Each FLOW rule also gets an injected-violation positive test: a minimal
on-disk project carrying exactly one violation, asserted down to the
file and line, so the gate can never silently stop seeing a rule.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import Linter, RuleConfig, load_pyproject_config
from repro.lint.reporters import render_text

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Reference corpus for the whole-program pass (mirrors the CLI's
#: auto-discovery from the repository root).
REFERENCE_ROOTS = [REPO / name for name in ("src", "tests", "examples",
                                            "benchmarks")]


def test_source_tree_is_lint_clean():
    config = load_pyproject_config(REPO / "pyproject.toml")
    findings = Linter(config).check_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_source_tree_is_project_clean():
    """The whole-program pass (FLOW001-005) reports zero findings over
    ``src/repro`` with tests/examples/benchmarks as reference corpus."""
    config = load_pyproject_config(REPO / "pyproject.toml")
    run = Linter(config).run([SRC], project=True,
                             reference_roots=REFERENCE_ROOTS)
    assert run.findings == [], "\n" + render_text(run.findings)
    assert run.project and run.files > 0


def test_project_gate_rerun_is_fully_cached(tmp_path):
    """An unchanged tree re-lints entirely from the incremental cache."""
    config = load_pyproject_config(REPO / "pyproject.toml")
    cache = tmp_path / "lint-cache.json"
    linter = Linter(config)
    cold = linter.run([SRC], project=True, cache_path=cache,
                      reference_roots=REFERENCE_ROOTS)
    warm = Linter(config).run([SRC], project=True, cache_path=cache,
                              reference_roots=REFERENCE_ROOTS)
    assert cold.findings == warm.findings == []
    assert cold.cache.misses == cold.cache.files
    assert warm.cache.hits == warm.cache.files > 0
    assert warm.cache.misses == 0


def test_injected_det001_violation_is_caught():
    """Injecting an unseeded global-RNG call into ``core/frontier.py``
    must produce a DET001 finding naming the file and the line."""
    frontier = SRC / "core" / "frontier.py"
    source = frontier.read_text(encoding="utf-8")
    lines = source.splitlines()
    # Splice a violation into pop_random's body.
    anchor = next(
        index for index, line in enumerate(lines)
        if "def pop_random" in line
    )
    lines.insert(anchor + 1, "        jitter = random.random()")
    findings = Linter().check_source("\n".join(lines), path=str(frontier))
    det001 = [f for f in findings if f.rule == "DET001"]
    assert len(det001) == 1
    assert det001[0].path == str(frontier)
    assert det001[0].line == anchor + 2  # 1-indexed, line after the def
    assert "random.random" in det001[0].message


def test_gate_matches_cli_invocation():
    """The pytest gate and ``python -m repro.lint --project src/repro``
    agree."""
    from repro.lint.__main__ import EXIT_CLEAN, main

    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(["--config", str(REPO / "pyproject.toml"),
                     "--project", "--no-cache", str(SRC)])
    assert code == EXIT_CLEAN, stdout.getvalue()


# -- injected-violation positive tests, one per FLOW rule ----------------


def project_lint(tmp_path, tree: dict[str, str], lint: str = "src/repro"):
    """Materialise ``tree`` on disk and run the whole-program pass."""
    for rel, content in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    roots = [tmp_path / name for name in ("src", "tests", "examples",
                                          "benchmarks")
             if (tmp_path / name).is_dir()]
    run = Linter(RuleConfig()).run([tmp_path / lint], project=True,
                                   reference_roots=roots)
    return run.findings


def test_injected_flow001_seed_drop_is_caught(tmp_path):
    findings = project_lint(tmp_path, {
        "src/repro/core/builder.py": """\
            def make_crawler(budget, seed):
                return budget * 2
            """,
    })
    flow = [f for f in findings if f.rule == "FLOW001"]
    assert len(flow) == 1
    assert flow[0].path == str(tmp_path / "src/repro/core/builder.py")
    assert flow[0].line == 1
    assert "'seed'" in flow[0].message and "make_crawler" in flow[0].message


def test_injected_flow002_dead_export_is_caught(tmp_path):
    findings = project_lint(tmp_path, {
        "src/repro/core/__init__.py": """\
            from repro.core.impl import alive, phantom

            __all__ = [
                "alive",
                "phantom",
            ]
            """,
        "src/repro/core/impl.py": """\
            def alive():
                return 1


            def phantom():
                return 2
            """,
        "tests/test_alive.py": """\
            from repro.core import alive

            def test_alive():
                assert alive() == 1
            """,
    })
    flow = [f for f in findings if f.rule == "FLOW002"]
    assert len(flow) == 1
    assert flow[0].path == str(tmp_path / "src/repro/core/__init__.py")
    assert flow[0].line == 5  # the "phantom" entry inside __all__
    assert "'phantom'" in flow[0].message


def test_injected_flow003_import_cycle_is_caught(tmp_path):
    findings = project_lint(tmp_path, {
        "src/repro/core/alpha.py": """\
            from repro.core.beta import helper


            def top():
                return helper()
            """,
        "src/repro/core/beta.py": """\
            import repro.core.alpha


            def helper():
                return repro.core.alpha.top
            """,
    })
    flow = [f for f in findings if f.rule == "FLOW003"]
    assert len(flow) == 1
    assert flow[0].path == str(tmp_path / "src/repro/core/alpha.py")
    assert flow[0].line == 1  # alpha's import of beta closes the cycle
    assert "repro.core.alpha -> repro.core.beta -> repro.core.alpha" in \
        flow[0].message


def test_injected_flow004_unused_noqa_is_caught(tmp_path):
    findings = project_lint(tmp_path, {
        "src/repro/core/tidy.py": """\
            def double(x):
                return x * 2  # repro: noqa[COR002] stale justification
            """,
    })
    flow = [f for f in findings if f.rule == "FLOW004"]
    assert len(flow) == 1
    assert flow[0].path == str(tmp_path / "src/repro/core/tidy.py")
    assert flow[0].line == 2
    assert "COR002" in flow[0].message


def test_injected_flow005_unemitted_event_is_caught(tmp_path):
    findings = project_lint(tmp_path, {
        "src/repro/obs/events.py": """\
            class CrawlEvent:
                pass


            class FetchEvent(CrawlEvent):
                pass


            class PhantomEvent(CrawlEvent):
                pass
            """,
        "src/repro/core/loop.py": """\
            from repro.obs.events import FetchEvent


            def step(observer):
                observer.on_event(FetchEvent())
            """,
    })
    flow = [f for f in findings if f.rule == "FLOW005"]
    assert len(flow) == 1
    assert flow[0].path == str(tmp_path / "src/repro/obs/events.py")
    assert flow[0].line == 9  # class PhantomEvent
    assert "PhantomEvent" in flow[0].message
