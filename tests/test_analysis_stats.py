"""Tests for statistical comparison utilities."""

import math

import pytest

from repro.analysis.stats import (
    PairedComparison,
    bootstrap_mean_ci,
    compare_paired,
)


def test_bootstrap_ci_contains_mean():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    mean, low, high = bootstrap_mean_ci(values, seed=1)
    assert mean == 3.0
    assert low <= mean <= high
    assert low >= 1.0 and high <= 5.0


def test_bootstrap_ci_narrow_for_constant_data():
    mean, low, high = bootstrap_mean_ci([7.0] * 20, seed=1)
    assert mean == low == high == 7.0


def test_bootstrap_requires_values():
    with pytest.raises(ValueError):
        bootstrap_mean_ci([])


def test_compare_paired_clear_winner():
    a = [10.0, 12.0, 9.0, 11.0, 10.5, 9.5, 10.2, 11.1]
    b = [20.0, 22.0, 19.0, 21.0, 20.5, 19.5, 20.2, 21.1]
    comparison = compare_paired(a, b, seed=1)
    assert comparison.wins_a == 8
    assert comparison.wins_b == 0
    assert comparison.mean_difference == pytest.approx(-10.0)
    assert comparison.significant
    assert comparison.p_value is not None and comparison.p_value < 0.05
    assert "wins 8" in comparison.render("SB", "BFS")


def test_compare_paired_handles_infinities():
    a = [10.0, math.inf, math.inf]
    b = [math.inf, 5.0, math.inf]
    comparison = compare_paired(a, b)
    assert comparison.wins_a == 1   # site 0: b is inf
    assert comparison.wins_b == 1   # site 1: a is inf
    assert comparison.n_pairs == 0  # no finite-finite pair


def test_compare_paired_length_mismatch():
    with pytest.raises(ValueError):
        compare_paired([1.0], [1.0, 2.0])


def test_no_significance_for_noise():
    a = [10.0, 11.0, 9.0, 10.5, 9.5, 10.1, 9.9, 10.3]
    b = [10.1, 10.9, 9.1, 10.4, 9.6, 10.0, 10.0, 10.2]
    comparison = compare_paired(a, b, seed=2)
    assert not comparison.significant or abs(comparison.mean_difference) < 0.5


def test_small_sample_skips_wilcoxon():
    comparison = compare_paired([1.0, 2.0], [2.0, 3.0])
    assert comparison.p_value is None


def test_ties_counted_as_no_win():
    comparison = compare_paired([5.0, 5.0], [5.0, 6.0])
    assert comparison.wins_a == 1
    assert comparison.wins_b == 0
