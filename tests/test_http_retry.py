"""Tests for Retry-After parsing and the client's retry/backoff loop."""

import datetime

import pytest

from repro.http.client import HttpClient, RetryPolicy
from repro.http.ledger import CostLedger
from repro.http.messages import (
    TIMEOUT_STATUS,
    TRANSIENT_STATUSES,
    Response,
    parse_retry_after,
)
from repro.obs.sinks import MemorySink
from repro.utils.rng import derive_rng


# -- parse_retry_after ------------------------------------------------------

def test_delta_seconds():
    assert parse_retry_after("120") == 120.0
    assert parse_retry_after(" 42 ") == 42.0
    assert parse_retry_after("0") == 0.0


def test_negative_delta_clamps_to_zero():
    assert parse_retry_after("-5") == 0.0


def test_garbage_returns_none():
    assert parse_retry_after("soon") is None
    assert parse_retry_after("") is None
    assert parse_retry_after("   ") is None
    assert parse_retry_after("1.5") is None  # RFC delta-seconds is integral


def test_http_date_needs_explicit_now():
    header = "Wed, 21 Oct 2015 07:30:00 GMT"
    # no reference instant: the caller must not read the clock (DET002),
    # so the date form degrades to "no usable value"
    assert parse_retry_after(header) is None
    now = datetime.datetime(
        2015, 10, 21, 7, 28, 0, tzinfo=datetime.timezone.utc
    )
    assert parse_retry_after(header, now=now) == 120.0


def test_http_date_in_the_past_clamps_to_zero():
    header = "Wed, 21 Oct 2015 07:28:00 GMT"
    now = datetime.datetime(
        2015, 10, 21, 9, 0, 0, tzinfo=datetime.timezone.utc
    )
    assert parse_retry_after(header, now=now) == 0.0


def test_naive_now_treated_as_utc():
    header = "Wed, 21 Oct 2015 07:29:00 GMT"
    now = datetime.datetime(2015, 10, 21, 7, 28, 0)  # naive
    assert parse_retry_after(header, now=now) == 60.0


def test_response_retry_after_accessor():
    response = Response(url="u", method="GET", status=429,
                        headers={"Retry-After": "7"})
    assert response.retry_after_seconds() == 7.0
    assert Response(url="u", method="GET", status=429).retry_after_seconds() is None


# -- transient / permanent classification -----------------------------------

def test_transient_statuses_cover_the_contract():
    assert {429, 500, 502, 503, 504, TIMEOUT_STATUS} == set(TRANSIENT_STATUSES)
    assert Response(url="u", method="GET", status=503).is_transient_error
    assert Response(url="u", method="GET", status=404).is_permanent_error
    truncated = Response(url="u", method="GET", status=200, truncated=True)
    assert truncated.is_transient_error
    assert not truncated.is_permanent_error


# -- RetryPolicy maths ------------------------------------------------------

def test_backoff_doubles_and_caps():
    policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=4.0,
                         jitter=0.0)
    rng = derive_rng(0, "t")
    delays = [policy.backoff_delay(k, rng) for k in (1, 2, 3, 4, 5)]
    assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]


def test_jitter_is_bounded_and_seeded():
    policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.2)
    a = [policy.backoff_delay(1, derive_rng(5, "j")) for _ in range(1)]
    b = [policy.backoff_delay(1, derive_rng(5, "j")) for _ in range(1)]
    assert a == b  # same stream, same jitter
    for _ in range(50):
        rng = derive_rng(5, "j")
        delay = policy.backoff_delay(1, rng)
        assert 0.8 <= delay <= 1.2


def test_retry_wait_raised_to_retry_after():
    policy = RetryPolicy(base_delay=0.5, jitter=0.0)
    response = Response(url="u", method="GET", status=429,
                        headers={"Retry-After": "10"})
    assert policy.retry_wait(1, response, derive_rng(0, "t")) == 10.0


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


# -- the client retry loop --------------------------------------------------

class ScriptedServer:
    """Serves a fixed sequence of responses, whatever the URL."""

    def __init__(self, graph, responses):
        self.graph = graph
        self._responses = list(responses)

    def get(self, url, blocklist_mime=True):
        return self._responses.pop(0)

    def head(self, url):
        return self._responses.pop(0)


def _resp(status, **kwargs):
    return Response(url="https://www.testsite.example/p", method="GET",
                    status=status, **kwargs)


def test_transient_failure_retried_until_success(small_site):
    server = ScriptedServer(small_site, [_resp(503), _resp(503), _resp(200)])
    sink = MemorySink()
    client = HttpClient(server, observer=sink,
                        retry_policy=RetryPolicy(seed=1, jitter=0.0))
    response = client.get("https://www.testsite.example/p")
    assert response.ok
    assert client.n_requests == 3          # every attempt is a request
    assert client.ledger.n_retries == 2
    assert client.retries_used == 2
    events = sink.of_kind("retry_scheduled")
    assert [e.attempt for e in events] == [1, 2]
    assert events[0].reason == "status_503"
    assert client.ledger.wait_seconds > 0


def test_no_policy_means_no_retry(small_site):
    server = ScriptedServer(small_site, [_resp(503), _resp(200)])
    client = HttpClient(server)
    response = client.get("https://www.testsite.example/p")
    assert response.status == 503
    assert client.n_requests == 1
    assert not response.abandoned


def test_permanent_error_not_retried(small_site):
    server = ScriptedServer(small_site, [_resp(404), _resp(200)])
    client = HttpClient(server, retry_policy=RetryPolicy(seed=1))
    response = client.get("https://www.testsite.example/p")
    assert response.status == 404
    assert client.n_requests == 1


def test_exhausted_attempts_abandon_the_request(small_site):
    server = ScriptedServer(small_site, [_resp(503)] * 3)
    sink = MemorySink()
    client = HttpClient(server, observer=sink,
                        retry_policy=RetryPolicy(seed=1, max_attempts=3,
                                                 jitter=0.0))
    response = client.get("https://www.testsite.example/p")
    assert response.abandoned
    assert client.n_requests == 3
    abandoned = sink.of_kind("request_abandoned")
    assert len(abandoned) == 1
    assert abandoned[0].attempts == 3
    assert abandoned[0].reason == "status_503"


def test_retry_budget_bounds_total_retries(small_site):
    server = ScriptedServer(small_site, [_resp(503)] * 10)
    policy = RetryPolicy(seed=1, max_attempts=4, total_budget=1, jitter=0.0)
    client = HttpClient(server, retry_policy=policy)
    first = client.get("https://www.testsite.example/p")
    assert first.abandoned
    assert client.retries_used == 1        # budget spent
    second = client.get("https://www.testsite.example/p")
    assert second.abandoned                # no budget left: single attempt
    assert client.n_requests == 3


def test_retry_after_header_stretches_the_wait(small_site):
    flaky = _resp(429, headers={"Retry-After": "10"})
    server = ScriptedServer(small_site, [flaky, _resp(200)])
    sink = MemorySink()
    client = HttpClient(server, observer=sink,
                        retry_policy=RetryPolicy(seed=1, base_delay=0.1,
                                                 jitter=0.0))
    client.get("https://www.testsite.example/p")
    event = sink.of_kind("retry_scheduled")[0]
    assert event.wait_seconds == 10.0
    assert client.ledger.wait_seconds == 10.0


def test_ledger_retry_accounting():
    ledger = CostLedger()
    ledger.record_retry(2.5)
    ledger.record_wait(1.5)
    assert ledger.n_retries == 1
    assert ledger.wait_seconds == 4.0
    with pytest.raises(ValueError):
        ledger.record_wait(-1.0)
    snapshot = ledger.snapshot()
    assert snapshot.n_retries == 1
    assert snapshot.wait_seconds == 4.0
