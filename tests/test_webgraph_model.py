"""Tests for the website graph model and boundary rules (Sec. 2.2)."""

import pytest

from repro.webgraph.model import (
    Link,
    Page,
    PageKind,
    WebsiteGraph,
    registrable_host,
    same_site,
)


def make_graph() -> WebsiteGraph:
    g = WebsiteGraph("https://www.a.example/", name="t")
    g.add_page(
        Page(
            url="https://www.a.example/",
            kind=PageKind.HTML,
            size=1000,
            links=[
                Link("https://www.a.example/page1", "html body a"),
                Link("https://www.a.example/file.csv", "html body ul li a"),
            ],
        )
    )
    g.add_page(Page(url="https://www.a.example/page1", kind=PageKind.HTML, size=500))
    g.add_page(
        Page(
            url="https://www.a.example/file.csv",
            kind=PageKind.TARGET,
            mime_type="text/csv",
            size=2048,
        )
    )
    return g


# -- boundary rule (paper Sec. 2.2 examples) -------------------------------

def test_same_site_paper_examples():
    root = "https://www.A.B.com/index.php"
    assert same_site(root, "https://www.A.B.com/folder/content.php")
    assert same_site(root, "https://www.C.A.B.com/page.html")
    assert not same_site(root, "https://www.B.com/page.php")
    assert not same_site(root, "https://edbticdt2026.github.io/?x=1")


def test_www_prefix_is_transparent():
    assert same_site("https://www.site.org/", "https://site.org/page")
    assert same_site("https://site.org/", "https://www.site.org/page")


def test_subdomain_direction_matters():
    # A parent domain is NOT part of the subdomain's site.
    assert not same_site("https://sub.site.org/", "https://site.org/")
    assert same_site("https://site.org/", "https://sub.site.org/")


def test_registrable_host():
    assert registrable_host("https://www.X.org/a") == "x.org"
    assert registrable_host("https://data.x.org/a") == "data.x.org"


# -- graph ---------------------------------------------------------------

def test_duplicate_url_rejected():
    g = make_graph()
    with pytest.raises(ValueError):
        g.add_page(Page(url="https://www.a.example/", kind=PageKind.HTML))


def test_depths_bfs():
    g = make_graph()
    depths = g.depths()
    assert depths["https://www.a.example/"] == 0
    assert depths["https://www.a.example/page1"] == 1
    assert depths["https://www.a.example/file.csv"] == 1


def test_depth_through_redirect_is_free():
    g = WebsiteGraph("https://www.a.example/")
    g.add_page(
        Page(
            url="https://www.a.example/",
            kind=PageKind.HTML,
            links=[Link("https://www.a.example/alias", "html body a")],
        )
    )
    g.add_page(
        Page(
            url="https://www.a.example/alias",
            kind=PageKind.REDIRECT,
            status=301,
            redirect_to="https://www.a.example/real",
        )
    )
    g.add_page(Page(url="https://www.a.example/real", kind=PageKind.HTML))
    depths = g.depths()
    assert depths["https://www.a.example/alias"] == 1
    assert depths["https://www.a.example/real"] == 1


def test_statistics():
    g = make_graph()
    stats = g.statistics()
    assert stats.n_available == 3
    assert stats.n_targets == 1
    assert abs(stats.target_density - 1 / 3) < 1e-12
    assert stats.html_to_target_pct == 50.0  # 1 of 2 HTML pages links a target
    assert stats.target_size_mean == 2048
    assert stats.target_depth_mean == 1.0


def test_validate_detects_problems():
    g = make_graph()
    assert g.validate() == []
    g.add_page(
        Page(
            url="https://www.a.example/bad-redirect",
            kind=PageKind.REDIRECT,
            status=301,
        )
    )
    g.add_page(Page(url="https://www.a.example/orphan", kind=PageKind.HTML))
    problems = g.validate()
    assert any("redirect without destination" in p for p in problems)
    assert any("unreachable" in p for p in problems)


def test_validate_flags_dangling_links():
    g = make_graph()
    g.page("https://www.a.example/page1").links.append(
        Link("https://www.a.example/ghost", "html body a")
    )
    assert any("dangling" in p for p in g.validate())
