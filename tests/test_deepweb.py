"""Tests for the deep-web extension: forms in the substrate and the
form-enumerating crawler."""

import pytest

from repro.core.crawler import SBConfig, sb_oracle, sb_classifier
from repro.deepweb import DeepWebSBCrawler, deep_web_sb_classifier
from repro.html.parse import parse_page
from repro.html.render import render_page
from repro.http.environment import CrawlEnvironment
from repro.webgraph.generator import generate_site
from repro.webgraph.model import Form, Page, PageKind
from tests.conftest import make_profile


# -- Form model -----------------------------------------------------------

def test_submission_urls_cartesian_product():
    form = Form(
        action="https://x.example/results",
        fields=(("year", ("2020", "2021")), ("theme", ("a", "b", "c"))),
    )
    urls = form.submission_urls()
    assert len(urls) == 6
    assert "https://x.example/results?year=2020&theme=b" in urls
    assert len(set(urls)) == 6


def test_submission_urls_single_field():
    form = Form(action="https://x.example/r", fields=(("q", ("1",)),))
    assert form.submission_urls() == ["https://x.example/r?q=1"]


# -- render/parse round trip ------------------------------------------------

def test_form_render_parse_round_trip():
    form = Form(
        action="https://www.t.example/search/results",
        fields=(("year", ("2020", "2021")), ("theme", ("eco", "health"))),
    )
    page = Page(
        url="https://www.t.example/portal",
        kind=PageKind.HTML,
        size=5000,
        forms=[form],
    )
    parsed = parse_page(render_page(page))
    assert len(parsed.forms) == 1
    recovered = parsed.forms[0]
    assert recovered.action == form.action
    assert recovered.fields == form.fields
    assert recovered.result_urls == ()  # ground truth never leaks


def test_form_without_selects_ignored():
    html = '<html><body><form action="/r"></form></body></html>'
    assert parse_page(html).forms == []


# -- generator portals --------------------------------------------------------

@pytest.fixture(scope="module")
def portal_site():
    return generate_site(
        make_profile(name="portalsite", n_pages=250, deep_web_portals=2)
    )


def test_portal_pages_have_forms(portal_site):
    portals = [p for p in portal_site.html_pages() if p.forms]
    assert len(portals) == 2
    for portal in portals:
        [form] = portal.forms
        assert form.result_urls
        for url in form.result_urls:
            assert url in portal_site


def test_portal_graph_is_valid(portal_site):
    assert portal_site.validate() == []


def test_deep_targets_unreachable_by_links(portal_site):
    """Deep targets hang off result pages that no hyperlink reaches."""
    linked = {
        link.url
        for page in portal_site.html_pages()
        for link in page.links
    }
    result_urls = {
        url
        for page in portal_site.html_pages()
        for form in page.forms
        for url in form.result_urls
    }
    assert result_urls
    assert not (result_urls & linked)


def test_deep_targets_counted_in_depths(portal_site):
    depths = portal_site.depths()
    for page in portal_site.html_pages():
        for form in page.forms:
            for url in form.result_urls:
                assert url in depths


# -- crawler --------------------------------------------------------------

def test_plain_sb_misses_deep_targets(portal_site):
    env = CrawlEnvironment(portal_site)
    result = sb_oracle(SBConfig(seed=1)).crawl(env)
    assert result.targets < env.target_urls()  # strictly fewer


def test_deep_web_crawler_finds_everything(portal_site):
    env = CrawlEnvironment(portal_site)
    crawler = DeepWebSBCrawler(SBConfig(seed=1, use_oracle=True))
    result = crawler.crawl(env)
    assert result.targets == env.target_urls()
    assert crawler.name == "SB-DEEPWEB"


def test_deep_web_classifier_variant(portal_site):
    env = CrawlEnvironment(portal_site)
    result = deep_web_sb_classifier(SBConfig(seed=1)).crawl(env)
    missing = env.target_urls() - result.targets
    # The online classifier may misroute a few, but the deep portals
    # must be substantially covered.
    assert len(missing) < 0.2 * env.total_targets()


def test_submission_cap_respected(portal_site):
    env = CrawlEnvironment(portal_site)
    crawler = DeepWebSBCrawler(SBConfig(seed=1, use_oracle=True),
                               max_submissions_per_form=2)
    result = crawler.crawl(env)
    # With only 2 submissions per form, some deep targets stay hidden.
    assert result.targets < env.target_urls()


def test_deep_web_on_site_without_forms(small_env):
    result = DeepWebSBCrawler(SBConfig(seed=1, use_oracle=True)).crawl(small_env)
    assert result.targets == small_env.target_urls()
