"""Tests for URL resolution and canonicalisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.webgraph.canonical import canonicalize_url, resolve_link


def test_fragment_stripped():
    assert canonicalize_url("https://x.example/a#sec") == "https://x.example/a"


def test_case_normalised_on_host_not_path():
    assert (
        canonicalize_url("HTTPS://WWW.X.Example/A/B")
        == "https://www.x.example/A/B"
    )


def test_default_port_dropped():
    assert canonicalize_url("https://x.example:443/a") == "https://x.example/a"
    assert canonicalize_url("http://x.example:80/a") == "http://x.example/a"
    assert (
        canonicalize_url("https://x.example:8443/a")
        == "https://x.example:8443/a"
    )


def test_empty_path_becomes_slash():
    assert canonicalize_url("https://x.example") == "https://x.example/"


def test_query_preserved():
    assert (
        canonicalize_url("https://x.example/a?b=1&c=2#frag")
        == "https://x.example/a?b=1&c=2"
    )


def test_resolve_path_absolute():
    assert (
        resolve_link("https://x.example/dir/page", "/files/a.csv")
        == "https://x.example/files/a.csv"
    )


def test_resolve_relative():
    assert (
        resolve_link("https://x.example/dir/page", "sub/a.csv")
        == "https://x.example/dir/sub/a.csv"
    )
    assert (
        resolve_link("https://x.example/dir/page", "../a.csv")
        == "https://x.example/a.csv"
    )


def test_resolve_absolute_passthrough():
    assert (
        resolve_link("https://x.example/p", "https://other.example/q#f")
        == "https://other.example/q"
    )


def test_resolve_fragment_only_is_same_page():
    assert resolve_link("https://x.example/p", "#top") == "https://x.example/p"


def test_malformed_port_treated_as_no_port():
    # urlsplit accepts "//::" but raises ValueError on .port access;
    # canonicalisation must degrade instead of crashing (found by the
    # idempotence property below).
    assert canonicalize_url("https://::") == "https:///"
    assert (
        resolve_link("https://www.x.example/base/page", "//::")
        == "https:///"
    )


def test_non_numeric_port_dropped():
    assert canonicalize_url("https://x.example:abc/a") == "https://x.example/a"


@given(st.text(alphabet="abc/.?#:=&", max_size=25))
@settings(max_examples=80)
def test_canonicalisation_idempotent(suffix):
    url = resolve_link("https://www.x.example/base/page", suffix)
    assert canonicalize_url(url) == url
