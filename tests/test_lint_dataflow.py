"""Phase-3 dataflow tests: the solver, its statement views, and one
injected-violation fixture per DF rule (mirroring the FLOW self-gate
style in ``tests/test_lint_self.py`` — a minimal source carrying exactly
one violation, asserted down to the line)."""

from __future__ import annotations

import ast
import textwrap

from repro.lint import (DataflowRule, ForwardAnalysis, Linter,
                        ReachingDefinitions, RuleConfig, build_cfg,
                        default_df_rules, render_stats, solve_forward)
from repro.lint.cfg import EXIT
from repro.lint.dataflow import stmt_defs, stmt_uses


def lint(source: str, path: str = "src/repro/core/mod.py"):
    return Linter(RuleConfig()).check_source(
        textwrap.dedent(source), path=path
    )


def only(findings, code):
    return [f for f in findings if f.rule == code]


def solve_rd(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    )
    cfg = build_cfg(func)
    return cfg, solve_forward(cfg, ReachingDefinitions())


# ---------------------------------------------------------------------------
# Statement views
# ---------------------------------------------------------------------------


def stmt_of(source: str) -> ast.stmt:
    return ast.parse(textwrap.dedent(source)).body[0]


def test_stmt_defs_cover_binding_forms():
    assert stmt_defs(stmt_of("a, (b, c) = x")) == \
        [("a", 1), ("b", 1), ("c", 1)]
    assert stmt_defs(stmt_of("for i in xs:\n    pass")) == [("i", 1)]
    assert stmt_defs(stmt_of("with open(p) as fh:\n    pass")) == \
        [("fh", 1)]
    assert stmt_defs(stmt_of("import os.path")) == [("os", 1)]
    assert stmt_defs(stmt_of("from m import x as y")) == [("y", 1)]
    assert ("n", 1) in stmt_defs(stmt_of("while (n := read()):\n    pass"))


def test_stmt_uses_are_header_only():
    assert stmt_uses(stmt_of("x += y")) == {"x", "y"}
    # Compound headers read only their own expressions, not the body.
    assert stmt_uses(stmt_of("if cond:\n    body(arg)")) == {"cond"}
    assert stmt_uses(stmt_of("for i in xs:\n    use(i)")) == {"xs"}


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------


def test_reaching_definitions_kill_within_a_block():
    _, (in_facts, _) = solve_rd(
        """
        def f():
            x = 1
            x = 2
            return x
        """
    )
    assert in_facts[EXIT] == frozenset({("x", 4)})  # line 3 was killed


def test_reaching_definitions_join_at_branch_merge():
    cfg, (in_facts, _) = solve_rd(
        """
        def f(flag):
            x = 1
            if flag:
                x = 2
            return x
        """
    )
    # Both definitions survive the merge and reach the function exit.
    assert cfg is not None
    assert in_facts[EXIT] == frozenset({("x", 3), ("x", 5)})


def test_custom_analysis_plugs_into_the_solver():
    class AssignedNames(ForwardAnalysis):
        def transfer(self, fact, stmt):
            return fact | frozenset(n for n, _ in stmt_defs(stmt))

    source = """
        def f(flag):
            x = 1
            if flag:
                y = 2
            else:
                z = 3
            return x
        """
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    )
    _, out = solve_forward(build_cfg(func), AssignedNames())
    seen = frozenset().union(*out.values())
    assert seen == {"x", "y", "z"}


def test_df_catalogue_codes_and_metadata():
    rules = default_df_rules()
    assert [r.code for r in rules] == \
        ["DF001", "DF002", "DF003", "DF004", "DF005"]
    for rule in rules:
        assert isinstance(rule, DataflowRule)
        assert rule.name and rule.rationale


# ---------------------------------------------------------------------------
# DF001 — unseeded-rng-taint
# ---------------------------------------------------------------------------


def test_df001_fixed_seed_rng_reaching_sample_is_caught():
    findings = only(lint(
        """
        import random


        def pick(items):
            rng = random.Random(42)
            return rng.sample(items, 3)
        """
    ), "DF001")
    assert len(findings) == 1
    assert findings[0].line == 7
    assert "derive_rng" in findings[0].message


def test_df001_taint_propagates_through_aliasing():
    findings = only(lint(
        """
        import random


        def shuffle_all(items):
            rng = random.Random(7)
            alias = rng
            alias.shuffle(items)
        """
    ), "DF001")
    assert len(findings) == 1
    assert findings[0].line == 8


def test_df001_survives_a_partial_rebind_branch():
    findings = only(lint(
        """
        import random


        def pick(items, flag, fresh):
            rng = random.Random(3)
            if flag:
                rng = fresh()
            return rng.sample(items, 3)
        """
    ), "DF001")
    assert len(findings) == 1  # tainted on the not-flag path


def test_df001_flags_tainted_argument_to_sampling_helper():
    findings = only(lint(
        """
        import random


        def pick(items):
            rng = random.Random(5)
            return weighted_choice(items, rng)
        """
    ), "DF001")
    assert len(findings) == 1


def test_df001_parameter_seeded_rng_is_fine():
    findings = only(lint(
        """
        import random


        def pick(items, seed):
            rng = random.Random(seed)
            return rng.sample(items, 3)
        """
    ), "DF001")
    assert findings == []


# ---------------------------------------------------------------------------
# DF002 — resource-leak
# ---------------------------------------------------------------------------


def test_df002_early_return_leaking_an_open_handle_is_caught():
    findings = only(lint(
        """
        def dump(path, rows):
            fh = open(path, "w")
            for row in rows:
                if not row:
                    return None
                fh.write(row)
            fh.close()
            return None
        """
    ), "DF002")
    assert len(findings) == 1
    assert findings[0].line == 3
    assert "'fh'" in findings[0].message


def test_df002_with_block_never_fires():
    findings = only(lint(
        """
        def dump(path, rows):
            with open(path, "w") as fh:
                for row in rows:
                    fh.write(row)
        """
    ), "DF002")
    assert findings == []


def test_df002_close_in_finally_covers_every_path():
    findings = only(lint(
        """
        def dump(path, rows):
            fh = open(path, "w")
            try:
                for row in rows:
                    fh.write(row)
            finally:
                fh.close()
            return None
        """
    ), "DF002")
    assert findings == []


def test_df002_escaped_handle_moves_ownership():
    findings = only(lint(
        """
        def acquire(path):
            fh = open(path)
            return fh
        """
    ), "DF002")
    assert findings == []


# ---------------------------------------------------------------------------
# DF004 — dead-store
# ---------------------------------------------------------------------------


def test_df004_overwritten_initialiser_is_caught():
    findings = only(lint(
        """
        def compute(items):
            total = 0
            total = sum(items)
            return total
        """
    ), "DF004")
    assert len(findings) == 1
    assert findings[0].line == 3
    assert "'total'" in findings[0].message


def test_df004_definition_live_on_one_branch_is_fine():
    findings = only(lint(
        """
        def compute(flag):
            value = 0
            if flag:
                value = 1
            return value
        """
    ), "DF004")
    assert findings == []


def test_df004_underscore_names_and_closure_reads_are_exempt():
    findings = only(lint(
        """
        def make(build, expensive):
            _scratch = expensive()
            state = build()

            def read():
                return state
            return read
        """
    ), "DF004")
    assert findings == []


def test_df_findings_respect_noqa_markers():
    findings = only(lint(
        """
        def compute(items):
            total = 0  # repro: noqa[DF004] explicit zero documents the unit
            total = sum(items)
            return total
        """
    ), "DF004")
    assert findings == []


# ---------------------------------------------------------------------------
# DF005 — swallowed-retry-error
# ---------------------------------------------------------------------------


def test_df005_swallowed_timeout_is_caught():
    findings = only(lint(
        """
        def fetch(client, url):
            try:
                return client.get(url)
            except TimeoutError:
                pass
            return None
        """
    ), "DF005")
    assert len(findings) == 1
    assert findings[0].line == 5
    assert "TimeoutError" in findings[0].message


def test_df005_reraise_satisfies_the_obligation():
    findings = only(lint(
        """
        def fetch(client, url):
            try:
                return client.get(url)
            except TimeoutError:
                raise
        """
    ), "DF005")
    assert findings == []


def test_df005_reachable_accounting_call_satisfies_the_obligation():
    findings = only(lint(
        """
        def fetch(client, ledger, url):
            try:
                return client.get(url)
            except ConnectionError:
                ledger.charge(1)
            return None
        """
    ), "DF005")
    assert findings == []


def test_df005_fall_through_to_shared_bookkeeping_passes():
    findings = only(lint(
        """
        def fetch(client, url):
            try:
                response = client.get(url)
            except HttpTimeoutError:
                response = None
            client.record(response)
            return response
        """
    ), "DF005")
    assert findings == []


# ---------------------------------------------------------------------------
# DF003 — shared-mutable-state (project phase)
# ---------------------------------------------------------------------------


def materialize(tmp_path, tree: dict[str, str]) -> None:
    for rel, content in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")


def project_findings(tmp_path, tree: dict[str, str]):
    materialize(tmp_path, tree)
    run = Linter(RuleConfig()).run(
        [tmp_path / "src" / "repro"], project=True
    )
    return run.findings


def test_df003_mutation_in_entry_package_is_caught(tmp_path):
    findings = only(project_findings(tmp_path, {
        "src/repro/core/tracker.py": """\
            SEEN = set()


            def crawl(url):
                SEEN.add(url)
                return url
            """,
    }), "DF003")
    assert len(findings) == 1
    assert findings[0].path.endswith("tracker.py")
    assert findings[0].line == 5
    assert "crawl" in findings[0].message
    assert "'SEEN'" in findings[0].message


def test_df003_reaches_helpers_through_the_call_graph(tmp_path):
    findings = only(project_findings(tmp_path, {
        "src/repro/core/engine.py": """\
            from repro.experiments.cachez import memo


            def crawl(url):
                return memo(url, url)
            """,
        "src/repro/experiments/cachez.py": """\
            _CACHE = {}


            def memo(key, value):
                _CACHE[key] = value
                return value
            """,
    }), "DF003")
    assert len(findings) == 1
    assert findings[0].path.endswith("cachez.py")
    assert findings[0].line == 5


def test_df003_ignores_unreachable_mutations(tmp_path):
    findings = only(project_findings(tmp_path, {
        "src/repro/experiments/cachez.py": """\
            _CACHE = {}


            def memo(key, value):
                _CACHE[key] = value
                return value
            """,
    }), "DF003")
    assert findings == []


def test_df003_facts_survive_the_incremental_cache(tmp_path):
    materialize(tmp_path, {
        "src/repro/core/tracker.py": """\
            SEEN = set()


            def crawl(url):
                SEEN.add(url)
                return url
            """,
    })
    cache = tmp_path / "lint-cache.json"
    root = tmp_path / "src" / "repro"
    cold = Linter(RuleConfig()).run([root], project=True,
                                    cache_path=cache)
    warm = Linter(RuleConfig()).run([root], project=True,
                                    cache_path=cache)
    assert only(cold.findings, "DF003") == only(warm.findings, "DF003")
    assert len(only(warm.findings, "DF003")) == 1
    assert warm.cache.hits == warm.cache.files > 0


# ---------------------------------------------------------------------------
# Stats plumbing
# ---------------------------------------------------------------------------


def test_render_stats_reports_the_dataflow_phase(tmp_path):
    (tmp_path / "m.py").write_text("def f():\n    return 1\n")
    run = Linter(RuleConfig()).run([tmp_path / "m.py"])
    text = render_stats(run)
    assert "phase per-file" in text
    assert "dataflow" in text
    assert "cache: disabled" in text
    assert set(run.timings) >= {"per_file", "dataflow"}
