"""Documentation sanity: the README quickstart runs, and the docs'
claims about the public API hold."""

from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_readme_quickstart_snippet():
    """The code block shown in README.md works as written (small scale)."""
    from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier

    env = CrawlEnvironment(load_paper_site("ju", scale=0.1))
    result = sb_classifier(SBConfig(seed=1)).crawl(env, budget=200)
    assert result.n_requests > 0
    assert result.n_targets >= 0


def test_package_version_matches_pyproject():
    """``repro.__version__`` is the single version the docs point at; it
    must stay in lockstep with the ``pyproject.toml`` metadata."""
    import tomllib

    import repro

    with open(REPO / "pyproject.toml", "rb") as handle:
        pyproject = tomllib.load(handle)
    assert repro.__version__ == pyproject["project"]["version"]


def test_readme_mentions_every_example():
    readme = (REPO / "README.md").read_text()
    for example in (REPO / "examples").glob("*.py"):
        assert example.name in readme, f"{example.name} missing from README"


def test_design_lists_every_subpackage():
    design = (REPO / "DESIGN.md").read_text()
    import repro

    src = Path(repro.__file__).parent
    for package in sorted(p.name for p in src.iterdir() if p.is_dir()
                          and (p / "__init__.py").exists()):
        assert f"{package}/" in design or f"{package}." in design, package


def test_top_level_api_exports_exist():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_experiments_md_covers_all_tables():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for artefact in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                     "Table 6", "Table 7", "Figure 5", "Figure 15",
                     "Proposition 4"):
        assert artefact in experiments, artefact


def test_paper_mime_list_documented():
    from repro.webgraph.mime import TARGET_MIME_TYPES

    assert len(TARGET_MIME_TYPES) == 38  # Appendix A.2


def test_api_doc_covers_top_level_exports():
    """docs/api.md names every ``repro.__all__`` export (drift gate)."""
    import repro

    api = (REPO / "docs" / "api.md").read_text()
    for name in repro.__all__:
        assert name in api, f"{name} missing from docs/api.md"


def _python_blocks(markdown: str) -> list[str]:
    """The contents of every ```python fenced block, in order."""
    blocks = []
    inside = False
    current: list[str] = []
    for line in markdown.splitlines():
        if line.strip() == "```python":
            inside, current = True, []
        elif inside and line.strip() == "```":
            inside = False
            blocks.append("\n".join(current))
        elif inside:
            current.append(line)
    return blocks


def test_observability_doc_covers_every_event():
    """Every CrawlEvent subclass — name, wire tag, and each field — has
    a row in the docs/observability.md schema table."""
    import dataclasses

    from repro.obs import events as ev

    doc = (REPO / "docs" / "observability.md").read_text()
    subclasses = [cls for cls in vars(ev).values()
                  if isinstance(cls, type) and issubclass(cls, ev.CrawlEvent)
                  and cls is not ev.CrawlEvent]
    assert subclasses, "no CrawlEvent subclasses found"
    assert set(ev.EVENT_TYPES.values()) == set(subclasses), \
        "EVENT_TYPES registry out of sync with the subclasses"
    for cls in subclasses:
        assert f"`{cls.__name__}`" in doc, cls.__name__
        assert f"`{cls.kind}`" in doc, f"{cls.__name__} kind tag"
        for f in dataclasses.fields(cls):
            assert f"`{f.name}`" in doc, f"{cls.__name__}.{f.name}"


def test_static_analysis_doc_covers_every_df_rule():
    """The DF catalogue table in docs/static_analysis.md carries one
    row per registered dataflow rule — code and name both — and names
    no DF code that is not registered (drift gate, both directions)."""
    import re

    from repro.lint import default_df_rules

    doc = (REPO / "docs" / "static_analysis.md").read_text()
    table_rows = {
        match.group(1): match.group(2)
        for match in re.finditer(r"^\| (DF\d+) \| ([a-z0-9-]+) \|",
                                 doc, flags=re.MULTILINE)
    }
    registered = {rule.code: rule.name for rule in default_df_rules()}
    assert table_rows == registered


def test_static_analysis_doc_covers_every_conc_rule():
    """The CONC catalogue table in docs/static_analysis.md carries one
    row per registered concurrency rule — code and name both — and
    names no CONC code that is not registered (drift gate, both
    directions, same contract as the DF gate above)."""
    import re

    from repro.lint import default_conc_rules

    doc = (REPO / "docs" / "static_analysis.md").read_text()
    table_rows = {
        match.group(1): match.group(2)
        for match in re.finditer(r"^\| (CONC\d+) \| ([a-z0-9-]+) \|",
                                 doc, flags=re.MULTILINE)
    }
    registered = {rule.code: rule.name for rule in default_conc_rules()}
    assert table_rows == registered


def test_static_analysis_doc_covers_certificate_schema():
    """Every top-level key of the emitted shard-safety certificate must
    appear in the docs/static_analysis.md schema description."""
    import json

    certificate = json.loads(
        (REPO / "bench_results" / "shard_safety.json").read_text()
    )
    doc = (REPO / "docs" / "static_analysis.md").read_text()
    for key in certificate:
        assert f"`{key}`" in doc, f"certificate key {key} missing from doc"


def test_observability_doc_covers_every_metric():
    """The metric catalogue table names every registered instrument."""
    from repro.obs import MetricsObserver

    doc = (REPO / "docs" / "observability.md").read_text()
    for name in MetricsObserver().registry.names():
        assert f"`{name}`" in doc, f"metric {name} missing from catalogue"


def test_performance_doc_covers_schema_and_sections():
    """docs/performance.md is the BENCH_<n>.json schema reference: every
    benchmark section name and every schema field must appear in it
    (drift gate for the bench subsystem)."""
    from repro.bench import SCHEMA_FIELDS, SECTION_NAMES

    doc = (REPO / "docs" / "performance.md").read_text()
    for section in SECTION_NAMES:
        assert f"`{section}`" in doc, f"section {section} missing"
    for field in SCHEMA_FIELDS:
        assert f"`{field}`" in doc, f"schema field {field} missing"


def test_observability_worked_example_runs_as_written():
    """The docs/observability.md worked example executes verbatim
    (its own asserts check event counts against the CrawlResult)."""
    doc = (REPO / "docs" / "observability.md").read_text()
    snippets = [b for b in _python_blocks(doc) if "MemorySink()" in b]
    assert snippets, "worked example block not found"
    exec(compile(snippets[0], "docs/observability.md", "exec"), {})


def test_campaign_doc_covers_engine_exports():
    """docs/campaign.md names every ``repro.campaign.__all__`` export
    (drift gate, same contract as the api.md gate)."""
    import repro.campaign

    doc = (REPO / "docs" / "campaign.md").read_text()
    for name in repro.campaign.__all__:
        assert f"`{name}`" in doc, f"{name} missing from docs/campaign.md"


def test_campaign_doc_worked_example_runs_as_written():
    """The docs/campaign.md worked example executes verbatim — it runs
    a tiny serial campaign twice and asserts the digest is stable."""
    doc = (REPO / "docs" / "campaign.md").read_text()
    snippets = [b for b in _python_blocks(doc) if "MemorySink()" in b]
    assert snippets, "worked example block not found"
    exec(compile(snippets[0], "docs/campaign.md", "exec"), {})


def test_campaign_doc_is_linked_from_entry_points():
    """The campaign engine doc is reachable from the places a reader
    starts at — README, architecture, api — and from the docs whose
    tables reference its events/metrics/bench section."""
    for path in ("README.md", "docs/architecture.md", "docs/api.md",
                 "docs/observability.md", "docs/performance.md",
                 "docs/static_analysis.md"):
        assert "campaign.md" in (REPO / path).read_text(), path


def test_checkpoint_doc_covers_api_and_manifest():
    """docs/checkpoint.md names every ``repro.checkpoint.__all__``
    export and every manifest field (drift gate for the durable-state
    subsystem's schema and API)."""
    import repro.checkpoint

    doc = (REPO / "docs" / "checkpoint.md").read_text()
    for name in repro.checkpoint.__all__:
        assert f"`{name}`" in doc, f"{name} missing from docs/checkpoint.md"
    for field in repro.checkpoint.MANIFEST_FIELDS:
        assert f"`{field}`" in doc, f"manifest field {field} missing"


def test_checkpoint_doc_documents_the_cli():
    """The worked example must show the durable-campaign flags the CLI
    actually accepts."""
    doc = (REPO / "docs" / "checkpoint.md").read_text()
    for flag in ("--checkpoint", "--checkpoint-every", "--resume"):
        assert flag in doc, f"{flag} missing from docs/checkpoint.md"
    assert "kill -TERM" in doc


def test_checkpoint_doc_is_linked_from_entry_points():
    """The checkpoint doc is reachable from the places a reader starts
    at, and from the performance doc whose bench table references the
    ``checkpoint`` section."""
    for path in ("README.md", "docs/architecture.md", "docs/api.md",
                 "docs/performance.md"):
        assert "checkpoint.md" in (REPO / path).read_text(), path
