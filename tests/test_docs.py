"""Documentation sanity: the README quickstart runs, and the docs'
claims about the public API hold."""

from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_readme_quickstart_snippet():
    """The code block shown in README.md works as written (small scale)."""
    from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier

    env = CrawlEnvironment(load_paper_site("ju", scale=0.1))
    result = sb_classifier(SBConfig(seed=1)).crawl(env, budget=200)
    assert result.n_requests > 0
    assert result.n_targets >= 0


def test_readme_mentions_every_example():
    readme = (REPO / "README.md").read_text()
    for example in (REPO / "examples").glob("*.py"):
        assert example.name in readme, f"{example.name} missing from README"


def test_design_lists_every_subpackage():
    design = (REPO / "DESIGN.md").read_text()
    import repro

    src = Path(repro.__file__).parent
    for package in sorted(p.name for p in src.iterdir() if p.is_dir()
                          and (p / "__init__.py").exists()):
        assert f"{package}/" in design or f"{package}." in design, package


def test_top_level_api_exports_exist():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_experiments_md_covers_all_tables():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for artefact in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                     "Table 6", "Table 7", "Figure 5", "Figure 15",
                     "Proposition 4"):
        assert artefact in experiments, artefact


def test_paper_mime_list_documented():
    from repro.webgraph.mime import TARGET_MIME_TYPES

    assert len(TARGET_MIME_TYPES) == 38  # Appendix A.2
