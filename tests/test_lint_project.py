"""Unit tests for phase 2 of the whole-program analysis: symbol-table
extraction, import-graph construction and the FLOW rule family's edge
cases (the end-to-end injected-violation tests live in
``tests/test_lint_self.py``)."""

from __future__ import annotations

import ast
import textwrap

from repro.lint import Linter, RuleConfig
from repro.lint.project import (build_project, default_project_rules,
                                resolve_import)
from repro.lint.symbols import extract_symbols, module_name_for


def symbols_for(source: str, path: str):
    return extract_symbols(ast.parse(textwrap.dedent(source)), path)


def run_project(tmp_path, tree: dict[str, str], lint: str = "src/repro",
                config: RuleConfig | None = None):
    for rel, content in tree.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content), encoding="utf-8")
    roots = [tmp_path / name for name in ("src", "tests", "examples",
                                          "benchmarks")
             if (tmp_path / name).is_dir()]
    return Linter(config or RuleConfig()).run(
        [tmp_path / lint], project=True, reference_roots=roots
    ).findings


# -- symbol tables -------------------------------------------------------


def test_module_name_resolution():
    assert module_name_for("src/repro/core/bandit.py") == "repro.core.bandit"
    assert module_name_for("src/repro/core/__init__.py") == "repro.core"
    assert module_name_for("tests/test_x.py") == "tests.test_x"
    assert module_name_for("benchmarks/test_bench_lint.py") == \
        "benchmarks.test_bench_lint"
    assert module_name_for("scratch.py") == "scratch"


def test_symbols_capture_defs_exports_refs_calls():
    mod = symbols_for(
        """
        import math
        from repro.utils.rng import derive_rng

        __all__ = ["Crawler", "make"]

        LIMIT = math.inf


        class Crawler:
            def crawl(self, budget, rng):
                return derive_rng(rng, "crawl")

            def _internal(self):
                pass


        def make(seed):
            return Crawler()
        """,
        "src/repro/core/crawler.py",
    )
    assert mod.module == "repro.core.crawler"
    assert mod.package == "core"
    assert not mod.is_package
    assert [name for name, _ in mod.exports] == ["Crawler", "make"]
    names = {f.qualname: f for f in mod.functions}
    assert names["Crawler.crawl"].is_public and names["Crawler.crawl"].is_method
    assert not names["Crawler._internal"].is_public
    assert "rng" in names["Crawler.crawl"].loaded
    assert "derive_rng" in mod.call_heads()
    assert "Crawler" in mod.call_heads()  # make() constructs one
    assert {"math", "derive_rng"} <= mod.ref_set()


def test_symbols_mark_lazy_and_type_checking_imports():
    mod = symbols_for(
        """
        from typing import TYPE_CHECKING

        import repro.utils

        if TYPE_CHECKING:
            from repro.core.crawler import SBCrawler


        def late():
            from repro.core.bandit import SleepingBandit

            return SleepingBandit
        """,
        "src/repro/analysis/report.py",
    )
    by_module = {rec.module: rec for rec in mod.imports}
    assert by_module["repro.utils"].toplevel
    assert not by_module["repro.core.crawler"].toplevel
    assert not by_module["repro.core.bandit"].toplevel
    # ... but both still feed the reference corpus.
    assert {"SBCrawler", "SleepingBandit"} <= mod.ref_set()


def test_stub_bodies_are_marked():
    mod = symbols_for(
        """
        class Base:
            def run(self, seed):
                raise NotImplementedError

            def explain(self, seed):
                ...
        """,
        "src/repro/baselines/base.py",
    )
    assert all(f.is_stub for f in mod.functions)


def test_relative_import_resolution():
    package = symbols_for("from . import util\n",
                          "src/repro/core/__init__.py")
    module = symbols_for("from .util import helper\n",
                         "src/repro/core/crawler.py")
    assert resolve_import(package, "", 1) == "repro.core"
    assert resolve_import(module, "util", 1) == "repro.core.util"
    assert resolve_import(module, "utils.rng", 2) == "repro.utils.rng"


# -- project model -------------------------------------------------------


def test_import_graph_resolves_submodule_from_imports():
    a = symbols_for("from repro.core import frontier\n",
                    "src/repro/core/crawler.py")
    b = symbols_for("x = 1\n", "src/repro/core/frontier.py")
    init = symbols_for("", "src/repro/core/__init__.py")
    model = build_project([a, b, init], linted_paths=[a.path, b.path],
                          noqa={}, suppressed={})
    assert "repro.core.frontier" in model.import_graph["repro.core.crawler"]


def test_lazy_imports_do_not_create_graph_edges():
    a = symbols_for(
        "def late():\n    from repro.core import frontier\n",
        "src/repro/core/crawler.py",
    )
    b = symbols_for("x = 1\n", "src/repro/core/frontier.py")
    model = build_project([a, b], linted_paths=[a.path], noqa={},
                          suppressed={})
    assert model.import_graph["repro.core.crawler"] == set()


# -- FLOW rule edge cases ------------------------------------------------


def test_flow001_ignores_stubs_private_and_used_params(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/api.py": """\
            def forward(seed):
                return build(seed)


            def stores(self_seed):
                state = {"seed": self_seed}
                return state


            def _private(seed):
                return 0


            def build(seed):
                import random as _r  # repro: noqa[DET001] test fixture
                return seed
            """,
        "src/repro/baselines/base.py": """\
            class Baseline:
                def run(self, seed):
                    raise NotImplementedError
            """,
    })
    assert [f for f in findings if f.rule == "FLOW001"] == []


def test_flow001_outside_seeded_packages_is_ignored(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/analysis/report.py": """\
            def summarise(trace, seed):
                return len(trace)
            """,
    })
    assert [f for f in findings if f.rule == "FLOW001"] == []


def test_flow002_star_import_counts_as_use(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/__init__.py": """\
            def lonely():
                return 1


            __all__ = ["lonely"]
            """,
        "examples/demo.py": "from repro.core import *\n",
    })
    assert [f for f in findings if f.rule == "FLOW002"] == []


def test_flow002_reference_in_benchmarks_counts(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/__init__.py": """\
            def lonely():
                return 1


            __all__ = ["lonely"]
            """,
        "benchmarks/test_bench_demo.py": """\
            from repro.core import lonely

            def test_bench(): lonely()
            """,
    })
    assert [f for f in findings if f.rule == "FLOW002"] == []


def test_flow003_reports_each_cycle_once(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/a.py": "from repro.core import b\n",
        "src/repro/core/b.py": "from repro.core import c\n",
        "src/repro/core/c.py": "from repro.core import a\n",
        "src/repro/core/__init__.py": "",
    })
    flow = [f for f in findings if f.rule == "FLOW003"]
    assert len(flow) == 1
    assert flow[0].message.count("repro.core.a") == 2  # start and close


def test_flow003_lazy_import_breaks_cycle(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/a.py": "from repro.core.b import f\n",
        "src/repro/core/b.py": """\
            def g():
                from repro.core.a import h
                return h


            def f():
                return 1
            """,
    })
    assert [f for f in findings if f.rule == "FLOW003"] == []


def test_flow004_respects_explicit_keep_marker(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/keep.py": """\
            def f(x):
                return x  # repro: noqa[FLOW004] reserved for generated code
            """,
    })
    assert [f for f in findings if f.rule == "FLOW004"] == []


def test_flow004_used_marker_not_flagged(tmp_path):
    findings = run_project(tmp_path, {
        "src/repro/core/used.py": """\
            def f(x):
                return x == 0.5  # repro: noqa[COR002] exact sentinel
            """,
    })
    assert findings == []


def test_flow004_flags_marker_whose_rule_was_disabled(tmp_path):
    config = RuleConfig(disable=frozenset({"COR002"}))
    findings = run_project(tmp_path, {
        "src/repro/core/used.py": """\
            def f(x):
                return x == 0.5  # repro: noqa[COR002] exact sentinel
            """,
    }, config=config)
    assert [f.rule for f in findings] == ["FLOW004"]


def test_flow005_generic_reconstruction_does_not_count(tmp_path):
    """``cls(**kwargs)`` in a registry does not emit any concrete event;
    only a named construction site counts."""
    findings = run_project(tmp_path, {
        "src/repro/obs/events.py": """\
            class CrawlEvent:
                pass


            class LostEvent(CrawlEvent):
                pass


            def event_from_dict(payload):
                cls = {"lost": LostEvent}[payload["e"]]
                return cls(**payload)
            """,
    })
    flow = [f for f in findings if f.rule == "FLOW005"]
    assert len(flow) == 1 and "LostEvent" in flow[0].message


def test_flow_rules_have_unique_codes_and_docs():
    rules = default_project_rules()
    codes = [rule.code for rule in rules]
    assert codes == sorted(codes) == \
        ["FLOW001", "FLOW002", "FLOW003", "FLOW004", "FLOW005"]
    assert all(rule.name and rule.rationale for rule in rules)


def test_findings_only_anchor_in_linted_paths(tmp_path):
    """A violation in the reference corpus (tests/) must not surface
    when only src/ is linted."""
    findings = run_project(tmp_path, {
        "src/repro/core/ok.py": "X = 1\n",
        "tests/test_bad.py": """\
            def helper(seed):
                return 0
            """,
    })
    assert findings == []
