"""Tests for SD content generation and table detection (Table 7 path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sd.content import SD_PROFILES, TargetContentGenerator
from repro.sd.detector import count_statistic_tables, detect_tables

MIMES = [
    "text/csv",
    "application/pdf",
    "application/json",
    "application/vnd.ms-excel",
    "application/zip",
    "text/comma-separated-values",
    "application/msword",
]


def test_generation_deterministic():
    generator = TargetContentGenerator("be", seed=0)
    a = generator.generate("https://x.example/f1", "text/csv")
    b = generator.generate("https://x.example/f1", "text/csv")
    assert a.body == b.body
    assert a.n_tables == b.n_tables


def test_different_urls_differ():
    generator = TargetContentGenerator("be", seed=0)
    a = generator.generate("https://x.example/f1", "text/csv")
    b = generator.generate("https://x.example/f2", "text/csv")
    assert a.body != b.body


@pytest.mark.parametrize("mime", MIMES)
def test_detector_matches_generator(mime):
    generator = TargetContentGenerator("nc", seed=3)
    for i in range(40):
        target = generator.generate(f"https://x.example/d{i}", mime)
        detected = count_statistic_tables(target.body, target.mime_type)
        assert detected == target.n_tables, (mime, i)


def test_yield_tracks_profile():
    generator = TargetContentGenerator("is", seed=1)  # 93% yield
    hits = sum(
        1
        for i in range(300)
        if generator.generate(f"https://x.example/{i}", "text/csv").n_tables > 0
    )
    assert 0.85 < hits / 300 < 1.0


def test_low_yield_site():
    generator = TargetContentGenerator("wh", seed=1)  # 40% yield
    hits = sum(
        1
        for i in range(300)
        if generator.generate(f"https://x.example/{i}", "application/pdf").n_tables
        > 0
    )
    assert 0.28 < hits / 300 < 0.52


def test_unknown_site_uses_default_profile():
    generator = TargetContentGenerator("zz", seed=0)
    assert generator.sd_yield == 0.60


def test_detector_rejects_non_tables():
    prose = "This is just text.\n\nMore text follows here."
    assert count_statistic_tables(prose, "application/pdf") == 0
    contacts = "name,email\nann,a@x.org\nbob,b@x.org\ncal,c@x.org"
    # Non-numeric CSV: not a statistics table.
    assert count_statistic_tables(contacts, "text/csv") == 0


def test_detector_accepts_numeric_csv():
    table = "year,births,deaths\n2001,5,7\n2002,6,8\n2003,4,9\n2004,3,2"
    assert count_statistic_tables(table, "text/csv") == 1


def test_detector_fixed_width():
    table = (
        "year  births  deaths\n"
        "2001  5.0  7.1\n2002  6.2  8.3\n2003  4.4  9.5"
    )
    assert count_statistic_tables(table, "application/pdf") == 1


def test_detector_json():
    body = (
        '{"datasets": [{"records": ['
        '{"year": 1, "v": 2.0}, {"year": 2, "v": 3.0}, {"year": 3, "v": 4.0}'
        "]}]}"
    )
    assert count_statistic_tables(body, "application/json") == 1
    assert count_statistic_tables("not json", "application/json") == 0


def test_detect_tables_returns_blocks():
    table = "year,births\n2001,5\n2002,6\n2003,4"
    blocks = detect_tables(table, "text/csv")
    assert len(blocks) == 1
    assert "2001" in blocks[0]


def test_profiles_match_paper_table7():
    assert SD_PROFILES["be"] == (82.0, 9.1)
    assert SD_PROFILES["wh"] == (40.0, 1.4)
    assert len(SD_PROFILES) == 7


@given(st.sampled_from(MIMES), st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_generator_detector_property(mime, index):
    generator = TargetContentGenerator("oe", seed=9)
    target = generator.generate(f"https://x.example/p{index}", mime)
    assert count_statistic_tables(target.body, target.mime_type) == target.n_tables
