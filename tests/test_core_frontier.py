"""Tests for the action-partitioned frontier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import Frontier


def test_add_and_pop_from_action():
    frontier = Frontier(seed=0)
    frontier.add("u1", 0)
    frontier.add("u2", 0)
    frontier.add("u3", 1)
    assert len(frontier) == 3
    url = frontier.pop_from_action(0)
    assert url in ("u1", "u2")
    assert len(frontier) == 2
    assert url not in frontier


def test_duplicate_add_ignored():
    frontier = Frontier()
    frontier.add("u1", 0)
    frontier.add("u1", 1)  # already present under action 0
    assert len(frontier) == 1
    assert frontier.action_of("u1") == 0


def test_pop_from_sleeping_action_raises():
    frontier = Frontier()
    frontier.add("u1", 0)
    frontier.pop_from_action(0)
    with pytest.raises(KeyError):
        frontier.pop_from_action(0)
    with pytest.raises(KeyError):
        frontier.pop_from_action(99)


def test_awake_actions():
    frontier = Frontier()
    frontier.add("u1", 0)
    frontier.add("u2", 1)
    assert sorted(frontier.awake_actions()) == [0, 1]
    frontier.pop_from_action(0)
    assert frontier.awake_actions() == [1]


def test_pop_random_empties_everything():
    frontier = Frontier(seed=1)
    urls = {f"u{i}" for i in range(20)}
    for i, url in enumerate(sorted(urls)):
        frontier.add(url, i % 3)
    popped = {frontier.pop_random() for _ in range(20)}
    assert popped == urls
    assert len(frontier) == 0
    with pytest.raises(KeyError):
        frontier.pop_random()


def test_discard():
    frontier = Frontier()
    frontier.add("u1", 0)
    assert frontier.discard("u1")
    assert not frontier.discard("u1")
    assert len(frontier) == 0
    assert frontier.awake_actions() == []


def test_pop_from_action_uniformity():
    frontier = Frontier(seed=3)
    for i in range(3):
        frontier.add(f"u{i}", 0)
    # pop all; all three URLs must eventually come out
    popped = {frontier.pop_from_action(0) for _ in range(3)}
    assert popped == {"u0", "u1", "u2"}


@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 4)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60)
def test_frontier_invariants(operations):
    """Size bookkeeping and membership stay consistent under mixed ops."""
    frontier = Frontier(seed=0)
    reference: dict[str, int] = {}
    for number, action in operations:
        url = f"u{number}"
        frontier.add(url, action)
        if url not in reference:
            reference[url] = action
    assert len(frontier) == len(reference)
    for url, action in reference.items():
        assert url in frontier
        assert frontier.action_of(url) == action
        assert frontier.size_of(action) > 0
    # Drain everything through per-action pops.
    drained = set()
    while frontier.awake_actions():
        action = frontier.awake_actions()[0]
        drained.add(frontier.pop_from_action(action))
    assert drained == set(reference)
    assert len(frontier) == 0
