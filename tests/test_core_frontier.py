"""Tests for the action-partitioned frontier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import Frontier


def test_add_and_pop_from_action():
    frontier = Frontier(seed=0)
    frontier.add("u1", 0)
    frontier.add("u2", 0)
    frontier.add("u3", 1)
    assert len(frontier) == 3
    url = frontier.pop_from_action(0)
    assert url in ("u1", "u2")
    assert len(frontier) == 2
    assert url not in frontier


def test_duplicate_add_ignored():
    frontier = Frontier()
    frontier.add("u1", 0)
    frontier.add("u1", 1)  # already present under action 0
    assert len(frontier) == 1
    assert frontier.action_of("u1") == 0


def test_pop_from_sleeping_action_raises():
    frontier = Frontier()
    frontier.add("u1", 0)
    frontier.pop_from_action(0)
    with pytest.raises(KeyError):
        frontier.pop_from_action(0)
    with pytest.raises(KeyError):
        frontier.pop_from_action(99)


def test_awake_actions():
    frontier = Frontier()
    frontier.add("u1", 0)
    frontier.add("u2", 1)
    assert sorted(frontier.awake_actions()) == [0, 1]
    frontier.pop_from_action(0)
    assert frontier.awake_actions() == [1]


def test_pop_random_empties_everything():
    frontier = Frontier(seed=1)
    urls = {f"u{i}" for i in range(20)}
    for i, url in enumerate(sorted(urls)):
        frontier.add(url, i % 3)
    popped = {frontier.pop_random() for _ in range(20)}
    assert popped == urls
    assert len(frontier) == 0
    with pytest.raises(KeyError):
        frontier.pop_random()


def test_discard():
    frontier = Frontier()
    frontier.add("u1", 0)
    assert frontier.discard("u1")
    assert not frontier.discard("u1")
    assert len(frontier) == 0
    assert frontier.awake_actions() == []


def test_pop_from_action_uniformity():
    frontier = Frontier(seed=3)
    for i in range(3):
        frontier.add(f"u{i}", 0)
    # pop all; all three URLs must eventually come out
    popped = {frontier.pop_from_action(0) for _ in range(3)}
    assert popped == {"u0", "u1", "u2"}


@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 4)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60)
def test_frontier_invariants(operations):
    """Size bookkeeping and membership stay consistent under mixed ops."""
    frontier = Frontier(seed=0)
    reference: dict[str, int] = {}
    for number, action in operations:
        url = f"u{number}"
        frontier.add(url, action)
        if url not in reference:
            reference[url] = action
    assert len(frontier) == len(reference)
    for url, action in reference.items():
        assert url in frontier
        assert frontier.action_of(url) == action
        assert frontier.size_of(action) > 0
    # Drain everything through per-action pops.
    drained = set()
    while frontier.awake_actions():
        action = frontier.awake_actions()[0]
        drained.add(frontier.pop_from_action(action))
    assert drained == set(reference)
    assert len(frontier) == 0


class _ChoicesFrontier(Frontier):
    """Pre-Fenwick global draw: ``random.choices`` over rebuilt weight
    lists.  The optimized ``pop_random`` must replay its RNG stream
    bit-for-bit, so crawls are byte-identical across the change."""

    def pop_random(self) -> str:
        if len(self) == 0:
            raise KeyError("frontier is empty")
        pools = [(a, p) for a, p in self._pools.items() if len(p) > 0]
        action_id = self._rng.choices(
            [a for a, _ in pools], weights=[len(p) for _, p in pools], k=1
        )[0]
        return self.pop_from_action(action_id)


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["add", "pop_random", "pop_action", "discard"]),
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=0, max_value=80),
        ),
        max_size=120,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_pop_random_matches_choices_reference(operations, seed):
    """Fenwick draw == random.choices draw: same URLs, same RNG state."""
    fast, reference = Frontier(seed=seed), _ChoicesFrontier(seed=seed)
    for kind, action, serial in operations:
        url = f"u{serial}"
        if kind == "add":
            fast.add(url, action)
            reference.add(url, action)
        elif kind == "discard":
            assert fast.discard(url) == reference.discard(url)
        else:
            results = []
            for frontier in (fast, reference):
                try:
                    if kind == "pop_random":
                        results.append(frontier.pop_random())
                    else:
                        results.append(frontier.pop_from_action(action))
                except KeyError:
                    results.append(None)
            assert results[0] == results[1]
        assert len(fast) == len(reference)
        assert fast.n_awake() == len(reference.awake_actions())
        assert fast._rng.getstate() == reference._rng.getstate()


def test_n_awake_counter_tracks_pool_state():
    frontier = Frontier(seed=1)
    assert frontier.n_awake() == 0
    frontier.add("a", 0)
    frontier.add("b", 0)
    frontier.add("c", 1)
    assert frontier.n_awake() == 2
    frontier.pop_from_action(1)
    assert frontier.n_awake() == 1
    frontier.discard("a")
    frontier.discard("b")
    assert frontier.n_awake() == 0
    assert frontier.awake_actions() == []
