"""Tests for distribution sampling helpers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sampling import (
    bounded_lognormal,
    clipped_normal_int,
    weighted_choice,
    zipf_weights,
)


def test_zipf_weights_normalised():
    weights = zipf_weights(10)
    assert abs(sum(weights) - 1.0) < 1e-12


def test_zipf_weights_decreasing():
    weights = zipf_weights(8, exponent=1.2)
    assert all(a > b for a, b in zip(weights, weights[1:]))


def test_zipf_weights_rejects_nonpositive():
    with pytest.raises(ValueError):
        zipf_weights(0)


def test_weighted_choice_respects_zero_weight():
    rng = random.Random(0)
    picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
    assert picks == {"a"}


def test_weighted_choice_length_mismatch():
    with pytest.raises(ValueError):
        weighted_choice(random.Random(0), ["a"], [0.5, 0.5])


@given(st.floats(1.0, 1e7), st.floats(0.0, 1e7))
@settings(max_examples=60)
def test_bounded_lognormal_respects_bounds(mean, std):
    rng = random.Random(1)
    value = bounded_lognormal(rng, mean, std, low=2.0, high=1e9)
    assert 2.0 <= value <= 1e9


def test_bounded_lognormal_mean_roughly_matches():
    rng = random.Random(3)
    samples = [bounded_lognormal(rng, 1000.0, 500.0) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 800 < mean < 1300


def test_bounded_lognormal_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        bounded_lognormal(random.Random(0), 0.0, 1.0)


@given(st.floats(-100, 100), st.floats(0, 50))
@settings(max_examples=60)
def test_clipped_normal_int_bounds(mean, std):
    rng = random.Random(2)
    value = clipped_normal_int(rng, mean, std, low=1, high=40)
    assert 1 <= value <= 40
    assert isinstance(value, int)
