"""Tests for the MIME registry and blocklists."""

from repro.webgraph.mime import (
    BLOCKLISTED_EXTENSIONS,
    TARGET_MIME_TYPES,
    is_blocklisted_extension,
    is_blocklisted_mime,
    is_target_mime,
)


def test_paper_target_list_has_38_types():
    assert len(TARGET_MIME_TYPES) == 38


def test_target_mime_basics():
    assert is_target_mime("text/csv")
    assert is_target_mime("application/pdf")
    assert not is_target_mime("text/html")
    assert not is_target_mime(None)


def test_target_mime_strips_parameters_and_case():
    assert is_target_mime("Text/CSV; charset=utf-8")
    assert not is_target_mime("text/html; charset=utf-8")


def test_blocklisted_mime_prefixes():
    assert is_blocklisted_mime("image/png")
    assert is_blocklisted_mime("video/mp4; codecs=avc1")
    assert not is_blocklisted_mime("application/pdf")
    assert not is_blocklisted_mime(None)


def test_blocklisted_extension_with_query_and_fragment():
    assert is_blocklisted_extension("https://x.org/a/photo.JPG?size=large")
    assert is_blocklisted_extension("https://x.org/a/clip.mp4#t=10")
    assert not is_blocklisted_extension("https://x.org/a/file.csv")
    assert not is_blocklisted_extension("https://x.org/node/123")


def test_dot_in_directory_is_not_an_extension():
    assert not is_blocklisted_extension("https://x.org/v1.2/data")


def test_blocklist_covers_common_media():
    for ext in (".png", ".jpg", ".mp3", ".mp4", ".webm"):
        assert ext in BLOCKLISTED_EXTENSIONS
