"""Tests for the action space (Algorithm 1 semantics)."""

from repro.core.actions import ActionSpace
from repro.core.tagpath import TagPathVectorizer


def _space(theta):
    return ActionSpace(TagPathVectorizer(n=2, m=8), theta=theta, seed=0)


def test_identical_paths_share_action():
    space = _space(0.75)
    a = space.assign("html body div.content ul.items li a")
    b = space.assign("html body div.content ul.items li a")
    assert a == b
    assert space.stats(a).n_members == 2


def test_similar_paths_merge():
    space = _space(0.75)
    # Realistic-length paths differing in one segment share most 2-grams.
    base = (
        "html body div#page.wrapper main.site-main div.region div.block "
        "div.view-content ul.items li"
    )
    a = space.assign(base + " a")
    b = space.assign(base + " a.more")
    assert a == b


def test_dissimilar_paths_split():
    space = _space(0.75)
    a = space.assign("html body div.content ul.items li a")
    b = space.assign("html body footer nav.menu span a.external")
    assert a != b


def test_theta_zero_single_action():
    """θ = 0 groups everything (the paper's degenerate no-learning case)."""
    space = _space(0.0)
    paths = [
        "html body div.content ul.items li a",
        "html body footer div a",
        "html body nav ul li a.x",
    ]
    actions = {space.assign(p) for p in paths}
    assert len(actions) == 1


def test_theta_one_splits_distinct_paths():
    """θ = 1 gives (nearly) one action per distinct path."""
    space = _space(1.0)
    a = space.assign("html body div.content ul.items li a")
    b = space.assign("html body div.other ul.items li a")
    assert a != b
    # ... but an *identical* path still joins its own action.
    c = space.assign("html body div.content ul.items li a")
    assert c == a


def test_invalid_theta_rejected():
    import pytest

    with pytest.raises(ValueError):
        _space(1.5)


def test_centroid_updates_toward_new_members():
    import numpy as np

    space = _space(0.75)
    a = space.assign("html body div.content ul.items li a")
    before = space.centroid(a).copy()
    space.assign("html body div.content ul.items li a.variant")
    if space.n_actions == 1:  # merged
        after = space.centroid(a)
        assert not np.allclose(before, after)


def test_action_count_monotone():
    space = _space(0.9)
    counts = []
    for i in range(10):
        space.assign(f"html body div.section{i} ul li a")
        counts.append(space.n_actions)
    assert counts == sorted(counts)


def test_example_tag_path_recorded():
    space = _space(0.75)
    a = space.assign("html body div.datasets ul li a")
    assert space.stats(a).example_tag_path == "html body div.datasets ul li a"
