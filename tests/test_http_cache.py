"""Tests for the local replication database (Sec. 4.4 infrastructure)."""

import pytest

from repro.http.cache import PageStore, ReplicatingFetcher, replicate_site
from repro.http.messages import Response
from repro.http.server import SimulatedServer


def test_put_get_round_trip(tmp_path):
    with PageStore(tmp_path / "store.db") as store:
        response = Response(
            url="https://x.example/a",
            method="GET",
            status=200,
            mime_type="text/html",
            size=42,
            body="<html>hello</html>",
        )
        store.put(response)
        loaded = store.get("https://x.example/a")
        assert loaded is not None
        assert loaded.body == response.body
        assert loaded.status == 200
        assert loaded.size == 42
        assert "https://x.example/a" in store
        assert len(store) == 1


def test_get_missing_returns_none():
    with PageStore() as store:
        assert store.get("https://x.example/missing") is None


def test_get_and_head_stored_separately():
    with PageStore() as store:
        store.put(Response(url="u", method="GET", status=200, size=10))
        store.put(Response(url="u", method="HEAD", status=200, size=1))
        assert store.get("u", "GET").size == 10
        assert store.get("u", "HEAD").size == 1
        assert len(store) == 1  # one distinct URL


def test_put_overwrites():
    with PageStore() as store:
        store.put(Response(url="u", method="GET", status=200, size=10))
        store.put(Response(url="u", method="GET", status=404, size=5))
        assert store.get("u").status == 404


def test_semi_online_fetches_once(small_site):
    server = SimulatedServer(small_site)
    with PageStore() as store:
        fetcher = ReplicatingFetcher(server, store, mode="semi-online")
        first = fetcher.get(small_site.root_url)
        second = fetcher.get(small_site.root_url)
        assert fetcher.n_live_fetches == 1
        assert first.body == second.body


def test_local_mode_never_fetches(small_site):
    server = SimulatedServer(small_site)
    with PageStore() as store:
        fetcher = ReplicatingFetcher(server, store, mode="local")
        response = fetcher.get(small_site.root_url)
        assert response.status == 404
        assert fetcher.n_live_fetches == 0


def test_invalid_mode_rejected(small_site):
    with PageStore() as store:
        with pytest.raises(ValueError):
            ReplicatingFetcher(SimulatedServer(small_site), store, mode="bogus")


def test_replicate_site_then_local_serves_everything(small_site):
    server = SimulatedServer(small_site)
    with PageStore() as store:
        count = replicate_site(server, store)
        assert count == len(small_site)
        fetcher = ReplicatingFetcher(server, store, mode="local")
        response = fetcher.get(small_site.root_url)
        assert response.ok and response.body
        assert fetcher.n_live_fetches == 0


def test_persistence_across_connections(tmp_path):
    path = tmp_path / "persist.db"
    with PageStore(path) as store:
        store.put(Response(url="u", method="GET", status=200, size=3, body="abc"))
    with PageStore(path) as store:
        assert store.get("u").body == "abc"
