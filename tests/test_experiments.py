"""Tests for the experiment harness (small scale)."""

import math

import pytest

from repro.experiments.config import ExperimentConfig, scaled_early_stopping
from repro.experiments.figures import (
    compute_figure4,
    compute_figure5,
    compute_figure15,
)
from repro.experiments.report import ascii_curve, fmt_cell, render_table
from repro.experiments.runner import (
    CRAWLER_ORDER,
    ResultCache,
    crawler_factory,
    default_cache,
)
from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3
from repro.experiments.table4 import compute_table4
from repro.experiments.table5 import compute_table5
from repro.experiments.table6 import compute_table6
from repro.experiments.table7 import compute_table7

SCALE = 0.12
SITES = ("cl", "qa")
CONFIG = ExperimentConfig(scale=SCALE, sb_runs=1, seeds=(1,), sites=SITES)


@pytest.fixture(scope="module")
def cache():
    return ResultCache(scale=SCALE)


def test_crawler_factory_all_names():
    for name in CRAWLER_ORDER + ("OMNISCIENT", "TRES"):
        assert crawler_factory(name, seed=1).name == name
    with pytest.raises(ValueError):
        crawler_factory("NOPE")


def test_result_cache_memoises(cache):
    a = cache.run("qa", "BFS")
    b = cache.run("qa", "BFS")
    assert a is b
    assert cache.env("qa") is cache.env("qa")


def test_run_seeds_deduplicates_deterministic(cache):
    results = cache.run_seeds("qa", "BFS", seeds=(1, 2, 3))
    assert len(results) == 1
    results = cache.run_seeds("qa", "SB-CLASSIFIER", seeds=(1, 2))
    assert len(results) == 2


def test_default_cache_shared():
    assert default_cache(0.5) is default_cache(0.5)
    assert default_cache(0.5) is not default_cache(0.25)


def test_table1(cache):
    result = compute_table1(cache=cache, sites=SITES)
    assert len(result.rows) == 2
    rendered = result.render()
    assert "cl" in rendered and "qa" in rendered
    row = result.rows[0]
    assert row.n_available > 0
    assert 0 < row.target_density_pct < 100


def test_table2(cache):
    result = compute_table2(CONFIG, cache)
    assert set(result.measured) == set(CRAWLER_ORDER)
    for values in result.measured.values():
        assert len(values) == len(SITES)
        for value in values:
            assert value > 0 or math.isinf(value)
    assert len(result.saved_requests) == len(SITES)
    assert "Table 2" in result.render()


def test_table3(cache):
    result = compute_table3(CONFIG, cache)
    for values in result.measured.values():
        assert len(values) == len(SITES)
    assert "Table 3" in result.render()


def test_table4(cache):
    result = compute_table4(CONFIG, cache, sites=("qa",))
    assert "alpha=2sqrt2" in result.rows
    assert "n=2" in result.rows
    assert "theta=0.75" in result.rows
    for values in result.rows.values():
        assert len(values) == 1
    assert "Table 4" in result.render()


def test_table5(cache):
    result = compute_table5(CONFIG, cache, sites=("qa",))
    assert len(result.measured) == 8
    assert "URL_ONLY-LR" in result.measured
    assert all(0 <= mr <= 100 for mr in result.mr.values())
    rendered = result.render()
    assert "Table 5" in rendered and "Confusion" in rendered


def test_table6(cache):
    result = compute_table6(CONFIG, cache)
    assert len(result.means) == len(SITES)
    assert all(m >= 0 for m in result.means)
    assert "Table 6" in result.render()


def test_table7(cache):
    result = compute_table7(CONFIG, cache, sites=("in",), sample_size=10)
    assert len(result.yields_pct) == 1
    assert 0 <= result.yields_pct[0] <= 100
    assert "Table 7" in result.render()


def test_figure4(cache):
    result = compute_figure4(CONFIG, cache, sites=("qa",),
                             crawlers=("SB-ORACLE", "BFS"))
    assert len(result.sites) == 1
    curves = result.sites[0].curves
    assert {c.crawler for c in curves} == {"SB-ORACLE", "BFS"}
    for curve in curves:
        assert curve.targets == sorted(curve.targets)  # cumulative
    assert result.final_targets("qa", "BFS") > 0
    assert "Figure 4" in result.render()


def test_figure5(cache):
    result = compute_figure5(CONFIG, cache, sites=("qa",))
    rewards = result.top_rewards["qa"]
    assert rewards == sorted(rewards, reverse=True)
    assert "Figure 5" in result.render()


def test_figure15(cache):
    result = compute_figure15("cl", CONFIG, cache)
    assert result.targets
    assert "Figure 15" in result.render()


def test_scaled_early_stopping_monotone():
    small = scaled_early_stopping(500)
    large = scaled_early_stopping(50_000)
    assert small["es_window"] < large["es_window"]


def test_report_helpers():
    assert fmt_cell(None) == "    NA"
    assert fmt_cell(math.inf).strip() == "+inf"
    assert fmt_cell(12.345).strip() == "12.3"
    table = render_table("T", ["a"], [("row", [1.0])])
    assert "T" in table and "row" in table
    plot = ascii_curve([0, 1, 2], [0, 1, 4], title="p")
    assert "p" in plot and "*" in plot
    assert "no data" in ascii_curve([], [], title="q")
