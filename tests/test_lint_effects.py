"""Phase-4 substrate tests: per-file effect collection, the lattice
join, the interprocedural fixpoint, worker reachability, and the cache
round-trip of the serialisable facts."""

from __future__ import annotations

import ast
import textwrap

from repro.lint import RuleConfig, build_project, collect_effects
from repro.lint.effects import (IO, MUTATES, PURE, READS, EffectFact,
                                ModuleEffects, join_effects,
                                propagate_effects, summarize_effects)
from repro.lint.symbols import extract_symbols


def effects_of(source: str) -> ModuleEffects:
    return collect_effects(ast.parse(textwrap.dedent(source)))


def fact(effects: ModuleEffects, qualname: str) -> EffectFact:
    return next(f for f in effects.functions if f.qualname == qualname)


# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------


def test_join_is_max_by_rank():
    assert join_effects(PURE, READS) == READS
    assert join_effects(MUTATES, READS) == MUTATES
    assert join_effects(IO, MUTATES) == IO
    assert join_effects(PURE, PURE) == PURE


# ---------------------------------------------------------------------------
# Per-file collection
# ---------------------------------------------------------------------------


def test_pure_function_has_no_sites():
    f = fact(effects_of("""
        def add(a, b):
            return a + b
    """), "add")
    assert f.local_effect == PURE
    assert f.sites == ()


def test_module_state_read_and_mutate_classified():
    effects = effects_of("""
        _CACHE = {}

        def lookup(key):
            return _CACHE.get(key)

        def store(key, value):
            _CACHE[key] = value
    """)
    assert effects.mutables == ("_CACHE",)
    assert fact(effects, "lookup").local_effect == READS
    store = fact(effects, "store")
    assert store.local_effect == MUTATES
    assert [s.kind for s in store.sites] == ["mutate"]


def test_local_shadow_is_not_module_state():
    f = fact(effects_of("""
        _CACHE = {}

        def isolated():
            _CACHE = {}
            _CACHE["k"] = 1
            return _CACHE
    """), "isolated")
    assert f.local_effect == PURE


def test_global_rebind_is_a_mutation():
    f = fact(effects_of("""
        _TOTAL = []

        def bump(n):
            global _TOTAL
            _TOTAL = _TOTAL + [n]
    """), "bump")
    assert f.local_effect == MUTATES
    assert any(s.kind == "global-write" for s in f.sites)


def test_io_sites_cover_clock_fs_and_environ():
    effects = effects_of("""
        import os
        import time

        def stamp():
            return time.time()

        def read_cfg(path):
            return open(path).read()

        def env():
            return os.environ["HOME"]
    """)
    for name in ("stamp", "read_cfg", "env"):
        assert fact(effects, name).local_effect == IO, name


def test_callees_are_call_heads_only():
    f = fact(effects_of("""
        def run(self, item):
            self.prepare(item)
            total = helper(item)
            return total
    """), "run")
    assert f.callees == ("helper", "prepare")


def test_module_rng_streams_recorded():
    effects = effects_of("""
        import random
        from repro.utils.rng import derive_rng

        _SHARED = random.Random(7)
        _DERIVED = derive_rng(7, "campaign")
    """)
    by_name = {s.name: s for s in effects.rng_streams}
    assert not by_name["_SHARED"].via_derive
    assert by_name["_DERIVED"].via_derive


def test_effect_facts_roundtrip_through_json_dict():
    effects = effects_of("""
        import time

        _CACHE = {}

        def store(k, v):
            _CACHE[k] = v

        def stamp():
            return time.time()
    """)
    restored = ModuleEffects.from_dict(effects.to_dict())
    assert restored == effects


# ---------------------------------------------------------------------------
# The project half
# ---------------------------------------------------------------------------


def _model(tmp_path, tree: dict[str, str]):
    symbols = []
    effects = {}
    for rel, content in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        source = textwrap.dedent(content)
        path.write_text(source, encoding="utf-8")
        parsed = ast.parse(source)
        symbols.append(extract_symbols(parsed, str(path)))
        effects[str(path)] = collect_effects(parsed)
    return build_project(symbols, linted_paths=effects.keys(), noqa={},
                         suppressed={}, effects=effects)


def test_effects_propagate_through_the_call_graph(tmp_path):
    model = _model(tmp_path, {
        "src/repro/campaign/engine.py": """
            from repro.analysis.helpers import load_table

            def run_shard(site):
                return load_table(site)
        """,
        "src/repro/analysis/helpers.py": """
            def load_table(site):
                return open(site).read()
        """,
    })
    analysis = propagate_effects(model)
    engine = str(tmp_path / "src/repro/campaign/engine.py")
    helpers = str(tmp_path / "src/repro/analysis/helpers.py")
    # load_table does io itself; run_shard inherits it transitively.
    assert analysis.effect_of(helpers, "load_table") == IO
    assert analysis.effect_of(engine, "run_shard") == IO
    assert analysis.facts[(engine, "run_shard")].local_effect == PURE


def test_worker_reachability_closes_from_entry_packages(tmp_path):
    model = _model(tmp_path, {
        "src/repro/campaign/engine.py": """
            from repro.analysis.helpers import fold

            def run_shard(site):
                return fold(site)
        """,
        "src/repro/analysis/helpers.py": """
            def fold(x):
                return x

            def unrelated(x):
                return x
        """,
    })
    analysis = propagate_effects(model)
    engine = str(tmp_path / "src/repro/campaign/engine.py")
    helpers = str(tmp_path / "src/repro/analysis/helpers.py")
    assert analysis.is_worker_reachable(engine, "run_shard")
    assert analysis.is_worker_reachable(helpers, "fold")
    assert not analysis.is_worker_reachable(helpers, "unrelated")


def test_contested_targets_need_a_function_body_mutation(tmp_path):
    model = _model(tmp_path, {
        "src/repro/analysis/registry.py": """
            FROZEN = {"a": 1}
            HOT = {}

            def register(key, value):
                HOT[key] = value
        """,
    })
    analysis = propagate_effects(model)
    path = str(tmp_path / "src/repro/analysis/registry.py")
    assert (path, "HOT") in analysis.contested
    assert (path, "FROZEN") not in analysis.contested


def test_summarize_effects_histograms_selected_paths(tmp_path):
    model = _model(tmp_path, {
        "src/repro/campaign/engine.py": """
            _STATE = {}

            def pure_fn(x):
                return x

            def writer(k, v):
                _STATE[k] = v
        """,
    })
    analysis = propagate_effects(model)
    path = str(tmp_path / "src/repro/campaign/engine.py")
    counts = summarize_effects(analysis, [path])
    assert counts[PURE] == 1 and counts[MUTATES] == 1


def test_self_tree_effect_analysis_is_green():
    """The repo's own worker surface must stay io-free and
    mutation-free — the property the shard-safety certificate commits
    to."""
    from repro.lint import Linter

    run = Linter(RuleConfig()).run(["src/repro"], project=True)
    analysis = run.effects
    assert analysis is not None
    assert analysis.worker_reachable, "empty worker surface is a bug"
    for key in analysis.worker_reachable:
        assert analysis.effects[key] in (PURE, READS), key
