"""Tests for the campaign-matrix experiment (makespan vs worker count).

Wall-clock cells are machine-dependent by design and are only checked
for presence, never magnitude — the single-core CI/sandbox boxes cannot
show a real speedup, and the experiment's contract is that the report
digests don't care.
"""

from repro.experiments.campaignmatrix import compute_campaign_matrix
from repro.experiments.config import ExperimentConfig

CONFIG = ExperimentConfig(scale=0.05, sb_runs=1, seeds=(1,))
SITES = ("cl", "qa")
CRAWLERS = ("BFS",)
WORKERS = (1, 2)


def _compute():
    return compute_campaign_matrix(
        CONFIG, None, sites=SITES, crawlers=CRAWLERS,
        worker_counts=WORKERS, seed=1, wall_crawler="BFS",
    )


def test_campaign_matrix_shape():
    result = _compute()
    assert set(result.makespan_hours) == set(CRAWLERS)
    for crawler in CRAWLERS:
        assert len(result.makespan_hours[crawler]) == len(WORKERS)
        assert len(result.speedups[crawler]) == len(WORKERS)
        assert len(result.digests[crawler]) == 64


def test_campaign_matrix_more_workers_never_slower():
    result = _compute()
    for crawler in CRAWLERS:
        hours = result.makespan_hours[crawler]
        assert hours == sorted(hours, reverse=True)
        speedups = result.speedups[crawler]
        assert speedups[0] == 1.0
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))


def test_campaign_matrix_virtual_cells_are_deterministic():
    a, b = _compute(), _compute()
    assert a.makespan_hours == b.makespan_hours
    assert a.speedups == b.speedups
    assert a.digests == b.digests


def test_campaign_matrix_render_mentions_wall_clock():
    text = _compute().render()
    assert "Campaign matrix" in text
    assert "W=1" in text and "W=2" in text
    assert "wall-clock" in text
    assert "machine-dependent" in text


def test_campaign_matrix_registered_as_cli_experiment():
    from repro.__main__ import EXPERIMENTS

    assert "campaignmatrix" in EXPERIMENTS
