"""Per-rule unit tests for ``repro.lint``: positive and negative
fixture snippets, ``noqa`` suppression and config-driven disabling."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import Linter, RuleConfig
from repro.lint.engine import LintUsageError

#: A path that places the snippet inside the crawler layer.
CORE = "src/repro/core/example.py"


def lint(source: str, path: str = CORE, config: RuleConfig | None = None):
    return Linter(config or RuleConfig()).check_source(
        textwrap.dedent(source), path=path
    )


def codes(findings) -> list[str]:
    return [finding.rule for finding in findings]


# -- DET001: unseeded / global randomness --------------------------------


def test_det001_unseeded_random_flagged():
    findings = lint("import random\nrng = random.Random()\n")
    assert codes(findings) == ["DET001"]
    assert findings[0].line == 2


def test_det001_seeded_random_ok():
    assert lint("import random\nrng = random.Random(7)\n") == []


def test_det001_global_random_calls_flagged():
    findings = lint(
        """
        import random

        def f():
            return random.random() + random.gauss(0, 1)
        """
    )
    assert codes(findings) == ["DET001", "DET001"]


def test_det001_from_import_flagged():
    assert codes(lint("from random import Random\n")) == ["DET001"]


def test_det001_function_scope_import_flagged():
    findings = lint(
        """
        def f(seed):
            import random

            return random.Random(seed)
        """
    )
    # The returned non-derive_rng stream is also a CONC002 escape.
    assert codes(findings) == ["DET001", "CONC002"]


def test_det001_rng_module_exempt():
    source = "import random\n\nrng = random.Random()\n"
    assert lint(source, path="src/repro/utils/rng.py") == []
    assert codes(lint(source, path=CORE)) == ["DET001"]


# -- DET002: wall clock / OS entropy -------------------------------------


def test_det002_wall_clock_flagged():
    findings = lint(
        """
        import os
        import time
        from datetime import datetime

        def f():
            return time.time(), datetime.now(), os.urandom(8)
        """
    )
    assert codes(findings) == ["DET002", "DET002", "DET002"]


def test_det002_tests_and_benchmarks_exempt():
    source = "import time\nstart = time.time()\n"
    assert lint(source, path="tests/test_example.py") == []
    assert lint(source, path="benchmarks/test_bench_x.py") == []


def test_det002_unrelated_methods_ok():
    assert lint("class C:\n    def go(self):\n        return self.now()\n") == []


# -- DET003: set iteration feeding RNG -----------------------------------


def test_det003_set_iteration_with_rng_flagged():
    findings = lint(
        """
        def f(rng, urls):
            pending = set(urls)
            for url in pending:
                if rng.random() < 0.5:
                    return url
        """
    )
    # Returning the set-ordered loop variable also trips CONC003.
    assert codes(findings) == ["DET003", "CONC003"]


def test_det003_sorted_set_ok():
    assert lint(
        """
        def f(rng, urls):
            for url in sorted(set(urls)):
                if rng.random() < 0.5:
                    return url
        """
    ) == []


def test_det003_no_rng_use_ok():
    assert lint(
        """
        def f(urls):
            total = 0
            for url in set(urls):
                total += len(url)
            return total
        """
    ) == []


# -- COR001: mutable defaults --------------------------------------------


def test_cor001_mutable_defaults_flagged():
    findings = lint(
        """
        def f(a, b=[], *, c={}):
            return a, b, c
        """
    )
    assert codes(findings) == ["COR001", "COR001"]
    assert "'b'" in findings[0].message


def test_cor001_none_default_ok():
    assert lint("def f(a, b=None, c=()):\n    return a, b, c\n") == []


# -- COR002: float equality ----------------------------------------------


def test_cor002_float_literal_equality_flagged():
    assert codes(lint("def f(x):\n    return x == 0.0\n")) == ["COR002"]
    assert codes(lint("def f(x):\n    return 1.0 != x\n")) == ["COR002"]


def test_cor002_int_and_ordering_ok():
    assert lint("def f(x):\n    return x == 0 or x <= 0.0\n") == []


def test_cor002_test_files_exempt():
    source = "def f(x):\n    assert x == 0.5\n"
    assert lint(source, path="tests/test_example.py") == []


# -- COR003: swallowed exceptions ----------------------------------------


def test_cor003_bare_except_flagged():
    findings = lint(
        """
        def f():
            try:
                work()
            except:
                pass
        """
    )
    assert codes(findings) == ["COR003"]


def test_cor003_swallowed_broad_except_flagged():
    findings = lint(
        """
        def f():
            try:
                work()
            except Exception:
                pass
        """
    )
    assert codes(findings) == ["COR003"]


def test_cor003_narrow_or_handled_ok():
    assert lint(
        """
        def f(log):
            try:
                work()
            except ValueError:
                pass
            try:
                work()
            except Exception as exc:
                log.append(exc)
                raise
        """
    ) == []


# -- API001: seed threading in crawler layers ----------------------------


def test_api001_hardwired_rng_flagged():
    findings = lint(
        """
        import random

        def shuffle_frontier(urls):
            rand = random.Random(42)
            rand.shuffle(urls)
            return urls
        """
    )
    # The hard-wired stream now trips two layers: API001 at the def
    # (no seed/rng parameter) and DF001 at the draw (taint analysis).
    assert codes(findings) == ["API001", "DF001"]


def test_api001_seed_parameter_ok():
    assert lint(
        """
        import random

        def shuffle_frontier(urls, seed=0):
            rand = random.Random(seed)
            rand.shuffle(urls)
            return urls
        """
    ) == []


def test_api001_stored_state_ok():
    assert lint(
        """
        import random

        class C:
            def reset(self):
                self._rand = random.Random(self.seed)
        """
    ) == []


def test_api001_private_and_other_layers_exempt():
    # API001 stays quiet for private helpers and non-seeded layers;
    # only the layer-independent DF001 taint finding remains.
    source = (
        "import random\n\n\ndef _helper(urls):\n"
        "    return random.Random(42).choice(urls)\n"
    )
    assert codes(lint(source)) == ["DF001"]
    assert codes(lint(source.replace("_helper", "helper"),
                      path="src/repro/analysis/example.py")) == ["DF001"]


# -- API002: layering ----------------------------------------------------


def test_api002_upward_import_flagged():
    findings = lint("from repro.experiments.config import ExperimentConfig\n")
    assert codes(findings) == ["API002"]
    assert "repro.core" in findings[0].message


def test_api002_downward_and_sibling_imports_ok():
    assert lint("from repro.http.client import HttpClient\n") == []
    assert lint("from repro.webgraph.model import WebsiteGraph\n",
                path="src/repro/html/example.py") == []


def test_api002_root_modules_exempt():
    assert lint("from repro.experiments import runner\n",
                path="src/repro/__main__.py") == []


def test_api002_layer_override_via_config():
    config = RuleConfig(layers={"experiments": 0})
    assert lint("import repro.experiments\n", config=config) == []


# -- suppression & configuration -----------------------------------------


def test_noqa_single_code_suppresses_only_that_rule():
    source = "def f(x):\n    return x == 0.0  # repro: noqa[COR002]\n"
    assert lint(source) == []
    # The marker names a different rule: the finding survives.
    other = "def f(x):\n    return x == 0.0  # repro: noqa[DET001]\n"
    assert codes(lint(other)) == ["COR002"]


def test_noqa_bare_suppresses_everything():
    source = "rng = __import__('random').Random()  # repro: noqa\n"
    assert lint("import random\nrng = random.Random()  # repro: noqa\n") == []
    assert lint(source) == []


def test_noqa_multiple_codes():
    source = (
        "import random\n"
        "x = random.random() == 0.0  # repro: noqa[DET001, COR002]\n"
    )
    assert lint(source) == []


def test_noqa_inside_string_literal_does_not_suppress():
    """Only real COMMENT tokens carry the marker: a string that happens
    to contain it (fixtures, docs, templates) must not suppress the
    finding on its line."""
    source = (
        "def f(x):\n"
        '    marker = "see  # repro: noqa[COR002] in docs"\n'
        "    return (x == 0.5, marker)\n"
    )
    findings = lint(source)
    assert codes(findings) == ["COR002"]

    multiline = (
        "DOC = '''\n"
        "x == 0.0  # repro: noqa[COR002] example from the docs\n"
        "'''\n"
        "def f(x):\n"
        "    return x == 0.5\n"
    )
    assert codes(lint(multiline)) == ["COR002"]


def test_noqa_string_and_comment_on_same_line():
    """A real comment after a marker-bearing string still suppresses."""
    source = (
        "def f(x):\n"
        '    s = "# repro: noqa[DET001]"\n'
        "    return (s, x == 0.5)  # repro: noqa[COR002] sentinel\n"
    )
    assert lint(source) == []


@pytest.mark.parametrize("marker", [
    "# repro: noqa[ COR002 ]",
    "# repro: noqa[COR002,]",
    "# repro: noqa[ COR002 , DET001 ]",
    "#repro:noqa[COR002]",
    "#  repro:  noqa[cor002] lowercase codes normalise",
    "# repro: noqa[COR002] trailing justification prose, with commas",
])
def test_noqa_code_list_whitespace_variants(marker):
    source = f"def f(x):\n    return x == 0.0  {marker}\n"
    assert lint(source) == []


@pytest.mark.parametrize("marker", [
    "# repro: noqa[DET001]",          # names a different rule
    "# repro: noqa[NOPE99]",          # unknown code suppresses nothing
    "# repro: noqa[]",                # empty list suppresses nothing
])
def test_noqa_non_matching_code_lists_do_not_suppress(marker):
    source = f"def f(x):\n    return x == 0.0  {marker}\n"
    assert codes(lint(source)) == ["COR002"]


def test_scan_noqa_maps_lines_and_codes():
    from repro.lint import scan_noqa

    markers = scan_noqa(
        "a = 1  # repro: noqa\n"
        "b = 2\n"
        "c = 3  # repro: noqa[DET001 , cor002]\n"
    )
    assert markers == {1: None, 3: frozenset({"DET001", "COR002"})}


def test_check_paths_deduplicates_overlapping_inputs(tmp_path):
    """Overlapping paths (``pkg pkg/mod.py``) lint each file once."""
    package = tmp_path / "pkg"
    package.mkdir()
    bad = package / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    single = Linter(RuleConfig()).check_paths([package])
    doubled = Linter(RuleConfig()).check_paths([package, bad, package])
    assert len(single) == len(doubled) == 1


def test_config_disable_turns_rule_off():
    config = RuleConfig(disable=frozenset({"COR002"}))
    assert lint("def f(x):\n    return x == 0.0\n", config=config) == []


def test_config_unknown_disable_code_rejected():
    with pytest.raises(LintUsageError):
        Linter(RuleConfig(disable=frozenset({"NOPE99"})))


def test_syntax_error_reported_as_finding():
    findings = lint("def f(:\n")
    assert codes(findings) == ["E999"]
    assert findings[0].line == 1


def test_pyproject_loading(tmp_path):
    from repro.lint import load_pyproject_config

    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        """
        [tool.repro-lint]
        disable = ["cor002"]
        exclude = ["*/generated/*"]

        [tool.repro-lint.layers]
        plugins = 45
        """
    )
    config = load_pyproject_config(pyproject)
    assert config.disable == frozenset({"COR002"})
    assert config.is_excluded("src/repro/generated/stub.py")
    assert config.layer_rank("plugins") == 45
    assert config.layer_rank("core") == 30  # defaults still present
    assert lint("def f(x):\n    return x == 0.0\n", config=config) == []


def test_pyproject_unknown_key_rejected(tmp_path):
    from repro.lint import load_pyproject_config

    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.repro-lint]\ntypo-key = 1\n")
    with pytest.raises(ValueError):
        load_pyproject_config(pyproject)


def test_pyproject_missing_file_yields_defaults(tmp_path):
    from repro.lint import load_pyproject_config

    config = load_pyproject_config(tmp_path / "absent.toml")
    assert config.disable == frozenset()
