"""The sharded campaign execution engine, end to end.

Covers the three contracts of docs/campaign.md: per-domain sharding
(every site in exactly one shard, LPT-balanced, permutation-invariant),
graceful shutdown (interrupt → partial report, no orphaned processes),
and the determinism guarantee — the serial and multiprocessing backends
produce byte-identical campaign reports, checked both on a fixed config
and on a seeded sweep of random (sites, workers, politeness) configs.
"""

import json
import multiprocessing
import pickle

import pytest

from repro.campaign import (
    CampaignSpec,
    MultiprocessingBackend,
    Partition,
    SerialBackend,
    ShardTask,
    assign_virtual_times,
    partition_sites,
    run_campaign,
    run_shard,
    site_seed,
)
from repro.obs import MemorySink
from repro.utils.rng import derive_rng, derive_seed

#: Small paper sites — every engine test stays sub-second per crawl.
SMALL_SITES = ("be", "cl", "cn", "qa")
TINY = dict(crawler="BFS", seed=3, scale=0.05)


# -- partitions ------------------------------------------------------------


def test_partition_covers_each_site_exactly_once():
    partitions = partition_sites(list(SMALL_SITES), 3)
    assigned = [s for p in partitions for s in p.sites]
    assert sorted(assigned) == sorted(SMALL_SITES)
    assert [p.shard_id for p in partitions] == list(range(len(partitions)))


def test_partition_is_permutation_invariant():
    weights = {"a": 5.0, "b": 3.0, "c": 2.0, "d": 2.0, "e": 1.0}
    sites = list(weights)
    baseline = partition_sites(sites, 2, weights=weights)
    rng = derive_rng(99, "test", "partition-permutation")
    for _ in range(5):
        shuffled = list(sites)
        rng.shuffle(shuffled)
        assert partition_sites(shuffled, 2, weights=weights) == baseline


def test_partition_lpt_balances_weighted_load():
    weights = {"big": 10.0, "m1": 4.0, "m2": 3.0, "s1": 2.0, "s2": 1.0}
    partitions = partition_sites(list(weights), 2, weights=weights)
    loads = sorted(
        sum(weights[s] for s in p.sites) for p in partitions
    )
    # LPT puts the 10-weight site alone: 10 vs 4+3+2+1.
    assert loads == [10.0, 10.0]


def test_partition_drops_empty_shards_and_renumbers():
    partitions = partition_sites(["x", "y"], 5)
    assert len(partitions) == 2
    assert [p.shard_id for p in partitions] == [0, 1]
    assert all(p.n_sites == 1 for p in partitions)


def test_partition_rejects_bad_input():
    with pytest.raises(ValueError):
        partition_sites([], 2)
    with pytest.raises(ValueError):
        partition_sites(["a", "a"], 2)
    with pytest.raises(ValueError):
        partition_sites(["a"], 0)
    with pytest.raises(ValueError):
        partition_sites(["a"], 1, weights={"a": -1.0})


# -- virtual clock ---------------------------------------------------------


def test_virtual_times_pack_onto_slots():
    times = assign_virtual_times([0, 1, 2], {0: 10.0, 1: 20.0, 2: 5.0}, 2)
    # Two slots: shard 0 and 1 start at 0; shard 2 follows shard 0.
    assert times[0] == (0.0, 10.0)
    assert times[1] == (0.0, 20.0)
    assert times[2] == (10.0, 15.0)


def test_virtual_times_depend_on_dispatch_order_only():
    durations = {0: 3.0, 1: 7.0, 2: 2.0}
    a = assign_virtual_times([2, 0, 1], durations, 2)
    b = assign_virtual_times([2, 0, 1], dict(durations), 2)
    assert a == b
    assert a != assign_virtual_times([0, 1, 2], durations, 2)
    with pytest.raises(ValueError):
        assign_virtual_times([0], {0: 1.0}, 0)


# -- spec / tasks ----------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(sites=())
    with pytest.raises(ValueError):
        CampaignSpec(sites=("be",), n_workers=0)
    with pytest.raises(ValueError):
        CampaignSpec(sites=("be",), politeness_delay=-1.0)


def test_shard_task_pickles():
    task = ShardTask(shard_id=1, sites=("be", "cl"), **TINY)
    assert pickle.loads(pickle.dumps(task)) == task


def test_site_seed_ignores_shard_assignment():
    # The per-site seed is a function of (campaign seed, site) only, so
    # re-sharding can never perturb a crawl.
    assert site_seed(3, "be") == derive_seed(3, "campaign", "be")
    assert site_seed(3, "be") != site_seed(3, "cl")


# -- serial engine ---------------------------------------------------------


@pytest.fixture(scope="module")
def serial_report():
    spec = CampaignSpec(sites=SMALL_SITES, n_shards=3, n_workers=2, **TINY)
    sink = MemorySink()
    report = run_campaign(spec, observer=sink)
    return spec, report, sink


def test_report_rows_are_canonical(serial_report):
    _, report, _ = serial_report
    sites = [row["site"] for row in report.site_rows]
    assert sites == sorted(SMALL_SITES)
    shard_ids = [row["shard_id"] for row in report.shard_rows]
    assert shard_ids == sorted(shard_ids)
    assert report.n_requests == sum(r["n_requests"] for r in report.site_rows)
    assert report.n_targets == sum(r["n_targets"] for r in report.site_rows)
    assert report.makespan_seconds > 0
    assert not report.partial


def test_report_payload_has_no_backend_identity(serial_report):
    _, report, _ = serial_report
    payload = report.to_json()
    assert "serial" not in payload
    assert "multiprocessing" not in payload
    parsed = json.loads(payload)
    assert parsed["schema_version"] == 1
    assert parsed["config"]["n_workers"] == 2


def test_rerun_is_byte_identical(serial_report):
    spec, report, _ = serial_report
    again = run_campaign(spec)
    assert again.to_json() == report.to_json()
    assert again.digest == report.digest


def test_campaign_event_stream(serial_report):
    _, report, sink = serial_report
    kinds = [e.kind for e in sink.events]
    n = report.n_shards
    assert kinds.count("shard_started") == n
    assert kinds.count("shard_finished") == n
    assert kinds[-1] == "campaign_merged"
    merged = sink.events[-1]
    assert merged.digest == report.digest
    assert merged.n_requests == report.n_requests
    # Events replay in dispatch order — the seeded interleaving.
    started_ids = [e.shard_id for e in sink.events
                   if e.kind == "shard_started"]
    assert started_ids == report.dispatch_order


def test_render_is_deterministic(serial_report):
    _, report, _ = serial_report
    text = report.render()
    assert "campaign:" in text and "digest" in text
    assert report.render() == text


# -- backend equivalence ---------------------------------------------------


def _no_orphans():
    return multiprocessing.active_children() == []


def test_multiprocessing_matches_serial_byte_for_byte(serial_report):
    spec, report, _ = serial_report
    sink = MemorySink()
    parallel = run_campaign(
        spec, backend=MultiprocessingBackend(n_workers=2), observer=sink
    )
    assert parallel.to_json() == report.to_json()
    assert parallel.digest == report.digest
    # Even the campaign event stream is byte-identical.
    assert [e.to_dict() for e in sink.events] == [
        e.to_dict() for e in run_and_collect_events(spec)
    ]
    assert _no_orphans()


def run_and_collect_events(spec):
    sink = MemorySink()
    run_campaign(spec, observer=sink)
    return sink.events


def test_backend_equivalence_random_config_sweep():
    """Seeded sweep over (sites, workers, politeness) configs: every
    one must satisfy serial digest == multiprocessing digest."""
    rng = derive_rng(2024, "test", "campaign-sweep")
    for round_index in range(3):
        n_sites = rng.randrange(2, len(SMALL_SITES) + 1)
        sites = tuple(sorted(rng.sample(SMALL_SITES, n_sites)))
        spec = CampaignSpec(
            sites=sites,
            crawler="BFS",
            seed=rng.randrange(1, 100),
            scale=0.05,
            n_shards=rng.randrange(1, 5),
            n_workers=rng.randrange(1, 4),
            politeness_delay=rng.choice((0.5, 1.0, 2.0)),
        )
        serial = run_campaign(spec)
        parallel = run_campaign(
            spec, backend=MultiprocessingBackend(n_workers=spec.n_workers)
        )
        assert serial.to_json() == parallel.to_json(), (
            f"config {round_index}: backend divergence for {spec}"
        )
    assert _no_orphans()


# -- graceful shutdown -----------------------------------------------------


def test_serial_interrupt_yields_partial_report(monkeypatch):
    import repro.campaign.workers as workers

    spec = CampaignSpec(sites=SMALL_SITES, n_shards=4, n_workers=2, **TINY)
    real = workers.run_shard
    calls = []

    def explode_after_one(task):
        if calls:
            raise KeyboardInterrupt
        calls.append(task.shard_id)
        return real(task)

    monkeypatch.setattr(workers, "run_shard", explode_after_one)
    report = run_campaign(spec)
    assert report.partial
    statuses = [row["status"] for row in report.shard_rows]
    assert statuses.count("completed") == 1
    assert statuses.count("interrupted") == len(statuses) - 1
    assert "[PARTIAL]" in report.render()


def test_multiprocessing_interrupt_shuts_down_gracefully():
    """A Ctrl-C mid-collection terminates the pool, keeps the collected
    shards, reports the rest as interrupted, and leaves no orphans."""
    spec = CampaignSpec(sites=SMALL_SITES, n_shards=4, n_workers=2, **TINY)

    def interrupt_after_first(outcome):
        raise KeyboardInterrupt

    sink = MemorySink()
    report = run_campaign(
        spec,
        backend=MultiprocessingBackend(
            n_workers=2, _collect_hook=interrupt_after_first
        ),
        observer=sink,
    )
    assert report.partial
    statuses = [row["status"] for row in report.shard_rows]
    assert statuses.count("completed") == 1
    assert statuses.count("interrupted") == len(statuses) - 1
    # Interrupted shards still appear in the event stream, marked.
    finished = {e.shard_id: e.status for e in sink.events
                if e.kind == "shard_finished"}
    assert sorted(finished) == [p.shard_id for p in report.partitions]
    assert sorted(finished.values()).count("interrupted") == len(statuses) - 1
    assert _no_orphans()


# -- run_shard --------------------------------------------------------------


def test_run_shard_traces_and_ledger(tmp_path):
    task = ShardTask(shard_id=0, sites=("qa",), trace_dir=str(tmp_path),
                     **TINY)
    outcome = run_shard(task)
    assert outcome.status == "completed"
    [site] = outcome.sites
    assert site.site == "qa"
    assert site.n_requests > 0
    assert site.ledger.n_requests == site.n_requests
    assert len(site.trace_digest) == 64
    trace_file = tmp_path / f"qa-BFS-s{TINY['seed']}.jsonl"
    assert trace_file.exists()
    # The shard's metrics registry folded the fetch stream.
    assert outcome.metrics.get("requests_total").value == site.n_requests


def test_partition_dataclass_shape():
    p = Partition(shard_id=0, sites=("a", "b"))
    assert p.n_sites == 2
