"""Tests for tag-path templates."""

import random

from repro.html.dom import parse_segment
from repro.webgraph.templates import SlotKind, TagPathBuilder


def test_paths_start_at_html():
    builder = TagPathBuilder(palette_index=0)
    for kind in SlotKind:
        path = builder.path(kind, "data", 1)
        assert path.startswith("html "), path
        assert path.split(" ")[-1].split(".")[0].split("#")[0] in ("a",)


def test_all_segments_parse():
    for palette in range(4):
        builder = TagPathBuilder(palette_index=palette)
        for kind in SlotKind:
            path = builder.path(kind, "stats", 3)
            for segment in path.split(" "):
                tag, _, _ = parse_segment(segment)
                assert tag


def test_section_decoration_present():
    builder = TagPathBuilder(palette_index=0, section_in_path=True)
    path = builder.path(SlotKind.CONTENT_LIST, "statistics", 1)
    assert "sec-statistics" in path


def test_section_decoration_disabled():
    builder = TagPathBuilder(palette_index=0, section_in_path=False)
    path = builder.path(SlotKind.CONTENT_LIST, "statistics", 1)
    assert "sec-statistics" not in path


def test_dataset_list_differs_from_content_list():
    builder = TagPathBuilder(palette_index=0)
    a = builder.path(SlotKind.DATASET_LIST, "data", 1)
    b = builder.path(SlotKind.CONTENT_LIST, "data", 1)
    assert a != b


def test_unique_id_noise_changes_paths_per_page():
    builder = TagPathBuilder(palette_index=0, unique_id_noise=1.0)
    rng = random.Random(0)
    assert builder.page_is_noisy(rng)
    p1 = builder.path(SlotKind.CONTENT_LIST, "data", 1, noisy=True)
    p2 = builder.path(SlotKind.CONTENT_LIST, "data", 2, noisy=True)
    assert p1 != p2
    assert "#p1" in p1 and "#p2" in p2


def test_noise_zero_never_noisy():
    builder = TagPathBuilder(palette_index=0, unique_id_noise=0.0)
    rng = random.Random(0)
    assert not any(builder.page_is_noisy(rng) for _ in range(100))


def test_nav_outside_wrapper():
    builder = TagPathBuilder(palette_index=0, unique_id_noise=1.0)
    # NAV paths must not carry the page-unique wrapper id.
    path = builder.path(SlotKind.NAV, "data", 9, noisy=True)
    assert "#p9" not in path


def test_palettes_differ():
    paths = {
        TagPathBuilder(palette_index=i).path(SlotKind.DOWNLOAD, "d", 1)
        for i in range(4)
    }
    assert len(paths) == 4
