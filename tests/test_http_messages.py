"""Tests for HTTP message helpers."""

from repro.http.messages import (
    HEAD_RESPONSE_SIZE,
    INTERRUPTED_RESPONSE_SIZE,
    Response,
)


def test_status_categories():
    assert Response(url="u", method="GET", status=200).ok
    assert Response(url="u", method="GET", status=204).ok
    assert Response(url="u", method="GET", status=301).is_redirect
    assert Response(url="u", method="GET", status=307).is_redirect
    assert Response(url="u", method="GET", status=404).is_error
    assert Response(url="u", method="GET", status=503).is_error
    assert not Response(url="u", method="GET", status=301).ok


def test_mime_root_strips_parameters():
    response = Response(
        url="u", method="GET", status=200,
        mime_type="Text/HTML; charset=UTF-8",
    )
    assert response.mime_root() == "text/html"
    assert Response(url="u", method="GET", status=200).mime_root() is None


def test_size_constants_are_small():
    assert HEAD_RESPONSE_SIZE < 1000
    assert INTERRUPTED_RESPONSE_SIZE < 5000


def test_default_fields():
    response = Response(url="u", method="HEAD", status=200)
    assert response.body == ""
    assert response.headers == {}
    assert response.redirect_to is None
    assert not response.interrupted
