"""Tests for the HNSW index: recall against brute force, updates."""

import numpy as np
import pytest

from repro.core.hnsw import HnswIndex


def _random_vectors(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


def _brute_force_nearest(vectors, query):
    sims = vectors @ query / (
        np.linalg.norm(vectors, axis=1) * np.linalg.norm(query) + 1e-12
    )
    return int(np.argmax(sims)), float(np.max(sims))


def test_insert_and_exact_lookup():
    index = HnswIndex(dim=8, seed=0)
    vectors = _random_vectors(50, 8)
    for i, v in enumerate(vectors):
        index.insert(i, v)
    assert len(index) == 50
    # Querying with a stored vector returns that vector with sim ~1.
    for i in (0, 17, 49):
        key, sim = index.search(vectors[i], k=1)[0]
        assert key == i
        assert sim > 0.999


def test_recall_against_brute_force():
    dim = 16
    vectors = _random_vectors(300, dim, seed=1)
    index = HnswIndex(dim=dim, M=8, ef_construction=48, ef_search=48, seed=1)
    for i, v in enumerate(vectors):
        index.insert(i, v)
    queries = _random_vectors(60, dim, seed=2)
    hits = 0
    for q in queries:
        expected, _ = _brute_force_nearest(vectors, q)
        got = [key for key, _ in index.search(q, k=5)]
        if expected in got:
            hits += 1
    assert hits / len(queries) > 0.9


def test_search_empty_index():
    index = HnswIndex(dim=4)
    assert index.search(np.ones(4), k=1) == []


def test_duplicate_key_rejected():
    index = HnswIndex(dim=4)
    index.insert(1, np.ones(4))
    with pytest.raises(KeyError):
        index.insert(1, np.ones(4))


def test_update_moves_point():
    index = HnswIndex(dim=4, seed=0)
    index.insert(0, np.array([1.0, 0.0, 0.0, 0.0]))
    index.insert(1, np.array([0.0, 1.0, 0.0, 0.0]))
    query = np.array([0.0, 0.0, 1.0, 0.0])
    index.update(0, np.array([0.0, 0.1, 1.0, 0.0]))
    key, sim = index.search(query, k=1)[0]
    assert key == 0
    assert sim > 0.9


def test_update_unknown_key_rejected():
    index = HnswIndex(dim=4)
    with pytest.raises(KeyError):
        index.update(9, np.ones(4))


def test_cosine_similarity_accessor():
    index = HnswIndex(dim=3)
    index.insert(0, np.array([1.0, 0.0, 0.0]))
    assert index.cosine_similarity(np.array([1.0, 0.0, 0.0]), 0) > 0.999
    assert abs(index.cosine_similarity(np.array([0.0, 1.0, 0.0]), 0)) < 1e-9


def test_zero_vector_handled():
    index = HnswIndex(dim=3)
    index.insert(0, np.zeros(3))
    key, sim = index.search(np.ones(3), k=1)[0]
    assert key == 0
    assert sim == 0.0


def test_k_larger_than_index():
    index = HnswIndex(dim=3)
    index.insert(0, np.ones(3))
    results = index.search(np.ones(3), k=10)
    assert len(results) == 1
