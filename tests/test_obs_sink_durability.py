"""JsonlSink durability: traces survive crawler crashes intact."""

import json

import pytest

from repro.obs.events import FetchEvent
from repro.obs.sinks import JsonlSink, read_events


def _event(ordinal: int) -> FetchEvent:
    return FetchEvent(ordinal=ordinal, method="GET",
                      url=f"https://s.example/p{ordinal}", status=200,
                      size=100, is_target=False)


def test_events_written_before_a_crash_are_readable(tmp_path):
    path = tmp_path / "trace.jsonl"
    with pytest.raises(RuntimeError):
        with JsonlSink(path) as sink:
            for i in range(1, 4):
                sink.on_event(_event(i))
            raise RuntimeError("crawler died mid-run")
    # the context manager closed the file despite the exception
    assert sink.closed
    _, events = read_events(path)
    assert [e.ordinal for e in events] == [1, 2, 3]


def test_lines_are_flushed_as_written_without_close(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    sink.on_event(_event(1))
    # line buffering: the event is on disk while the sink is still open
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2  # header + event
    assert json.loads(lines[1])["e"] == "fetch"
    sink.close()


def test_close_is_idempotent(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl")
    sink.close()
    sink.close()
    assert sink.closed


def test_events_after_close_fail_loudly(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl")
    sink.close()
    with pytest.raises(ValueError):
        sink.on_event(_event(1))


def test_flush_is_safe_before_and_after_close(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl")
    sink.on_event(_event(1))
    sink.flush()
    sink.close()
    sink.flush()  # no-op, must not raise
