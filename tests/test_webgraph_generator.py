"""Tests for the synthetic-website generator."""

import pytest

from repro.webgraph.generator import generate_site
from repro.webgraph.model import PageKind
from tests.conftest import make_profile


def test_generation_is_deterministic():
    g1 = generate_site(make_profile())
    g2 = generate_site(make_profile())
    assert sorted(g1.urls()) == sorted(g2.urls())
    for url in g1.urls():
        p1, p2 = g1.page(url), g2.page(url)
        assert p1.kind == p2.kind
        assert p1.size == p2.size
        assert [(l.url, l.tag_path) for l in p1.links] == [
            (l.url, l.tag_path) for l in p2.links
        ]


def test_generated_graph_is_valid(small_site):
    assert small_site.validate() == []


def test_counts_close_to_profile(small_site):
    stats = small_site.statistics()
    assert abs(stats.n_available - 220) / 220 < 0.15
    assert abs(100 * stats.target_density - 30.0) < 6.0
    assert abs(stats.html_to_target_pct - 8.0) < 5.0


def test_depths_match_profile(deep_site):
    stats = deep_site.statistics()
    assert 8.0 < stats.target_depth_mean < 17.0


def test_all_targets_reachable(small_site):
    depths = small_site.depths()
    for target in small_site.target_pages():
        assert target.url in depths


def test_error_pages_have_error_statuses(small_site):
    errors = [p for p in small_site.pages() if p.kind is PageKind.ERROR]
    assert errors
    assert all(p.status >= 400 for p in errors)


def test_redirects_point_to_existing_pages(small_site):
    redirects = [p for p in small_site.pages() if p.kind is PageKind.REDIRECT]
    assert redirects
    for r in redirects:
        assert r.redirect_to in small_site


def test_targets_have_no_outlinks(small_site):
    for target in small_site.target_pages():
        assert target.links == []


def test_some_offsite_links_exist(small_site):
    from repro.webgraph.model import same_site

    offsite = [
        link.url
        for page in small_site.html_pages()
        for link in page.links
        if not same_site(small_site.root_url, link.url)
    ]
    assert offsite


def test_media_pages_exist_with_blocked_mime(small_site):
    media = [p for p in small_site.pages() if p.kind is PageKind.OTHER]
    assert media
    assert all(
        (p.mime_type or "").startswith(("image/", "video/", "audio/"))
        for p in media
    )


def test_catalog_inbound_paths_are_distinctive(small_site):
    """Links into target-linking pages mostly use the dataset-list slot."""
    target_urls = small_site.target_urls()
    catalogs = {
        p.url
        for p in small_site.html_pages()
        if any(l.url in target_urls for l in p.links)
    }
    def is_distinctive(path: str) -> bool:
        return any(
            marker in path
            for marker in (
                "datasets", "view-datasets", "resource-list", "download-group",
                "pagination", "pager", "page-numbers", "nav-links",
            )
        )

    inbound: dict[str, list[str]] = {url: [] for url in catalogs}
    for page in small_site.html_pages():
        for link in page.links:
            if link.url in catalogs:
                inbound[link.url].append(link.tag_path)
    assert all(inbound.values())
    # Most catalogs are reachable through a dataset-list/pagination slot —
    # the structure-to-content signal the SB agent learns (Sec. 3.2).
    with_signal = sum(
        1 for paths in inbound.values() if any(is_distinctive(p) for p in paths)
    )
    assert with_signal / len(inbound) > 0.7


def test_scaled_profile_shrinks():
    profile = make_profile()
    scaled = profile.scaled(0.25)
    assert scaled.n_pages < profile.n_pages
    assert scaled.target_fraction == profile.target_fraction
    assert scaled.catalog_link_distinctiveness == profile.catalog_link_distinctiveness


def test_unique_id_noise_profile():
    g = generate_site(make_profile(name="noisy", unique_id_noise=1.0, n_pages=120))
    paths = [
        l.tag_path
        for p in g.html_pages()
        for l in p.links
        if "sec-" in l.tag_path
    ]
    assert any("#p" in p for p in paths)
