"""Exit-code and output-format tests for ``python -m repro.lint``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.__main__ import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _isolate_default_cache(tmp_path, monkeypatch):
    """Run every CLI test from a scratch directory so invocations that
    rely on the default cache path drop ``.repro-lint-cache.json``
    there, not into the developer's checkout."""
    monkeypatch.chdir(tmp_path)


CLEAN_SNIPPET = "from repro.utils.rng import derive_rng\n"
DIRTY_SNIPPET = (
    "import random\n"
    "\n"
    "\n"
    "def f(x, acc=[]):\n"
    "    acc.append(random.random())\n"
    "    return x == 0.5\n"
)


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_SNIPPET)
    return path


def test_exit_zero_on_clean_file(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SNIPPET)
    assert main(["--no-config", str(path)]) == EXIT_CLEAN
    assert "clean (0 findings)" in capsys.readouterr().out


def test_exit_one_with_findings_and_locations(dirty_file, capsys):
    assert main(["--no-config", str(dirty_file)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert f"{dirty_file}:5" in out  # random.random() line
    assert "DET001" in out and "COR001" in out and "COR002" in out


def test_exit_two_on_unknown_path(tmp_path, capsys):
    assert main(["--no-config", str(tmp_path / "missing.py")]) == EXIT_USAGE
    assert "no such file" in capsys.readouterr().err


def test_exit_two_on_unknown_rule_code(dirty_file, capsys):
    assert main(["--disable", "NOPE99", str(dirty_file)]) == EXIT_USAGE
    assert "unknown rule code" in capsys.readouterr().err


def test_exit_two_on_bad_flag(dirty_file):
    with pytest.raises(SystemExit) as excinfo:
        main(["--format", "xml", str(dirty_file)])
    assert excinfo.value.code == EXIT_USAGE


def test_json_format_is_machine_readable(dirty_file, capsys):
    assert main(["--no-config", "--format", "json", str(dirty_file)]) == \
        EXIT_FINDINGS
    document = json.loads(capsys.readouterr().out)
    assert document["tool"] == "repro.lint"
    assert document["count"] == len(document["findings"]) >= 3
    first = document["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "message",
                          "category"}
    assert first["category"] == first["rule"].rstrip("0123456789")


def test_select_runs_only_chosen_rules(dirty_file, capsys):
    assert main(["--no-config", "--select", "COR001", str(dirty_file)]) == \
        EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "COR001" in out and "DET001" not in out


def test_disable_flag_turns_rule_off(dirty_file, capsys):
    code = main([
        "--no-config", "--disable", "DET001,COR001,COR002", str(dirty_file)
    ])
    assert code == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "COR001", "COR002",
                 "COR003", "API001", "API002", "FLOW001", "FLOW002",
                 "FLOW003", "FLOW004", "FLOW005", "DF001", "DF002",
                 "DF003", "DF004", "DF005"):
        assert code in out


def test_select_overrides_pyproject_disable(tmp_path, capsys):
    """ruff semantics: an explicit --select wins over the pyproject
    disable list instead of silently running zero rules."""
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text('[tool.repro-lint]\ndisable = ["DET001"]\n')
    code = main(["--config", str(pyproject), "--select", "DET001",
                 "--no-cache", str(bad)])
    assert code == EXIT_FINDINGS
    assert "DET001" in capsys.readouterr().out
    # Without --select the disable list still applies.
    assert main(["--config", str(pyproject), "--no-cache", str(bad)]) == \
        EXIT_CLEAN


def test_project_flag_runs_flow_rules(tmp_path, capsys):
    source = tmp_path / "src" / "repro" / "core"
    source.mkdir(parents=True)
    (source / "drop.py").write_text("def make(seed):\n    return 1\n")
    (tmp_path / "pyproject.toml").write_text("")
    code = main(["--no-config", "--no-cache", "--project",
                 str(tmp_path / "src")])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "FLOW001" in out and "drop.py" in out
    # Without --project the per-file pass alone reports nothing.
    assert main(["--no-config", "--no-cache", str(tmp_path / "src")]) == \
        EXIT_CLEAN


def test_selecting_flow_rule_implies_project_pass(tmp_path, capsys):
    source = tmp_path / "src" / "repro" / "core"
    source.mkdir(parents=True)
    (source / "drop.py").write_text("def make(seed):\n    return 1\n")
    (tmp_path / "pyproject.toml").write_text("")
    code = main(["--no-config", "--no-cache", "--select", "FLOW001",
                 str(tmp_path / "src")])
    assert code == EXIT_FINDINGS
    assert "FLOW001" in capsys.readouterr().out


def test_json_cache_stats_line_reports_warm_rerun(tmp_path, capsys):
    """Acceptance: a cached re-run hits for every unchanged file, and
    the ``--format json`` cache-stats line proves it."""
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "a.py").write_text("A = 1\n")
    (package / "b.py").write_text("B = 2\n")
    cache = tmp_path / "cache.json"
    argv = ["--no-config", "--format", "json", "--cache", str(cache),
            str(package)]
    assert main(argv) == EXIT_CLEAN
    cold = json.loads(capsys.readouterr().out)["cache"]
    assert cold == {"enabled": True, "files": 2, "hits": 0, "misses": 2}
    assert main(argv) == EXIT_CLEAN
    warm = json.loads(capsys.readouterr().out)["cache"]
    assert warm == {"enabled": True, "files": 2, "hits": 2, "misses": 0}


def test_no_cache_flag_reports_disabled_cache(tmp_path, capsys):
    (tmp_path / "a.py").write_text("A = 1\n")
    assert main(["--no-config", "--format", "json", "--no-cache",
                 str(tmp_path / "a.py")]) == EXIT_CLEAN
    document = json.loads(capsys.readouterr().out)
    assert document["cache"]["enabled"] is False


DF_DIRTY_SNIPPET = (
    "import random\n"
    "\n"
    "\n"
    "def f():\n"
    "    x = random.random()\n"
    "    x = 2\n"
    "    return x\n"
)


def test_dataflow_rules_run_by_default(tmp_path, capsys):
    path = tmp_path / "df.py"
    path.write_text(DF_DIRTY_SNIPPET)
    assert main(["--no-config", str(path)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "DF004" in out and "DET001" in out


def test_no_dataflow_flag_skips_df_rules(tmp_path, capsys):
    path = tmp_path / "df.py"
    path.write_text(DF_DIRTY_SNIPPET)
    assert main(["--no-config", "--no-dataflow", str(path)]) == \
        EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "DF004" not in out and "DET001" in out


def test_select_df_family_prefix_expands(tmp_path, capsys):
    path = tmp_path / "df.py"
    path.write_text(DF_DIRTY_SNIPPET)
    assert main(["--no-config", "--select", "DF", str(path)]) == \
        EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "DF004" in out and "DET001" not in out


def test_no_dataflow_wins_over_df_select(tmp_path, capsys):
    path = tmp_path / "df.py"
    path.write_text(DF_DIRTY_SNIPPET)
    assert main(["--no-config", "--no-dataflow", "--select", "DF",
                 str(path)]) == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out


def test_stats_flag_prints_phase_timings(dirty_file, capsys):
    assert main(["--no-config", "--stats", str(dirty_file)]) == \
        EXIT_FINDINGS
    err = capsys.readouterr().err
    assert "phase per-file" in err
    assert "dataflow" in err
    assert "cache:" in err


def test_stats_reports_cache_hits_on_warm_rerun(tmp_path, capsys):
    path = tmp_path / "a.py"
    path.write_text("A = 1\n")
    cache = tmp_path / "cache.json"
    argv = ["--no-config", "--stats", "--cache", str(cache), str(path)]
    assert main(argv) == EXIT_CLEAN
    assert "1 misses" in capsys.readouterr().err
    assert main(argv) == EXIT_CLEAN
    assert "1 hits" in capsys.readouterr().err


def test_json_findings_are_sorted_and_round_trip(tmp_path, capsys):
    from repro.lint import Finding

    path = tmp_path / "multi.py"
    path.write_text(DIRTY_SNIPPET + "\n\n" + DF_DIRTY_SNIPPET.replace(
        "import random\n", "").replace("def f(", "def g("))
    assert main(["--no-config", "--format", "json", str(path)]) == \
        EXIT_FINDINGS
    findings = json.loads(capsys.readouterr().out)["findings"]
    keys = [(f["path"], f["line"], f["col"], f["rule"], f["message"])
            for f in findings]
    assert keys == sorted(keys)
    assert len({f["category"] for f in findings}) > 1
    # Round trip: dropping the derived category restores the Finding.
    for serialized in findings:
        fields = {k: v for k, v in serialized.items() if k != "category"}
        assert Finding(**fields).to_dict() == fields


def test_sarif_format_is_valid_sarif_210(dirty_file, capsys):
    assert main(["--no-config", "--format", "sarif", str(dirty_file)]) == \
        EXIT_FINDINGS
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert "sarif-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {"DET001", "COR001", "CONC001"} <= rule_ids
    assert run["results"], "findings must surface as SARIF results"
    first = run["results"][0]
    assert first["ruleId"] in rule_ids
    location = first["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] >= 1
    assert location["region"]["startColumn"] >= 1  # SARIF is 1-based


def test_selecting_conc_rule_implies_project_pass(tmp_path, capsys):
    source = tmp_path / "src" / "repro" / "campaign"
    source.mkdir(parents=True)
    (source / "engine.py").write_text(
        "_SEEN = {}\n"
        "\n"
        "\n"
        "def run_shard(site):\n"
        "    _SEEN[site] = True\n"
        "    return site\n"
    )
    (tmp_path / "pyproject.toml").write_text("")
    code = main(["--no-config", "--no-cache", "--select", "CONC001",
                 str(tmp_path / "src")])
    assert code == EXIT_FINDINGS
    assert "CONC001" in capsys.readouterr().out


def test_shard_safety_writes_certificate_and_summarises(tmp_path, capsys):
    source = tmp_path / "src" / "repro" / "campaign"
    source.mkdir(parents=True)
    (source / "engine.py").write_text(
        "def run_shard(site):\n    return site\n"
    )
    (tmp_path / "pyproject.toml").write_text("")
    cert = tmp_path / "out" / "cert.json"
    code = main(["--no-config", "--no-cache",
                 "--shard-safety", "repro.campaign",
                 "--cert-out", str(cert), str(tmp_path / "src")])
    assert code == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "shard-safety[repro.campaign]: SAFE" in out
    document = json.loads(cert.read_text())
    assert document["target"] == "repro.campaign"
    assert document["summary"]["safe"] is True
    assert document["digest"][:12] in out  # summary names the digest prefix


def test_shard_safety_goes_unsafe_with_findings_exit(tmp_path, capsys):
    source = tmp_path / "src" / "repro" / "campaign"
    source.mkdir(parents=True)
    (source / "engine.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def stamp(event):\n"
        "    return (event, time.time())\n"
    )
    (tmp_path / "pyproject.toml").write_text("")
    cert = tmp_path / "cert.json"
    code = main(["--no-config", "--no-cache",
                 "--shard-safety", "repro.campaign",
                 "--cert-out", str(cert), str(tmp_path / "src")])
    assert code == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "UNSAFE" in out
    assert json.loads(cert.read_text())["summary"]["safe"] is False


def test_shard_safety_without_conc_rules_is_a_usage_error(tmp_path, capsys):
    (tmp_path / "a.py").write_text("A = 1\n")
    code = main(["--no-config", "--disable", "CONC",
                 "--shard-safety", "repro.campaign",
                 "--cert-out", str(tmp_path / "cert.json"),
                 str(tmp_path / "a.py")])
    assert code == EXIT_USAGE
    assert "CONC" in capsys.readouterr().err


def test_list_rules_includes_conc_catalogue(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in ("CONC001", "CONC002", "CONC003", "CONC004", "CONC005"):
        assert code in out


def test_stats_flag_reports_effects_phase(dirty_file, capsys):
    assert main(["--no-config", "--stats", "--project",
                 str(dirty_file)]) == EXIT_FINDINGS
    assert "phase effects" in capsys.readouterr().err


def test_directory_walk_respects_exclude(tmp_path, capsys):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "bad.py").write_text("import random\nx = random.random()\n")
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.repro-lint]\nexclude = ["*/pkg/bad.py"]\n'
    )
    code = main(["--config", str(pyproject), str(package)])
    assert code == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out
