"""Tests for the dependency-free SVG charts."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import LineChart


def _parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


def test_empty_chart_is_valid_svg():
    chart = LineChart(title="empty")
    root = _parse(chart.to_svg())
    assert root.tag.endswith("svg")


def test_series_become_polylines():
    chart = LineChart(title="t", x_label="x", y_label="y")
    chart.add_series("a", [0, 1, 2], [0, 1, 4])
    chart.add_series("b", [0, 1, 2], [4, 1, 0])
    root = _parse(chart.to_svg())
    polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
    assert len(polylines) == 2
    # coordinates inside the viewBox
    for poly in polylines:
        for pair in poly.attrib["points"].split():
            x, y = map(float, pair.split(","))
            assert 0 <= x <= 640
            assert 0 <= y <= 400


def test_mismatched_lengths_rejected():
    chart = LineChart()
    with pytest.raises(ValueError):
        chart.add_series("a", [1, 2], [1])


def test_log_scale_handles_wide_range():
    chart = LineChart(log_y=True)
    chart.add_series("a", [1, 2, 3], [1.0, 100.0, 10000.0])
    svg = chart.to_svg()
    root = _parse(svg)
    [poly] = [e for e in root.iter() if e.tag.endswith("polyline")]
    ys = [float(p.split(",")[1]) for p in poly.attrib["points"].split()]
    # On a log scale, equal multiplicative steps are equidistant.
    assert abs((ys[0] - ys[1]) - (ys[1] - ys[2])) < 1.0


def test_marker_line_rendered():
    chart = LineChart(marker_x=5.0)
    chart.add_series("a", [0, 10], [0, 1])
    svg = chart.to_svg()
    assert "stroke-dasharray" in svg


def test_marker_outside_range_omitted():
    chart = LineChart(marker_x=99.0)
    chart.add_series("a", [0, 10], [0, 1])
    assert "stroke-dasharray" not in chart.to_svg()


def test_title_escaped():
    chart = LineChart(title="a < b & c")
    svg = chart.to_svg()
    assert "a &lt; b &amp; c" in svg
    _parse(svg)  # still valid XML


def test_save(tmp_path):
    chart = LineChart(title="saved")
    chart.add_series("a", [0, 1], [0, 1])
    out = tmp_path / "chart.svg"
    chart.save(out)
    assert out.read_text().startswith("<svg")


def test_figure_svg_helpers(small_env):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.figures import compute_figure15, compute_figure4, compute_figure5
    from repro.experiments.runner import ResultCache

    config = ExperimentConfig(scale=0.1, sb_runs=1, seeds=(1,))
    cache = ResultCache(scale=0.1)
    fig4 = compute_figure4(config, cache, sites=("qa",), crawlers=("BFS",))
    left, right = fig4.sites[0].to_svg()
    _parse(left)
    _parse(right)
    fig5 = compute_figure5(config, cache, sites=("qa",))
    _parse(fig5.to_svg())
    fig15 = compute_figure15("qa", config, cache)
    _parse(fig15.to_svg())
