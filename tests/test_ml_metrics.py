"""Tests for confusion matrices and MR (Table 5 / Tables 8-16 metrics)."""

import pytest

from repro.ml.metrics import ConfusionMatrix


def test_update_and_percentages():
    matrix = ConfusionMatrix()
    for _ in range(6):
        matrix.update("HTML", "HTML")
    for _ in range(3):
        matrix.update("Target", "Target")
    matrix.update("Target", "HTML")
    assert matrix.total == 10
    assert matrix.percentage("HTML", "HTML") == 60.0
    assert matrix.percentage("Target", "HTML") == 10.0
    assert matrix.percentage("Neither", "HTML") == 0.0


def test_mr_excludes_neither_rows():
    matrix = ConfusionMatrix()
    matrix.update("HTML", "HTML")
    matrix.update("Target", "HTML")   # wrong
    matrix.update("Neither", "HTML")  # excluded from MR by definition
    assert matrix.misclassification_rate() == 50.0


def test_mr_empty_matrix():
    assert ConfusionMatrix().misclassification_rate() == 0.0


def test_unknown_label_rejected():
    with pytest.raises(ValueError):
        ConfusionMatrix().update("HTML", "Bogus")


def test_merged():
    a = ConfusionMatrix()
    a.update("HTML", "HTML")
    b = ConfusionMatrix()
    b.update("HTML", "Target")
    merged = a.merged(b)
    assert merged.total == 2
    assert merged.count("HTML", "HTML") == 1
    assert merged.count("HTML", "Target") == 1
    # originals untouched
    assert a.total == 1 and b.total == 1


def test_as_rows_shape():
    matrix = ConfusionMatrix()
    matrix.update("HTML", "HTML")
    rows = matrix.as_rows()
    assert len(rows) == 3
    assert all(len(r) == 3 for r in rows)
    assert abs(sum(sum(r) for r in rows) - 100.0) < 1e-9
