"""Tests for cost accounting."""

import pytest

from repro.http.ledger import CostLedger


def test_record_and_totals():
    ledger = CostLedger()
    ledger.record("GET", 1000, is_target=False)
    ledger.record("GET", 5000, is_target=True)
    ledger.record("HEAD", 280, is_target=False)
    assert ledger.n_requests == 3
    assert ledger.n_get == 2
    assert ledger.n_head == 1
    assert ledger.bytes_total == 6280
    assert ledger.bytes_target == 5000
    assert ledger.bytes_non_target == 1280


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        CostLedger().record("POST", 10, False)


def test_estimated_seconds_politeness_dominated():
    ledger = CostLedger()
    for _ in range(100):
        ledger.record("GET", 10_000, False)
    # 100 requests at 1 s politeness + 1 MB at 10 MB/s = 100.1 s
    assert abs(ledger.estimated_seconds() - 100.1) < 1e-6


def test_snapshot_is_independent():
    ledger = CostLedger()
    ledger.record("GET", 10, False)
    snap = ledger.snapshot()
    ledger.record("GET", 10, False)
    assert snap.n_get == 1
    assert ledger.n_get == 2
