"""Tests for cost accounting."""

import pytest

from repro.http.ledger import CostLedger


def test_record_and_totals():
    ledger = CostLedger()
    ledger.record("GET", 1000, is_target=False)
    ledger.record("GET", 5000, is_target=True)
    ledger.record("HEAD", 280, is_target=False)
    assert ledger.n_requests == 3
    assert ledger.n_get == 2
    assert ledger.n_head == 1
    assert ledger.bytes_total == 6280
    assert ledger.bytes_target == 5000
    assert ledger.bytes_non_target == 1280


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        CostLedger().record("POST", 10, False)


def test_estimated_seconds_politeness_dominated():
    ledger = CostLedger()
    for _ in range(100):
        ledger.record("GET", 10_000, False)
    # 100 requests at 1 s politeness + 1 MB at 10 MB/s = 100.1 s
    assert abs(ledger.estimated_seconds() - 100.1) < 1e-6


def test_snapshot_is_independent():
    ledger = CostLedger()
    ledger.record("GET", 10, False)
    snap = ledger.snapshot()
    ledger.record("GET", 10, False)
    assert snap.n_get == 1
    assert ledger.n_get == 2


# -- merge fold (campaign shard aggregation) --------------------------------


def _ledger(n_get=0, n_head=0, size=0, target=False, retries=0, wait=0.0):
    ledger = CostLedger()
    for _ in range(n_get):
        ledger.record("GET", size, target)
    for _ in range(n_head):
        ledger.record("HEAD", size, target)
    for _ in range(retries):
        ledger.record_retry(wait)
    return ledger


def test_merge_adds_every_counter():
    a = _ledger(n_get=2, size=100, target=True, retries=1, wait=0.5)
    b = _ledger(n_head=3, size=10, retries=2, wait=0.25)
    a.merge(b)
    assert a.n_get == 2 and a.n_head == 3
    assert a.n_requests == 5
    assert a.bytes_total == 230
    assert a.bytes_target == 200 and a.bytes_non_target == 30
    assert a.n_retries == 3
    assert a.wait_seconds == 1.0


def test_merge_empty_is_identity():
    ledger = _ledger(n_get=4, size=123, retries=2, wait=0.5)
    before = ledger.snapshot()
    ledger.merge(CostLedger())
    assert ledger == before
    empty = CostLedger()
    empty.merge(before)
    assert empty == before


def test_merge_is_associative_and_commutative():
    # Dyadic-rational waits make the float sums exact, so equality is
    # legitimate — the property the campaign digest contract rests on.
    def parts():
        return (
            _ledger(n_get=3, size=50, target=True, retries=1, wait=0.5),
            _ledger(n_head=2, size=7, retries=2, wait=0.25),
            _ledger(n_get=1, size=999, wait=0.0),
        )

    a, b, c = parts()
    left = CostLedger().merge(CostLedger().merge(a).merge(b)).merge(c)
    a, b, c = parts()
    right = CostLedger().merge(a).merge(CostLedger().merge(b).merge(c))
    assert left == right
    a, b, c = parts()
    reversed_order = CostLedger().merge(c).merge(b).merge(a)
    assert reversed_order == left


def test_merge_returns_self_for_chaining():
    total = CostLedger()
    assert total.merge(_ledger(n_get=1, size=1)) is total
