"""Cross-module integration tests: the paper's headline qualitative
claims must hold on the synthetic replicas."""

import pytest

from repro.analysis.metrics import auc_targets_per_request, requests_to_fraction
from repro.baselines import BFSCrawler, OmniscientCrawler, RandomCrawler
from repro.core.crawler import SBConfig, sb_classifier, sb_oracle
from repro.http.environment import CrawlEnvironment
from repro.webgraph.sites import load_paper_site


@pytest.fixture(scope="module")
def ju_env():
    """The deep data-portal site at reduced scale."""
    return CrawlEnvironment(load_paper_site("ju", scale=0.4))


def test_sb_beats_bfs_and_random_on_deep_site(ju_env):
    total = ju_env.total_targets()
    avail = ju_env.n_available()
    sb = sb_oracle(SBConfig(seed=1)).crawl(ju_env)
    bfs = BFSCrawler().crawl(ju_env)
    rnd = RandomCrawler(seed=1).crawl(ju_env)
    sb_metric = requests_to_fraction(sb.trace, total, avail)
    bfs_metric = requests_to_fraction(bfs.trace, total, avail)
    rnd_metric = requests_to_fraction(rnd.trace, total, avail)
    assert sb_metric < bfs_metric
    assert sb_metric < rnd_metric


def test_sb_classifier_close_to_oracle(ju_env):
    total = ju_env.total_targets()
    avail = ju_env.n_available()
    oracle = sb_oracle(SBConfig(seed=1)).crawl(ju_env)
    classifier = sb_classifier(SBConfig(seed=1)).crawl(ju_env)
    m_oracle = requests_to_fraction(oracle.trace, total, avail)
    m_classifier = requests_to_fraction(classifier.trace, total, avail)
    # The paper: "our classifier is close to the (virtual) perfect oracle".
    assert m_classifier < 2.0 * m_oracle


def test_omniscient_is_unbeatable(ju_env):
    total = ju_env.total_targets()
    avail = ju_env.n_available()
    omniscient = OmniscientCrawler().crawl(ju_env)
    sb = sb_oracle(SBConfig(seed=1)).crawl(ju_env)
    assert requests_to_fraction(omniscient.trace, total, avail) <= (
        requests_to_fraction(sb.trace, total, avail)
    )


def test_auc_ordering(ju_env):
    total = ju_env.total_targets()
    sb = sb_oracle(SBConfig(seed=1)).crawl(ju_env)
    bfs = BFSCrawler().crawl(ju_env)
    assert auc_targets_per_request(sb.trace, total) > auc_targets_per_request(
        bfs.trace, total
    )


def test_rewards_heavy_tailed(ju_env):
    result = sb_classifier(SBConfig(seed=1)).crawl(ju_env)
    top10 = result.info["top10_rewards"]
    mean = result.info["reward_mean_nonzero"]
    # Figure 5 / Table 6 shape: top groups far above the overall mean.
    assert top10[0] > mean


def test_all_crawlers_agree_on_target_set(ju_env):
    """Exhaustive crawls must converge to the same target set."""
    sb = sb_oracle(SBConfig(seed=2)).crawl(ju_env)
    bfs = BFSCrawler().crawl(ju_env)
    assert sb.targets == bfs.targets == ju_env.target_urls()


def test_theta_extreme_creates_more_actions(ju_env):
    few = sb_oracle(SBConfig(seed=1, theta=0.3)).crawl(ju_env)
    many = sb_oracle(SBConfig(seed=1, theta=0.97)).crawl(ju_env)
    assert many.info["n_actions"] > few.info["n_actions"]
