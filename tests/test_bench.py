"""Tests for the hot-path benchmarking subsystem (``repro.bench``).

Three contracts are held here:

* **Schema** — ``python -m repro bench`` emits a document containing
  every field of :data:`repro.bench.SCHEMA_FIELDS`, one section per
  registered name, in registry order.
* **Determinism** — two runs with the same ``(seed, scale, repeats)``
  agree exactly on everything except wall-clock measurements
  (:func:`repro.bench.strip_timings` defines "everything except").
* **Gate** — the e2e pages/sec regression gate fails on drops beyond
  tolerance, passes on improvements, and refuses cross-scale or
  cross-schema comparisons.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_FIELDS,
    SCHEMA_VERSION,
    SECTION_NAMES,
    SECTIONS,
    bench_results_dir,
    check_regression,
    percentile,
    speedup,
    strip_timings,
    time_workload,
)
from repro.bench.__main__ import main as bench_main, render_report


def _run_cli(tmp_path: Path, name: str, extra: list[str] | None = None) -> dict:
    out = tmp_path / name
    argv = [
        "--seed", "7", "--scale", "0.05", "--repeats", "1",
        "--out", str(out),
    ] + (extra or [])
    assert bench_main(argv) == 0
    return json.loads(out.read_text())


# -- harness ---------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 3.0  # round(0.5 * 3) = 2
    assert percentile(values, 1.0) == 4.0
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_time_workload_counts_and_fields():
    states = []
    runs = []
    timing = time_workload(
        lambda: states.append(1), lambda s: runs.append(1), ops=10, repeats=3
    )
    assert len(states) == len(runs) == 3
    assert set(timing) == {"p50_ms", "p95_ms", "ops_per_sec", "seconds"}
    assert timing["p50_ms"] <= timing["p95_ms"]
    assert timing["seconds"] > 0
    with pytest.raises(ValueError):
        time_workload(lambda: None, lambda s: None, ops=1, repeats=0)


def test_speedup_is_reference_over_optimized():
    assert speedup({"p50_ms": 10.0}, {"p50_ms": 2.0}) == pytest.approx(5.0)


# -- sections --------------------------------------------------------------


def test_section_registry_is_consistent():
    assert set(SECTION_NAMES) == set(SECTIONS)
    assert SECTION_NAMES[-1] == "e2e"  # e2e last: it summarises the rest


# -- CLI + schema ----------------------------------------------------------


def _all_keys(value: object) -> set[str]:
    keys: set[str] = set()
    if isinstance(value, dict):
        for k, v in value.items():
            keys.add(k)
            keys |= _all_keys(v)
    elif isinstance(value, list):
        for item in value:
            keys |= _all_keys(item)
    return keys


def test_cli_emits_schema_valid_document(tmp_path):
    document = _run_cli(tmp_path, "bench.json")
    assert document["schema_version"] == SCHEMA_VERSION
    assert [s["name"] for s in document["sections"]] == list(SECTION_NAMES)
    present = _all_keys(document)
    workload_keys = _all_keys([s["workload"] for s in document["sections"]])
    missing = [f for f in SCHEMA_FIELDS
               if f not in present and f not in workload_keys]
    assert not missing, f"schema fields absent from document: {missing}"
    for section in document["sections"]:
        assert set(section["timing"]) == {
            "p50_ms", "p95_ms", "ops_per_sec", "seconds",
        }
    assert document["e2e_pages_per_sec"] > 0
    # The optimized hot paths must record their before/after deltas.
    assert set(document["optimizations"]) == {"tagpath", "frontier"}
    # The report renderer accepts its own document.
    report = render_report(document)
    for name in SECTION_NAMES:
        assert name in report


def test_cli_section_subset_and_unknown_section(tmp_path):
    document = _run_cli(tmp_path, "subset.json",
                        ["--sections", "frontier,tagpath"])
    # Registry order, not flag order.
    assert [s["name"] for s in document["sections"]] == ["tagpath", "frontier"]
    assert document["e2e_pages_per_sec"] is None
    with pytest.raises(SystemExit):
        bench_main(["--sections", "nope"])


def test_determinism_gate_two_runs_identical(tmp_path):
    """The tentpole determinism contract: two `repro bench --seed 7`
    runs at the same scale agree on every non-timing field."""
    first = _run_cli(tmp_path, "first.json")
    second = _run_cli(tmp_path, "second.json")
    assert first != second  # timings differ...
    assert strip_timings(first) == strip_timings(second)  # ...nothing else


def test_strip_timings_removes_machine_dependent_fields(tmp_path):
    document = _run_cli(tmp_path, "strip.json")
    stripped = strip_timings(document)
    assert "environment" not in stripped
    assert "e2e_pages_per_sec" not in stripped
    assert stripped["optimizations"] == ["frontier", "tagpath"]
    for section in stripped["sections"]:
        assert "timing" not in section
        assert "variants" not in section
        assert "speedup_vs_reference" not in section
        assert section["workload"]  # the deterministic part remains


# -- results dir -----------------------------------------------------------


def test_bench_results_dir_is_cwd_independent(tmp_path, monkeypatch):
    here = bench_results_dir()
    monkeypatch.chdir(tmp_path)
    assert bench_results_dir() == here
    assert here.name == "bench_results"
    assert (here.parent / "pyproject.toml").exists()  # repo root anchored


# -- regression gate -------------------------------------------------------


def _doc(pages_per_sec: float, scale: float = 1.0,
         schema: int = SCHEMA_VERSION) -> dict:
    return {
        "schema_version": schema,
        "scale": scale,
        "e2e_pages_per_sec": pages_per_sec,
    }


def test_gate_passes_within_tolerance_and_on_improvement():
    assert check_regression(_doc(95.0), _doc(100.0)).passed
    assert check_regression(_doc(81.0), _doc(100.0)).passed  # at the edge
    improved = check_regression(_doc(150.0), _doc(100.0))
    assert improved.passed
    assert improved.ratio == pytest.approx(1.5)


def test_gate_fails_beyond_tolerance():
    result = check_regression(_doc(79.0), _doc(100.0))
    assert not result.passed
    assert "REGRESSION" in result.message
    tightened = check_regression(_doc(95.0), _doc(100.0), tolerance=0.01)
    assert not tightened.passed


def test_gate_refuses_cross_scale_and_cross_schema():
    cross_scale = check_regression(_doc(100.0, scale=0.2), _doc(100.0))
    assert not cross_scale.passed
    assert "scale mismatch" in cross_scale.message
    cross_schema = check_regression(_doc(100.0, schema=2), _doc(100.0))
    assert not cross_schema.passed
    assert "schema mismatch" in cross_schema.message
    missing = check_regression({"schema_version": SCHEMA_VERSION,
                                "scale": 1.0}, _doc(100.0))
    assert not missing.passed


def test_committed_baseline_gates_against_itself():
    baseline_path = bench_results_dir() / "BENCH_7.json"
    baseline = json.loads(baseline_path.read_text())
    result = check_regression(baseline, baseline)
    assert result.passed
    assert result.ratio == pytest.approx(1.0)
