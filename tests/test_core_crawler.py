"""End-to-end tests of the SB crawler (Algorithms 1-4)."""

import pytest

from repro.core.crawler import SBConfig, SBCrawler, sb_classifier, sb_oracle
from repro.webgraph.model import PageKind, same_site


def test_full_crawl_finds_all_targets(small_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    assert result.targets == small_env.target_urls()


def test_classifier_variant_finds_all_targets(small_env):
    result = sb_classifier(SBConfig(seed=1)).crawl(small_env)
    assert result.targets == small_env.target_urls()


def test_budget_respected(small_env):
    result = sb_classifier(SBConfig(seed=1)).crawl(small_env, budget=50)
    # Recursion chains may overshoot by a bounded amount only.
    assert result.n_requests <= 50 + 30


def test_volume_budget(small_env):
    budget = 2_000_000.0
    result = sb_oracle(SBConfig(seed=1)).crawl(
        small_env, budget=budget, cost_model="volume"
    )
    total_bytes = result.trace.total_bytes
    assert total_bytes > 0
    full = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    assert total_bytes <= full.trace.total_bytes


def test_no_page_fetched_twice(small_env):
    result = sb_oracle(SBConfig(seed=2)).crawl(small_env)
    get_urls = [r.url for r in result.trace.records if r.method == "GET"]
    assert len(get_urls) == len(set(get_urls))


def test_all_requests_in_site(small_env):
    result = sb_classifier(SBConfig(seed=3)).crawl(small_env)
    for record in result.trace.records:
        assert same_site(small_env.root_url, record.url)


def test_no_blocklisted_media_fetched(small_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    media_urls = {
        p.url for p in small_env.graph.pages() if p.kind is PageKind.OTHER
    }
    fetched = {r.url for r in result.trace.records}
    # The oracle classifies media URLs as NEITHER; extension blocklist
    # catches them even earlier.
    assert not (fetched & media_urls)


def test_oracle_never_requests_error_urls(small_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    error_urls = {
        p.url for p in small_env.graph.pages() if p.kind is PageKind.ERROR
    }
    fetched = {r.url for r in result.trace.records}
    assert not (fetched & error_urls)


def test_classifier_pays_head_requests(small_env):
    result = sb_classifier(SBConfig(seed=1, batch_size=10)).crawl(small_env)
    heads = [r for r in result.trace.records if r.method == "HEAD"]
    assert heads  # initial training phase labels via HEAD
    oracle_run = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    assert not [r for r in oracle_run.trace.records if r.method == "HEAD"]


def test_determinism_same_seed(small_env):
    a = sb_classifier(SBConfig(seed=5)).crawl(small_env)
    b = sb_classifier(SBConfig(seed=5)).crawl(small_env)
    assert [r.url for r in a.trace.records] == [r.url for r in b.trace.records]


def test_different_seeds_differ(small_env):
    a = sb_classifier(SBConfig(seed=5)).crawl(small_env)
    b = sb_classifier(SBConfig(seed=6)).crawl(small_env)
    assert [r.url for r in a.trace.records] != [r.url for r in b.trace.records]


def test_redirects_followed_once(small_env):
    result = sb_oracle(SBConfig(seed=1)).crawl(small_env)
    redirect_urls = {
        p.url for p in small_env.graph.pages() if p.kind is PageKind.REDIRECT
    }
    if redirect_urls:
        canonical = {
            small_env.graph.page(u).redirect_to for u in redirect_urls
        }
        fetched = {r.url for r in result.trace.records}
        assert canonical <= fetched


def test_info_payload(small_env):
    result = sb_classifier(SBConfig(seed=1)).crawl(small_env)
    assert result.info["n_actions"] > 1
    assert len(result.info["top10_rewards"]) <= 10
    assert result.info["confusion"].total > 0


def test_early_stopping_reduces_requests(deep_env):
    base = sb_classifier(SBConfig(seed=1)).crawl(deep_env)
    es = SBCrawler(
        SBConfig(
            seed=1,
            early_stopping=True,
            es_window=30,
            es_threshold=0.2,
            es_decay=0.1,
            es_patience=4,
        )
    )
    stopped = es.crawl(deep_env)
    assert stopped.n_requests <= base.n_requests
    if stopped.stopped_early:
        assert stopped.trace.stopped_early_at is not None


def test_names():
    assert sb_oracle().name == "SB-ORACLE"
    assert sb_classifier().name == "SB-CLASSIFIER"
    assert SBCrawler(SBConfig(), name="custom").name == "custom"


def test_with_seed_helper():
    config = SBConfig(seed=1)
    assert config.with_seed(9).seed == 9
    assert config.seed == 1


def test_custom_target_mime_set(small_site):
    """The target definition is user-configurable (Sec. 2.2)."""
    from repro.http.environment import CrawlEnvironment

    csv_only = frozenset({"text/csv", "text/comma-separated-values"})
    env = CrawlEnvironment(small_site, target_mimes=csv_only)
    result = sb_oracle(SBConfig(seed=1)).crawl(env)
    assert result.targets == env.target_urls()
    for url in result.targets:
        assert small_site.page(url).mime_type in csv_only
    # Restricting the target set yields fewer targets than the default.
    full_env = CrawlEnvironment(small_site)
    assert env.total_targets() < full_env.total_targets()


def test_alternative_bandit_policies_crawl_fully(small_env):
    """ε-greedy and Thompson variants (Appendix C) complete the crawl."""
    for policy in ("epsilon-greedy", "thompson"):
        result = sb_oracle(SBConfig(seed=1, bandit_policy=policy)).crawl(small_env)
        assert result.targets == small_env.target_urls(), policy


def test_unknown_bandit_policy_rejected(small_env):
    import pytest

    with pytest.raises(ValueError):
        sb_oracle(SBConfig(bandit_policy="bogus")).crawl(small_env)
