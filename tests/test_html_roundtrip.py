"""Render → parse round-trip tests: the crawler must recover exactly the
links (URL, tag path, anchor) that the generator declared."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.parse import parse_page
from repro.html.render import render_page
from repro.webgraph.model import Link, Page, PageKind

# -- hypothesis strategies ----------------------------------------------

_tag = st.sampled_from(["div", "ul", "li", "section", "nav", "main", "span"])
_word = st.text(alphabet="abcdefghij", min_size=1, max_size=6)


def _segment_strategy():
    return st.builds(
        lambda tag, elem_id, classes: tag
        + (f"#{elem_id}" if elem_id else "")
        + "".join(f".{c}" for c in classes),
        _tag,
        st.one_of(st.none(), _word),
        st.lists(_word, max_size=2),
    )


_tag_path = st.builds(
    lambda middle: " ".join(["html", "body"] + middle + ["a"]),
    st.lists(_segment_strategy(), min_size=0, max_size=4),
)

_anchor_text = st.text(
    alphabet="abc DEF&<>'\"éü-", min_size=0, max_size=20
).map(str.strip)

_links = st.lists(
    st.builds(
        Link,
        url=st.integers(0, 999).map(
            lambda i: f"https://www.t.example/page-{i}"
        ),
        tag_path=_tag_path,
        anchor=_anchor_text,
    ),
    min_size=0,
    max_size=12,
    unique_by=lambda l: l.url,
)


@given(_links)
@settings(max_examples=120, deadline=None)
def test_round_trip_recovers_links(links):
    from repro.webgraph.canonical import resolve_link

    page = Page(
        url="https://www.t.example/p",
        kind=PageKind.HTML,
        size=4000,
        links=links,
    )
    parsed = parse_page(render_page(page))
    want = {(l.url, l.tag_path, " ".join(l.anchor.split())) for l in links}
    got = {
        (resolve_link(page.url, l.url), l.tag_path, " ".join(l.anchor.split()))
        for l in parsed.links
    }
    assert want == got


def test_extract_links_matches_parse_page(small_site):
    """The ``extract_links`` convenience wrapper returns exactly the
    link list of a full ``parse_page`` — nothing dropped, same order."""
    from repro.html import extract_links

    for page in list(small_site.html_pages())[:10]:
        html_text = render_page(page)
        assert extract_links(html_text) == parse_page(html_text).links


def test_round_trip_on_generated_pages(small_site):
    from repro.webgraph.canonical import resolve_link

    for page in list(small_site.html_pages())[:40]:
        parsed = parse_page(render_page(page))
        want = {(l.url, l.tag_path, l.anchor) for l in page.links}
        got = {
            (resolve_link(page.url, l.url), l.tag_path, l.anchor)
            for l in parsed.links
        }
        assert want == got, page.url


def test_rendered_hrefs_use_mixed_forms(small_site):
    """Pages write hrefs as path-absolute, fragment-decorated and
    absolute URLs — the realism that forces crawler-side resolution."""
    forms = {"path": 0, "fragment": 0, "absolute": 0}
    for page in list(small_site.html_pages())[:60]:
        for link in parse_page(render_page(page)).links:
            if link.url.startswith("/"):
                forms["path"] += 1
            elif "#" in link.url:
                forms["fragment"] += 1
            else:
                forms["absolute"] += 1
    assert all(count > 0 for count in forms.values()), forms


def test_rendered_size_matches_declared(small_site):
    checked = 0
    for page in small_site.html_pages():
        body = render_page(page)
        if page.size >= len(body):
            assert len(body) == page.size
            checked += 1
    assert checked > 0


def test_parser_extracts_title_and_text():
    page = Page(
        url="https://www.t.example/p",
        kind=PageKind.HTML,
        size=3000,
        links=[Link("https://www.t.example/x", "html body div.c a", "Go")],
    )
    parsed = parse_page(render_page(page))
    assert parsed.title
    assert parsed.text


def test_parser_tolerates_broken_html():
    broken = "<html><body><div><a href='https://x.example/y'>click<p>mid</body>"
    parsed = parse_page(broken)
    assert len(parsed.links) == 1
    assert parsed.links[0].url == "https://x.example/y"


def test_parser_handles_self_closing_and_iframe():
    html = (
        "<html><body>"
        "<area href='https://x.example/a'/>"
        "<iframe src='https://x.example/b'></iframe>"
        "</body></html>"
    )
    parsed = parse_page(html)
    urls = {l.url for l in parsed.links}
    assert urls == {"https://x.example/a", "https://x.example/b"}


def test_anchor_without_href_ignored():
    parsed = parse_page("<html><body><a name='x'>no link</a></body></html>")
    assert parsed.links == []
