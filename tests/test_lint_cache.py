"""Incremental-cache behaviour: hits on unchanged files, invalidation
on content edit / rule-set version bump / config change, and tolerance
of corrupted cache files (caching must never change findings)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Linter, RuleConfig

DIRTY = "import random\nx = random.random()\n"
CLEAN = "from repro.utils.rng import derive_rng\n"


@pytest.fixture()
def tree(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "dirty.py").write_text(DIRTY)
    (package / "clean.py").write_text(CLEAN)
    return package


def run(tree, cache, config=None):
    return Linter(config or RuleConfig()).run([tree], cache_path=cache)


def test_second_run_hits_for_every_unchanged_file(tree, tmp_path):
    cache = tmp_path / "cache.json"
    cold = run(tree, cache)
    warm = run(tree, cache)
    assert cold.cache.enabled and warm.cache.enabled
    assert cold.cache.misses == cold.cache.files == 2
    assert warm.cache.hits == warm.cache.files == 2
    assert warm.cache.misses == 0
    assert [f.to_dict() for f in cold.findings] == \
        [f.to_dict() for f in warm.findings]
    assert len(warm.findings) == 1  # the DET001 in dirty.py


def test_file_edit_invalidates_only_that_file(tree, tmp_path):
    cache = tmp_path / "cache.json"
    run(tree, cache)
    (tree / "dirty.py").write_text(CLEAN)
    warm = run(tree, cache)
    assert warm.cache.hits == 1    # clean.py untouched
    assert warm.cache.misses == 1  # dirty.py re-linted
    assert warm.findings == []


def test_rule_version_bump_invalidates_everything(tree, tmp_path, monkeypatch):
    cache = tmp_path / "cache.json"
    run(tree, cache)
    import repro.lint.rules as rules_module

    monkeypatch.setattr(rules_module, "RULESET_VERSION", "9999.99-0")
    bumped = run(tree, cache)
    assert bumped.cache.hits == 0
    assert bumped.cache.misses == bumped.cache.files == 2


def test_interpreter_version_is_part_of_the_cache_key(tree, tmp_path,
                                                      monkeypatch):
    """A cache written by one Python minor must not serve facts to
    another — ``ast`` node shapes change across minors, and CI runs the
    suite on both 3.11 and 3.12 against the same layout."""
    import repro.lint.cache as cache_module

    assert cache_module.interpreter_tag().startswith("py3.")
    cache = tmp_path / "cache.json"
    run(tree, cache)
    monkeypatch.setattr(cache_module, "interpreter_tag",
                        lambda: "py3.99")
    other = run(tree, cache)
    assert other.cache.hits == 0
    assert other.cache.misses == other.cache.files == 2


def test_cache_preserves_effect_facts(tree, tmp_path):
    """Phase-4 effect facts survive the cache round-trip, so a warm
    project run can solve the effect fixpoint without re-parsing."""
    from repro.lint.cache import LintCache, content_sha

    cache_path = tmp_path / "cache.json"
    linter = Linter(RuleConfig())
    linter.run([tree], cache_path=cache_path)
    store = LintCache(cache_path, key=linter._cache_key())
    path = str(tree / "dirty.py")
    entry = store.get(path, content_sha((tree / "dirty.py").read_bytes()))
    assert entry is not None
    assert entry.effect_facts is not None
    fresh = linter._analyze(DIRTY, path, sha=entry.sha)
    assert entry.effect_facts == fresh.effect_facts


def test_config_change_invalidates_everything(tree, tmp_path):
    cache = tmp_path / "cache.json"
    run(tree, cache)
    reconfigured = run(tree, cache,
                       config=RuleConfig(disable=frozenset({"DET001"})))
    assert reconfigured.cache.hits == 0
    assert reconfigured.cache.misses == 2
    assert reconfigured.findings == []  # DET001 disabled


def test_changed_config_does_not_resurrect_old_findings(tree, tmp_path):
    """Round-trip back to the original config: the cache was rewritten
    under the new key, so the original run is cold again — and correct."""
    cache = tmp_path / "cache.json"
    first = run(tree, cache)
    run(tree, cache, config=RuleConfig(disable=frozenset({"DET001"})))
    again = run(tree, cache)
    assert again.cache.misses == 2
    assert [f.to_dict() for f in again.findings] == \
        [f.to_dict() for f in first.findings]


def test_corrupted_cache_file_is_ignored(tree, tmp_path):
    cache = tmp_path / "cache.json"
    cache.write_text("{not json at all")
    result = run(tree, cache)
    assert result.cache.misses == 2
    assert len(result.findings) == 1
    # ... and the corrupted file was replaced with a valid one.
    rerun = run(tree, cache)
    assert rerun.cache.hits == 2


def test_cache_preserves_suppressed_findings_for_flow004(tmp_path):
    """FLOW004 must see *suppressed* findings even when the per-file
    phase is served entirely from the cache."""
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "guarded.py").write_text(
        "def f(x):\n"
        "    return x == 0.5  # repro: noqa[COR002] exact sentinel\n"
    )
    cache = tmp_path / "cache.json"
    linter = Linter(RuleConfig())
    cold = linter.run([tmp_path / "src"], project=True, cache_path=cache)
    warm = Linter(RuleConfig()).run([tmp_path / "src"], project=True,
                                    cache_path=cache)
    assert warm.cache.hits == warm.cache.files == 1
    assert cold.findings == warm.findings == []  # marker is used, no FLOW004


def test_no_cache_path_disables_caching(tree):
    result = Linter(RuleConfig()).run([tree])
    assert not result.cache.enabled
    assert result.cache.hits == result.cache.misses == 0


def test_cache_roundtrip_preserves_symbols(tree, tmp_path):
    """Symbol tables restored from cache equal freshly extracted ones."""
    from repro.lint.cache import LintCache, content_sha

    cache_path = tmp_path / "cache.json"
    linter = Linter(RuleConfig())
    linter.run([tree], cache_path=cache_path)
    key = linter._cache_key()
    store = LintCache(cache_path, key=key)
    path = str(tree / "dirty.py")
    entry = store.get(path, content_sha((tree / "dirty.py").read_bytes()))
    assert entry is not None
    fresh = linter._analyze(DIRTY, path, sha=entry.sha)
    assert entry.symbols.to_dict() == fresh.symbols.to_dict()
    assert [f.to_dict() for f in entry.findings] == \
        [f.to_dict() for f in fresh.findings]
