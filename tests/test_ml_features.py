"""Tests for hashed n-gram features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.features import char_ngrams, hashed_bow, merge_vectors


def test_char_ngrams_basic():
    assert char_ngrams("abc", 2) == ["ab", "bc"]
    assert char_ngrams("abcd", 3) == ["abc", "bcd"]


def test_char_ngrams_short_text():
    assert char_ngrams("a", 2) == ["a"]
    assert char_ngrams("", 2) == []


def test_char_ngrams_rejects_nonpositive_n():
    with pytest.raises(ValueError):
        char_ngrams("abc", 0)


def test_hashed_bow_counts():
    vector = hashed_bow("aaa", n=2, dim=64)
    # "aaa" has two identical 2-grams "aa" -> one bucket with count 2
    assert vector.nnz == 1
    assert vector.values[0] == 2.0


def test_hashed_bow_deterministic():
    a = hashed_bow("https://x.example/file.csv", dim=256)
    b = hashed_bow("https://x.example/file.csv", dim=256)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.values, b.values)


def test_hashed_bow_seed_changes_hashing():
    a = hashed_bow("some text here", dim=4096, seed=1)
    b = hashed_bow("some text here", dim=4096, seed=2)
    assert not np.array_equal(a.indices, b.indices)


def test_indices_sorted_and_in_range():
    vector = hashed_bow("the quick brown fox", dim=128)
    assert list(vector.indices) == sorted(set(vector.indices))
    assert vector.indices.min() >= 0
    assert vector.indices.max() < 128


def test_merge_vectors_sums_counts():
    a = hashed_bow("ab", dim=64)
    merged = merge_vectors([a, a])
    assert np.array_equal(merged.indices, a.indices)
    assert np.array_equal(merged.values, a.values * 2)


def test_merge_vectors_dim_mismatch():
    with pytest.raises(ValueError):
        merge_vectors([hashed_bow("x", dim=32), hashed_bow("x", dim=64)])


def test_merge_vectors_empty():
    with pytest.raises(ValueError):
        merge_vectors([])


@given(st.text(alphabet="abcdef:/.", max_size=40), st.text(alphabet="abcdef:/.", max_size=40))
@settings(max_examples=50)
def test_merge_commutative(t1, t2):
    a, b = hashed_bow(t1, dim=128), hashed_bow(t2, dim=128)
    ab = merge_vectors([a, b])
    ba = merge_vectors([b, a])
    assert np.array_equal(ab.indices, ba.indices)
    assert np.array_equal(ab.values, ba.values)


def test_l2_norm_and_scale():
    vector = hashed_bow("ab", dim=64)
    assert vector.l2_norm() == 1.0
    assert vector.scale(3.0).l2_norm() == 3.0
