"""Tests for the early-stopping monitor (Sec. 4.8)."""

from repro.core.early_stopping import EarlyStoppingMonitor


def _run(monitor, target_counts):
    """Feed cumulative counts; return iteration where it stopped (or None)."""
    for count in target_counts:
        if monitor.observe(count):
            return monitor.triggered_at
    return monitor.triggered_at


def test_stops_on_plateau():
    monitor = EarlyStoppingMonitor(window=10, threshold=0.2, decay=0.5, patience=3)
    # 100 iterations of strong discovery, then a long plateau.
    counts = [i * 2 for i in range(100)] + [200] * 400
    stopped = _run(monitor, counts)
    assert stopped is not None
    assert stopped > 100


def test_never_stops_while_discovering():
    monitor = EarlyStoppingMonitor(window=10, threshold=0.2, decay=0.5, patience=3)
    counts = [i for i in range(500)]  # slope 1 > threshold forever
    assert _run(monitor, counts) is None


def test_patience_resets_on_recovery():
    monitor = EarlyStoppingMonitor(window=10, threshold=0.5, decay=1.0, patience=3)
    counts = []
    value = 0
    # Alternate: 2 flat windows (below threshold), then a productive one.
    for block in range(30):
        if block % 3 == 2:
            for _ in range(10):
                value += 2
                counts.append(value)
        else:
            counts.extend([value] * 10)
    assert _run(monitor, counts) is None


def test_triggered_state_is_sticky():
    monitor = EarlyStoppingMonitor(
        window=5, threshold=1.0, decay=1.0, patience=1,
        arm_after_first_target=False, require_ramp_up=False,
    )
    for _ in range(5):
        monitor.observe(0)
    assert monitor.stopped
    assert monitor.observe(10_000)  # still stopped


def test_history_recorded():
    monitor = EarlyStoppingMonitor(
        window=10, threshold=0.2, decay=0.5, patience=2,
        arm_after_first_target=False,
    )
    _run(monitor, [0] * 100)
    assert len(monitor.history) >= 2
    iterations = [i for i, _ in monitor.history]
    assert iterations == sorted(iterations)


def test_not_armed_before_first_target():
    """Zero-discovery phases before the first target never stop the crawl."""
    monitor = EarlyStoppingMonitor(window=5, threshold=0.5, decay=1.0, patience=1)
    assert _run(monitor, [0] * 500) is None
    assert monitor.history == []  # never armed, never measured


def test_ramp_up_required_before_stopping():
    """Low windows only count once discovery has ramped up."""
    monitor = EarlyStoppingMonitor(window=10, threshold=0.5, decay=1.0, patience=2)
    # One early target, then a long dry spell: must NOT stop (no ramp-up).
    counts = [1] * 300
    assert _run(monitor, counts) is None
    # Now a strong burst followed by a plateau: must stop.
    value = 1
    tail = []
    for _ in range(50):
        value += 2
        tail.append(value)
    tail += [value] * 100
    assert _run(monitor, tail) is not None


def test_short_crawl_never_triggers():
    """Small sites finish before κ·ν iterations (paper behaviour iii)."""
    monitor = EarlyStoppingMonitor(window=1000, threshold=0.2, decay=0.05,
                                   patience=15)
    assert _run(monitor, list(range(900))) is None
