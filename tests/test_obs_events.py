"""The event-stream contract, end to end: counts match the ledger, the
JSONL trace round-trips, replay reconstructs the originating
``CrawlResult`` exactly, and observers never perturb the crawl."""

import pytest

from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier
from repro.baselines.simple import BFSCrawler
from repro.core.early_stopping import EarlyStoppingMonitor
from repro.obs import (
    EVENT_TYPES,
    JsonlSink,
    MemorySink,
    MetricsObserver,
    MetricsRegistry,
    MultiObserver,
    NullObserver,
    Observer,
    crawl_report,
    read_events,
    trace_from_events,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.events import EarlyStopTriggered
from repro.obs.report import harvest_rate_curve, regret_curve

SITE, SCALE, SEED, BUDGET = "ju", 0.1, 1, 200


@pytest.fixture(scope="module")
def instrumented():
    """One instrumented crawl + its uninstrumented twin (same env/seed)."""
    env = CrawlEnvironment(load_paper_site(SITE, scale=SCALE))
    sink = MemorySink()
    registry = MetricsRegistry()
    observer = MultiObserver([sink, MetricsObserver(registry)])
    result = sb_classifier(SBConfig(seed=SEED, observer=observer)).crawl(
        env, budget=BUDGET)
    bare = sb_classifier(SBConfig(seed=SEED)).crawl(env, budget=BUDGET)
    return env, sink, registry, result, bare


def test_sinks_satisfy_observer_protocol():
    assert isinstance(MemorySink(), Observer)
    assert isinstance(MetricsObserver(), Observer)
    assert not NullObserver().enabled


def test_event_counts_match_ledger(instrumented):
    _, sink, _, result, _ = instrumented
    counts = sink.counts()
    assert counts["fetch"] == result.n_requests
    assert counts["target_found"] == result.n_targets
    assert counts["action_created"] == result.info["n_actions"]
    assert counts.get("classifier_batch_trained", 0) >= 1
    assert counts["action_selected"] >= 1
    assert set(counts) <= set(EVENT_TYPES)


def test_metrics_fold_matches_result(instrumented):
    _, _, registry, result, _ = instrumented
    assert registry.get("requests_total").value == result.n_requests
    assert registry.get("targets_total").value == result.trace.n_targets
    assert registry.get("bytes_total").value == result.trace.total_bytes
    assert registry.get("steps_total").value > 0


def test_trace_reconstruction_is_exact(instrumented):
    _, sink, _, result, _ = instrumented
    trace = trace_from_events(sink.events, crawler=result.crawler,
                              site=result.site)
    assert trace.n_requests == result.n_requests
    assert trace.n_targets == result.trace.n_targets
    assert trace.total_bytes == result.trace.total_bytes
    assert len(trace.records) == len(result.trace.records)
    for rebuilt, original in zip(trace.records, result.trace.records):
        assert (rebuilt.method, rebuilt.url, rebuilt.status, rebuilt.size,
                rebuilt.is_target) == (original.method, original.url,
                                       original.status, original.size,
                                       original.is_target)


def test_observer_never_perturbs_the_crawl(instrumented):
    """A crawl with observers attached is byte-identical to one without."""
    _, _, _, result, bare = instrumented
    assert result.n_requests == bare.n_requests
    assert result.targets == bare.targets
    assert [(r.method, r.url, r.status) for r in result.trace.records] == \
           [(r.method, r.url, r.status) for r in bare.trace.records]


def test_jsonl_round_trip(instrumented, tmp_path):
    _, sink, _, result, _ = instrumented
    path = tmp_path / "run.jsonl"
    with JsonlSink(path, meta={"crawler": result.crawler, "site": result.site,
                               "seed": SEED}) as jsonl:
        for event in sink.events:
            jsonl.on_event(event)
    assert jsonl.n_events == len(sink.events)
    meta, events = read_events(path)
    assert meta == {"crawler": result.crawler, "site": result.site,
                    "seed": SEED}
    assert events == sink.events


def test_read_events_fails_loudly(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_events(empty)

    wrong = tmp_path / "wrong.jsonl"
    wrong.write_text('{"format":99,"stream":"repro.obs"}\n')
    with pytest.raises(ValueError, match="format"):
        read_events(wrong)

    unknown = tmp_path / "unknown.jsonl"
    unknown.write_text('{"format":1,"stream":"repro.obs"}\n'
                       '{"e":"no_such_event"}\n')
    with pytest.raises(ValueError, match="unknown event kind"):
        read_events(unknown)


def test_crawl_report_reconstructs_result(instrumented):
    _, sink, _, result, _ = instrumented
    report = crawl_report(sink.events, crawler=result.crawler,
                          site=result.site)
    assert f"crawl report — {result.crawler} {result.site}" in report
    assert f"n_requests        {result.n_requests}" in report
    assert f"n_targets         {result.trace.n_targets}" in report
    rate = result.trace.n_targets / result.n_requests
    assert f"harvest_rate      {rate:.4f}" in report
    assert f"actions_created   {result.info['n_actions']}" in report
    assert "metrics" in report
    # deterministic: same events render the same text
    assert report == crawl_report(sink.events, crawler=result.crawler,
                                  site=result.site)


def test_cli_report_matches_result(instrumented, tmp_path, capsys):
    _, sink, _, result, _ = instrumented
    path = tmp_path / "run.jsonl"
    with JsonlSink(path, meta={"crawler": result.crawler,
                               "site": result.site}) as jsonl:
        for event in sink.events:
            jsonl.on_event(event)
    assert obs_main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"n_requests        {result.n_requests}" in out
    assert f"n_targets         {result.trace.n_targets}" in out


def test_cli_curves_matches_result(instrumented, tmp_path, capsys):
    _, sink, _, result, _ = instrumented
    path = tmp_path / "run.jsonl"
    with JsonlSink(path) as jsonl:
        for event in sink.events:
            jsonl.on_event(event)
    assert obs_main(["curves", str(path), "--every", "50"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0] == "step,targets,harvest_rate,regret"
    step, targets, rate, regret = lines[-1].split(",")
    assert int(step) == result.n_requests
    assert int(targets) == result.trace.n_targets
    assert float(rate) == pytest.approx(
        result.trace.n_targets / result.n_requests, abs=1e-6)
    assert int(regret) == result.n_requests - result.trace.n_targets


def test_cli_rejects_missing_file(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_curves_cap_regret_at_total_targets(instrumented):
    _, sink, _, result, _ = instrumented
    trace = trace_from_events(sink.events)
    steps, rates = harvest_rate_curve(trace)
    assert steps[-1] == result.n_requests
    assert rates[-1] == pytest.approx(
        result.trace.n_targets / result.n_requests)
    _, capped = regret_curve(trace, total_targets=result.trace.n_targets)
    _, uncapped = regret_curve(trace)
    assert capped[-1] <= uncapped[-1]
    assert uncapped[-1] == result.n_requests - result.trace.n_targets
    # with the ideal capped at the targets actually found, final regret is 0
    assert capped[-1] == 0


def test_environment_observer_instruments_baselines():
    """Env-level observers see every client, even observability-unaware
    baseline crawlers."""
    sink = MemorySink()
    env = CrawlEnvironment(load_paper_site(SITE, scale=SCALE), observer=sink)
    result = BFSCrawler().crawl(env, budget=100)
    assert sink.counts()["fetch"] == result.n_requests
    trace = trace_from_events(sink.events)
    assert trace.n_requests == result.n_requests
    assert trace.n_targets == result.trace.n_targets


def test_early_stopping_monitor_emits_event():
    sink = MemorySink()
    monitor = EarlyStoppingMonitor(window=1, threshold=0.5, decay=1.0,
                                   patience=2, observer=sink)
    assert not monitor.observe(1.0)   # slope 1.0 -> ramped up
    assert not monitor.observe(1.0)   # slope 0.0 -> 1 low window
    assert monitor.observe(1.0)       # 2 low windows -> trigger
    events = sink.of_kind("early_stop")
    assert len(events) == 1
    event = events[0]
    assert isinstance(event, EarlyStopTriggered)
    assert event.step == 3
    assert event.window == 1
    assert event.patience == 2
