"""Kill-and-resume byte-equivalence (the docs/checkpoint.md guarantee).

Stop a crawl at step k, resume it from the final checkpoint, and the
result must be byte-identical to a run that was never interrupted —
crawl fingerprint, JSONL event stream, ledger, and (for campaigns) the
merged report.  ``interrupt_at`` and a deterministic countdown flag
stand in for SIGTERM so the sweep needs no signals or subprocesses.
"""

import json

import pytest

from repro.campaign import CampaignSpec, SerialBackend, run_campaign
from repro.campaign.workers import ShardTask, run_shard
from repro.checkpoint import (
    CheckpointStore,
    CrawlCheckpointer,
    CrawlInterrupted,
    canonical_json,
)
from repro.core.crawler import SBConfig, sb_classifier
from repro.http.environment import CrawlEnvironment
from repro.webgraph.sites import load_paper_site

SITE = "be"
SCALE = 0.1
BUDGET = 120.0


def _fingerprint(result):
    """Everything observable about a crawl, as canonical bytes."""
    return canonical_json({
        "visited": sorted(result.visited),
        "targets": sorted(result.targets),
        "dead_letters": list(result.dead_letters),
        "stopped_early": result.stopped_early,
        "records": [
            [r.method, r.url, r.status, r.size, r.is_target]
            for r in result.trace.records
        ],
    })


def _sb_env():
    return CrawlEnvironment(load_paper_site(SITE, scale=SCALE))


def _sb_reference():
    return _fingerprint(
        sb_classifier(SBConfig(seed=3)).crawl(_sb_env(), budget=BUDGET)
    )


@pytest.mark.parametrize("k", [1, 5, 15, 33])
def test_sb_crawl_interrupt_resume_is_byte_identical(k, tmp_path):
    reference = _sb_reference()
    store = CheckpointStore(tmp_path)

    interrupted = CrawlCheckpointer(store=store, every=7, interrupt_at=k)
    with pytest.raises(CrawlInterrupted) as exc_info:
        sb_classifier(SBConfig(seed=3)).crawl(
            _sb_env(), budget=BUDGET, checkpoint=interrupted
        )
    assert exc_info.value.step == k

    resumed = CrawlCheckpointer(store=store, every=7)
    resumed.arm_resume(store.read_latest())
    result = sb_classifier(SBConfig(seed=3)).crawl(
        _sb_env(), budget=BUDGET, checkpoint=resumed
    )
    assert _fingerprint(result) == reference


def test_double_interrupt_then_resume(tmp_path):
    """Two kills at different depths, then a final resume: still
    byte-identical — restart-after-restart must not drift."""
    reference = _sb_reference()
    store = CheckpointStore(tmp_path)

    first = CrawlCheckpointer(store=store, every=5, interrupt_at=10)
    with pytest.raises(CrawlInterrupted):
        sb_classifier(SBConfig(seed=3)).crawl(
            _sb_env(), budget=BUDGET, checkpoint=first
        )
    second = CrawlCheckpointer(store=store, every=5, interrupt_at=25)
    second.arm_resume(store.read_latest())
    with pytest.raises(CrawlInterrupted):
        sb_classifier(SBConfig(seed=3)).crawl(
            _sb_env(), budget=BUDGET, checkpoint=second
        )
    final = CrawlCheckpointer(store=store, every=5)
    final.arm_resume(store.read_latest())
    result = sb_classifier(SBConfig(seed=3)).crawl(
        _sb_env(), budget=BUDGET, checkpoint=final
    )
    assert _fingerprint(result) == reference


def test_resume_does_not_duplicate_periodic_checkpoints(tmp_path):
    """The resume step was already saved by the interrupted run: the
    resumed run must not write a second checkpoint for it."""
    store = CheckpointStore(tmp_path)
    ckpt = CrawlCheckpointer(store=store, every=10, interrupt_at=30)
    with pytest.raises(CrawlInterrupted):
        sb_classifier(SBConfig(seed=3)).crawl(
            _sb_env(), budget=BUDGET, checkpoint=ckpt
        )
    resumed = CrawlCheckpointer(store=store, every=10, interrupt_at=31)
    resumed.arm_resume(store.read_latest())
    n_before = len(store.read_all())
    with pytest.raises(CrawlInterrupted):
        sb_classifier(SBConfig(seed=3)).crawl(
            _sb_env(), budget=BUDGET, checkpoint=resumed
        )
    steps = [entry.step for entry in store.read_all()]
    assert len(steps) == len(set(steps)), f"duplicate checkpoint steps: {steps}"
    assert len(store.read_all()) > 0 and n_before > 0


@pytest.mark.parametrize("crawler_name", ["BFS", "RANDOM"])
def test_baseline_crawl_interrupt_resume(crawler_name, tmp_path):
    from repro.baselines import BFSCrawler, RandomCrawler

    def run(checkpoint=None):
        crawler = (
            BFSCrawler() if crawler_name == "BFS" else RandomCrawler(seed=3)
        )
        return crawler.crawl(_sb_env(), budget=BUDGET, checkpoint=checkpoint)

    reference = _fingerprint(run())
    store = CheckpointStore(tmp_path)
    with pytest.raises(CrawlInterrupted):
        run(CrawlCheckpointer(store=store, every=6, interrupt_at=25))
    resumed = CrawlCheckpointer(store=store, every=6)
    resumed.arm_resume(store.read_latest())
    assert _fingerprint(run(resumed)) == reference


class CountdownFlag:
    """Deterministic ShutdownFlag stand-in: set after N is_set() calls."""

    def __init__(self, trip_after: int) -> None:
        self.remaining = trip_after

    def is_set(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0

    def set(self) -> None:
        self.remaining = 0


def _shard_task(tmp_path, resume=False):
    return ShardTask(
        shard_id=0, sites=("be", "cl"), crawler="SB-CLASSIFIER", seed=5,
        scale=SCALE, budget=BUDGET, trace_dir=str(tmp_path / "traces"),
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=15,
        resume=resume,
    )


def test_run_shard_interrupt_resume_is_byte_identical(tmp_path):
    (tmp_path / "traces").mkdir()
    reference_task = ShardTask(
        shard_id=0, sites=("be", "cl"), crawler="SB-CLASSIFIER", seed=5,
        scale=SCALE, budget=BUDGET,
        trace_dir=str(tmp_path / "ref-traces"),
    )
    (tmp_path / "ref-traces").mkdir()
    reference = run_shard(reference_task)

    interrupted = run_shard(
        _shard_task(tmp_path), shutdown=CountdownFlag(60)
    )
    assert interrupted.status == "interrupted"

    resumed = run_shard(_shard_task(tmp_path, resume=True))
    assert resumed.status == "completed"
    assert [s.site for s in resumed.sites] == [s.site for s in reference.sites]
    for site_resumed, site_reference in zip(resumed.sites, reference.sites):
        assert site_resumed == site_reference
    # the JSONL traces must also be byte-identical, with no duplicated
    # events from the interrupted attempt
    for name in ("be", "cl"):
        trace_name = f"{name}-SB-CLASSIFIER-s5.jsonl"
        resumed_trace = (tmp_path / "traces" / trace_name).read_bytes()
        reference_trace = (tmp_path / "ref-traces" / trace_name).read_bytes()
        assert resumed_trace == reference_trace, f"trace drift on {name}"


def _campaign_spec(trace_dir=None):
    return CampaignSpec(
        sites=("be", "cl", "cn"), crawler="SB-CLASSIFIER", seed=5,
        scale=SCALE, budget=BUDGET, n_shards=2, n_workers=2,
        trace_dir=trace_dir,
    )


def test_campaign_interrupt_resume_matches_uninterrupted_report(tmp_path):
    reference = run_campaign(_campaign_spec(), backend=SerialBackend())
    assert not reference.partial

    checkpoint_dir = str(tmp_path / "ckpt")
    flag = CountdownFlag(50)
    partial = run_campaign(
        _campaign_spec(), backend=SerialBackend(shutdown=flag),
        checkpoint_dir=checkpoint_dir, checkpoint_every=15,
    )
    assert partial.partial, "the countdown flag must interrupt mid-campaign"

    resumed = run_campaign(
        _campaign_spec(), backend=SerialBackend(),
        checkpoint_dir=checkpoint_dir, checkpoint_every=15, resume=True,
    )
    assert not resumed.partial
    assert resumed.to_json() == reference.to_json()


def test_checkpoint_params_do_not_change_the_report_digest(tmp_path):
    """Checkpointing disarmed vs armed: same digest — the config block
    must not leak checkpoint parameters into the canonical report."""
    plain = run_campaign(_campaign_spec(), backend=SerialBackend())
    checkpointed = run_campaign(
        _campaign_spec(), backend=SerialBackend(),
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=15,
    )
    assert checkpointed.to_json() == plain.to_json()


def test_crawler_without_checkpoint_support_still_resumes_shard(tmp_path):
    """FOCUSED has no frontier snapshot: an interrupted shard restarts
    the in-flight site from scratch but keeps completed sites — and the
    final outcome still matches the uninterrupted run."""
    def task(resume=False):
        return ShardTask(
            shard_id=0, sites=("be", "cl"), crawler="FOCUSED", seed=5,
            scale=SCALE, budget=BUDGET,
            checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=10,
            resume=resume,
        )

    reference = run_shard(
        ShardTask(shard_id=0, sites=("be", "cl"), crawler="FOCUSED",
                  seed=5, scale=SCALE, budget=BUDGET)
    )
    interrupted = run_shard(task(), shutdown=CountdownFlag(60))
    assert interrupted.status == "interrupted"
    resumed = run_shard(task(resume=True))
    assert resumed.status == "completed"
    assert resumed.sites == reference.sites


def test_trace_truncation_rejects_bad_inputs(tmp_path):
    from repro.obs.sinks import JsonlSink, truncate_events

    path = tmp_path / "t.jsonl"
    with pytest.raises((FileNotFoundError, ValueError)):
        truncate_events(path, 0)        # missing file

    from repro.obs.events import TargetFound

    with JsonlSink(path, meta={"site": SITE}) as sink:
        for n in range(4):
            sink.on_event(
                TargetFound(ordinal=n, url=f"u{n}", n_targets=n + 1)
            )
    with pytest.raises(ValueError):
        truncate_events(path, 9)        # more events than the file holds
    truncate_events(path, 2)
    lines = path.read_text().splitlines()
    assert len(lines) == 3              # header + 2 events


def test_jsonl_sink_append_mode_continues_event_stream(tmp_path):
    from repro.obs.events import TargetFound
    from repro.obs.sinks import JsonlSink

    path = tmp_path / "t.jsonl"
    with JsonlSink(path, meta={"site": SITE}) as sink:
        for n in range(3):
            sink.on_event(
                TargetFound(ordinal=n, url=f"u{n}", n_targets=n + 1)
            )
        snapshot = json.loads(canonical_json(sink.snapshot_state()))

    with JsonlSink(path, append=True) as sink:
        sink.restore_state(snapshot)    # counts match: no error
        sink.on_event(TargetFound(ordinal=3, url="u3", n_targets=4))
    assert len(path.read_text().splitlines()) == 5

    with JsonlSink(path, append=True) as sink:
        with pytest.raises(ValueError):
            sink.restore_state(snapshot)  # stale count must fail loudly
