"""Observability: metrics, structured crawl events, and trace replay.

A zero-dependency instrumentation layer for the crawl loop, built on
three pieces (contract: docs/observability.md):

* **events** — frozen :class:`CrawlEvent` dataclasses emitted at the
  instrumented sites (HTTP client, bandit loop, action space,
  classifier, early stopping); timestamps are request ordinals, never
  wall-clock time;
* **observers** — the pluggable :class:`Observer` protocol with a no-op
  default (:data:`NULL_OBSERVER`), so the uninstrumented hot path pays
  one attribute read per site;
* **sinks & replay** — :class:`MemorySink`, :class:`JsonlSink`, the
  :class:`MetricsObserver` fold into a :class:`MetricsRegistry`, and a
  deterministic text :func:`crawl_report`; ``python -m repro.obs``
  replays a recorded JSONL trace into per-step harvest-rate / regret
  curves.

Quickstart::

    from repro import CrawlEnvironment, SBConfig, load_paper_site, sb_classifier
    from repro.obs import MemorySink, crawl_report

    sink = MemorySink()
    env = CrawlEnvironment(load_paper_site("ju", scale=0.2))
    result = sb_classifier(SBConfig(seed=1, observer=sink)).crawl(env, budget=500)
    print(crawl_report(sink.events))
"""

from repro.obs.events import (
    EVENT_TYPES,
    ActionCreated,
    ActionSelected,
    CampaignMerged,
    ClassifierBatchTrained,
    CrawlEvent,
    EarlyStopTriggered,
    FaultInjected,
    FetchEvent,
    RequestAbandoned,
    RetryScheduled,
    ShardFinished,
    ShardStarted,
    TargetFound,
    event_from_dict,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
)
from repro.obs.observer import NULL_OBSERVER, MultiObserver, NullObserver, Observer
from repro.obs.report import (
    crawl_report,
    harvest_rate_curve,
    regret_curve,
    replay_metrics,
    trace_from_events,
)
from repro.obs.sinks import JsonlSink, MemorySink, read_events

__all__ = [
    # events
    "CrawlEvent",
    "FetchEvent",
    "ActionSelected",
    "ActionCreated",
    "ClassifierBatchTrained",
    "TargetFound",
    "EarlyStopTriggered",
    "FaultInjected",
    "RetryScheduled",
    "RequestAbandoned",
    "ShardStarted",
    "ShardFinished",
    "CampaignMerged",
    "EVENT_TYPES",
    "event_from_dict",
    # observer protocol
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "MultiObserver",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsObserver",
    # sinks & replay
    "MemorySink",
    "JsonlSink",
    "read_events",
    "crawl_report",
    "harvest_rate_curve",
    "regret_curve",
    "replay_metrics",
    "trace_from_events",
]
