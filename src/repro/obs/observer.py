"""The observer contract: how instrumented components publish events.

An *observer* is anything with an ``enabled`` flag and an
``on_event(event)`` method (structural :class:`Observer` protocol).
Instrumented components hold exactly one observer and guard every
emission site with ``if observer.enabled:`` — with the default
:data:`NULL_OBSERVER` the guard is a single attribute read, so the
uninstrumented hot path stays free (the <5 % regression budget of
``benchmarks/test_bench_components.py``).

The contract is documented in docs/observability.md; sinks that
implement it live in ``repro.obs.sinks`` and
``repro.obs.metrics.MetricsObserver``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.obs.events import CrawlEvent


@runtime_checkable
class Observer(Protocol):
    """Structural protocol every event consumer implements."""

    #: emission sites skip event construction entirely when False
    enabled: bool

    def on_event(self, event: CrawlEvent) -> None:
        """Receive one event.  Must not mutate it and must not raise —
        a failing observer would corrupt the crawl it watches."""
        ...


class NullObserver:
    """The default no-op observer: ``enabled`` is False, so guarded
    emission sites never even construct the event object."""

    enabled: bool = False

    def on_event(self, event: CrawlEvent) -> None:
        """Ignore the event (only reached by unguarded callers)."""


#: Shared no-op instance used as the default everywhere.
NULL_OBSERVER = NullObserver()


class MultiObserver:
    """Fan one event stream out to several observers.

    Disabled children are dropped at construction, and the composite is
    itself disabled when nothing remains — nesting MultiObservers keeps
    the zero-cost property intact.
    """

    def __init__(self, observers: list[Observer] | tuple[Observer, ...]) -> None:
        self.observers: tuple[Observer, ...] = tuple(
            o for o in observers if o.enabled
        )
        self.enabled = bool(self.observers)

    def on_event(self, event: CrawlEvent) -> None:
        for observer in self.observers:
            observer.on_event(event)
