"""Event sinks: in-memory capture and JSONL persistence.

The JSONL wire format (one header line, then one event per line) is
specified in docs/observability.md and mirrors
``repro.analysis.trace_io``:

* line 1 — header: ``{"format": 1, "stream": "repro.obs", ...meta}``;
* lines 2..n — events: ``{"e": "<kind>", ...fields}`` with compact
  separators, fields in dataclass declaration order.

Nothing here reads the clock: files contain only what the event stream
carries, so the same seed produces byte-identical trace files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import CrawlEvent, event_from_dict

#: JSONL format version written to (and demanded from) header lines.
FORMAT_VERSION = 1
#: Header ``stream`` tag distinguishing event traces from request traces.
STREAM_TAG = "repro.obs"


class MemorySink:
    """Keeps every event in a list; the default sink for tests and
    interactive inspection."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[CrawlEvent] = []

    def on_event(self, event: CrawlEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[CrawlEvent]:
        """Events whose wire tag equals ``kind`` (e.g. ``"fetch"``)."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event count per kind, sorted by kind for stable reporting."""
        tally: dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def clear(self) -> None:
        self.events.clear()

    def truncate_to(self, n_events: int) -> None:
        """Drop events past ``n_events`` (resume-from-checkpoint rewind)."""
        del self.events[n_events:]

    # -- checkpointing (repro.checkpoint) ----------------------------

    def snapshot_state(self) -> dict:
        return {"n_events": len(self.events)}

    def restore_state(self, state: dict) -> None:
        self.truncate_to(state["n_events"])


class JsonlSink:
    """Streams events to a JSONL file; use as a context manager (or call
    :meth:`close`) so the file is released before readers open it.

    Writes are **line-buffered**: every event line reaches the OS as
    soon as it is written, so a crawl that dies mid-run (e.g. under
    fault injection) still leaves a complete, parseable trace of every
    event emitted before the crash — no truncated trailing line.
    ``close()`` is idempotent and runs even when the ``with`` body
    raises; events sent after close fail loudly instead of vanishing.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path,
        meta: dict[str, object] | None = None,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        self.n_events = 0
        if append and self.path.exists() and self.path.stat().st_size > 0:
            # Resume mode: keep the existing header and events (the
            # caller has already rewound the file to the checkpoint with
            # :func:`truncate_events`) and continue the stream in place.
            with self.path.open("r", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                if header.get("format") != FORMAT_VERSION:
                    raise ValueError(
                        f"cannot append to {self.path}: unsupported "
                        f"format {header.get('format')!r}"
                    )
                self.n_events = sum(1 for line in handle if line.strip())
            # buffering=1 = line-buffered text mode: each "\n" flushes.
            self._handle = self.path.open("a", encoding="utf-8", buffering=1)
            return
        self._handle = self.path.open("w", encoding="utf-8", buffering=1)
        header = {"format": FORMAT_VERSION, "stream": STREAM_TAG}
        if meta:
            header.update(meta)
        self._handle.write(json.dumps(header, separators=(",", ":")) + "\n")

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def on_event(self, event: CrawlEvent) -> None:
        if self._handle.closed:
            raise ValueError(
                f"JsonlSink({self.path}) is closed; events emitted after "
                "close would be lost silently"
            )
        self._handle.write(
            json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        )
        self.n_events += 1

    def flush(self) -> None:
        """Push buffered bytes to the OS (a no-op under line buffering,
        kept for sinks opened on exotic streams)."""
        if not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- checkpointing (repro.checkpoint) ----------------------------

    def snapshot_state(self) -> dict:
        return {"n_events": self.n_events}

    def restore_state(self, state: dict) -> None:
        """Verify the reopened file already sits at the snapshot's event
        count (the caller rewinds with :func:`truncate_events` and
        reopens with ``append=True`` before restoring)."""
        if self.n_events != state["n_events"]:
            raise ValueError(
                f"trace {self.path} holds {self.n_events} events but the "
                f"checkpoint recorded {state['n_events']}: rewind it with "
                "truncate_events before resuming"
            )


def truncate_events(path: str | Path, n_events: int) -> None:
    """Rewind a JSONL event trace to its header plus first ``n_events``
    event lines (resume-from-checkpoint: drop events emitted after the
    snapshot so the resumed run can append without duplicates).

    Fails loudly if the file holds fewer than ``n_events`` events —
    that means the checkpoint and the trace drifted apart.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:  # repro: noqa[CONC005] rewinding this shard's own trace
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"empty event trace: {path}")
    header, events = lines[0], lines[1:]
    if json.loads(header).get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported event-trace format in {path}")
    if len(events) < n_events:
        raise ValueError(
            f"cannot rewind {path} to {n_events} events: "
            f"only {len(events)} present"
        )
    with path.open("w", encoding="utf-8") as handle:  # repro: noqa[CONC005] rewinding this shard's own trace
        handle.write(header)
        handle.writelines(events[:n_events])


def read_events(path: str | Path) -> tuple[dict[str, object], list[CrawlEvent]]:
    """Read a JSONL event trace back: ``(header_meta, events)``.

    Raises ``ValueError`` on an empty file, a wrong format version, or
    an unknown event kind — a truncated or foreign file fails loudly.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise ValueError(f"empty event trace: {path}")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported event-trace format: {header.get('format')!r}"
            )
        events = [
            event_from_dict(json.loads(line))
            for line in handle
            if line.strip()
        ]
    meta = {k: v for k, v in header.items() if k not in ("format", "stream")}
    return meta, events
