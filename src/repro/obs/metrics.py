"""Metrics: counters, gauges, fixed-bucket histograms, and the
event-to-metric fold.

A :class:`MetricsRegistry` is a flat, name-keyed collection of three
instrument kinds (the Prometheus core types, minus labels — one
instrument per name keeps rendering deterministic and the hot path
allocation-free).  :class:`MetricsObserver` is an
:class:`~repro.obs.observer.Observer` that folds the crawl-event
stream into a registry, implementing the metric catalogue documented
in docs/observability.md.

Rendering is deterministic: instruments sort by name, floats print
with a fixed format, and nothing reads the clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.events import (
    ActionCreated,
    ActionSelected,
    CampaignMerged,
    ClassifierBatchTrained,
    CrawlEvent,
    EarlyStopTriggered,
    FaultInjected,
    FetchEvent,
    RequestAbandoned,
    RetryScheduled,
    ShardFinished,
    ShardStarted,
    TargetFound,
)


def _fmt(value: float) -> str:
    """Fixed float rendering: integers stay integral, else 6 significant
    digits — stable across platforms."""
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return format(value, ".6g")


@dataclass
class Counter:
    """Monotonically increasing count (requests, errors, targets)."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def render(self) -> str:
        return f"counter   {self.name} {_fmt(self.value)}"


@dataclass
class Gauge:
    """Instantaneous level (frontier size, actions awake, accuracy)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def render(self) -> str:
        return f"gauge     {self.name} {_fmt(self.value)}"


@dataclass
class Histogram:
    """Fixed-bucket histogram: counts of observations ``v <= bound``.

    Buckets are per-bucket (not cumulative) counts over the given sorted
    upper bounds, plus an implicit ``+inf`` overflow bucket.  Fixed
    buckets keep observation O(#buckets) with zero allocation.
    """

    name: str
    buckets: tuple[float, ...] = ()
    help: str = ""
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        bounds = tuple(sorted(self.buckets))
        if bounds != tuple(self.buckets):
            raise ValueError(f"histogram {self.name}: buckets must be sorted")
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)  # + overflow

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.n += 1

    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def render(self) -> str:
        lines = [
            f"histogram {self.name} count={self.n} sum={_fmt(self.total)} "
            f"mean={_fmt(round(self.mean(), 6))}"
        ]
        for bound, count in zip(self.buckets, self.counts):
            lines.append(f"  le={_fmt(bound)} {count}")
        lines.append(f"  le=+inf {self.counts[-1]}")
        return "\n".join(lines)


class MetricsRegistry:
    """Name-keyed instruments with get-or-create accessors.

    Re-requesting a name returns the existing instrument; requesting an
    existing name as a different kind raises, so two components cannot
    silently shadow each other's series.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, buckets: tuple[float, ...], help: str = ""
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets=buckets, help=help)
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def as_dict(self) -> dict[str, float | dict]:
        """Scalar snapshot: counters/gauges map to their value,
        histograms to ``{count, sum, mean}``."""
        snapshot: dict[str, float | dict] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                snapshot[name] = {
                    "count": instrument.n,
                    "sum": instrument.total,
                    "mean": instrument.mean(),
                }
            else:
                snapshot[name] = instrument.value
        return snapshot

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry.

        The campaign engine merges per-shard registries into one
        campaign-level registry with this fold.  Semantics per kind:

        * counters — values add (a campaign counter is the sum of its
          shards');
        * gauges — values add: a shard-final gauge is a per-shard level
          (frontier remaining, actions awake), so the campaign level is
          their sum;
        * histograms — bucket counts, totals and observation counts add;
          both sides must declare identical bucket bounds.

        The fold is associative and commutative with the empty registry
        as identity (integer counts add exactly; float sums are folded
        in sorted-name order by the caller), and raises ``TypeError``
        when ``other`` carries a same-named instrument of a different
        kind — mirroring the get-or-create contract above.  Returns
        ``self`` so folds chain.
        """
        for name in other.names():
            theirs = other._instruments[name]
            if isinstance(theirs, Histogram):
                mine = self.histogram(name, theirs.buckets, theirs.help)
                if mine.buckets != theirs.buckets:
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds differ "
                        f"({mine.buckets} vs {theirs.buckets})"
                    )
                mine.counts = [
                    a + b for a, b in zip(mine.counts, theirs.counts)
                ]
                mine.total += theirs.total
                mine.n += theirs.n
            elif isinstance(theirs, Counter):
                self.counter(name, theirs.help).inc(theirs.value)
            else:
                mine = self.gauge(name, theirs.help)
                mine.set(mine.value + theirs.value)
        return self

    def render(self) -> str:
        """Deterministic text dump, instruments sorted by name."""
        return "\n".join(
            self._instruments[name].render() for name in self.names()
        )

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """Full instrument state (``as_dict`` is lossy for histograms)
        in registration order."""
        instruments = []
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                instruments.append([name, "histogram", {
                    "help": instrument.help,
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                    "total": instrument.total,
                    "n": instrument.n,
                }])
            elif isinstance(instrument, Counter):
                instruments.append([name, "counter", {
                    "help": instrument.help, "value": instrument.value,
                }])
            else:
                instruments.append([name, "gauge", {
                    "help": instrument.help, "value": instrument.value,
                }])
        return {"instruments": instruments}

    def restore_state(self, state: dict) -> None:
        """Restore values *into* existing instruments where names match
        (observers hold direct instrument references) and create the
        rest, preserving the snapshot's registration order."""
        for name, kind, payload in state["instruments"]:
            if kind == "histogram":
                instrument = self.histogram(
                    name, tuple(payload["buckets"]), payload["help"]
                )
                instrument.counts = list(payload["counts"])
                instrument.total = payload["total"]
                instrument.n = payload["n"]
            elif kind == "counter":
                self.counter(name, payload["help"]).value = payload["value"]
            else:
                self.gauge(name, payload["help"]).value = payload["value"]


# -- the event -> metric fold ----------------------------------------------

#: response-size buckets (bytes): 1 KB .. 10 MB
SIZE_BUCKETS: tuple[float, ...] = (1e3, 1e4, 1e5, 1e6, 1e7)
#: targets retrieved per bandit pull
REWARD_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0)
#: requests elapsed between consecutive targets ("latency" in simulated
#: steps — the politeness-delay-free analogue of wall-clock latency)
GAP_BUCKETS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)
#: simulated seconds waited before a retry (backoff + Retry-After)
RETRY_WAIT_BUCKETS: tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0)


class MetricsObserver:
    """Observer that folds crawl events into a :class:`MetricsRegistry`.

    The mapping (event -> instruments) is the metric catalogue of
    docs/observability.md; changing it there and here together is the
    contract.
    """

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._requests = r.counter("requests_total", "GET + HEAD requests issued")
        self._gets = r.counter("requests_get", "GET requests issued")
        self._heads = r.counter("requests_head", "HEAD requests issued")
        self._errors = r.counter("responses_error", "responses with status >= 400")
        self._redirects = r.counter("responses_redirect", "3xx responses")
        self._bytes = r.counter("bytes_total", "response bytes received")
        self._sizes = r.histogram(
            "response_size_bytes", SIZE_BUCKETS, "response size distribution"
        )
        self._targets = r.counter("targets_total", "target files retrieved")
        self._gaps = r.histogram(
            "target_gap_requests", GAP_BUCKETS,
            "requests between consecutive targets (simulated-step latency)",
        )
        self._steps = r.counter("steps_total", "crawl-loop iterations (pulls)")
        self._rewards = r.histogram(
            "reward_per_pull", REWARD_BUCKETS, "targets retrieved per pull"
        )
        self._frontier = r.gauge("frontier_size", "unvisited URLs in the frontier")
        self._awake = r.gauge("actions_awake", "actions with unvisited links")
        self._actions = r.gauge("actions_total", "actions created so far")
        self._batches = r.counter(
            "classifier_batches_trained", "online-classifier training batches"
        )
        self._preq = r.gauge(
            "classifier_prequential_accuracy", "cumulative test-then-train accuracy"
        )
        self._recent = r.gauge(
            "classifier_recent_accuracy", "accuracy over the last <=500 labels"
        )
        self._early = r.counter("early_stops", "early-stopping rule firings")
        self._faults = r.counter(
            "faults_injected", "requests tampered with by the fault layer"
        )
        self._retries = r.counter(
            "retries_total", "retry attempts scheduled by the retry policy"
        )
        self._abandoned = r.counter(
            "requests_abandoned", "requests given up after exhausting retries"
        )
        self._retry_waits = r.histogram(
            "retry_wait_seconds", RETRY_WAIT_BUCKETS,
            "simulated backoff seconds before each retry",
        )
        self._shards_started = r.counter(
            "shards_started", "campaign shards dispatched to workers"
        )
        self._shards_finished = r.counter(
            "shards_finished", "campaign shards that completed their crawls"
        )
        self._campaigns = r.counter(
            "campaigns_merged", "campaign reports merged from shard outputs"
        )
        self._last_target_ordinal = 0

    def on_event(self, event: CrawlEvent) -> None:
        if isinstance(event, FetchEvent):
            self._requests.inc()
            if event.method == "GET":
                self._gets.inc()
            elif event.method == "HEAD":
                self._heads.inc()
            if event.status >= 400:
                self._errors.inc()
            elif 300 <= event.status < 400:
                self._redirects.inc()
            self._bytes.inc(event.size)
            self._sizes.observe(event.size)
            if event.is_target:
                self._targets.inc()
                self._gaps.observe(event.ordinal - self._last_target_ordinal)
                self._last_target_ordinal = event.ordinal
        elif isinstance(event, ActionSelected):
            self._steps.inc()
            self._rewards.observe(event.reward)
            self._frontier.set(event.frontier_size)
            self._awake.set(event.n_awake)
        elif isinstance(event, ActionCreated):
            self._actions.set(event.n_actions)
        elif isinstance(event, ClassifierBatchTrained):
            self._batches.inc()
            self._preq.set(event.prequential_accuracy)
            self._recent.set(event.recent_accuracy)
        elif isinstance(event, TargetFound):
            pass  # counted from the confirming FetchEvent
        elif isinstance(event, EarlyStopTriggered):
            self._early.inc()
        elif isinstance(event, FaultInjected):
            self._faults.inc()
        elif isinstance(event, RetryScheduled):
            self._retries.inc()
            self._retry_waits.observe(event.wait_seconds)
        elif isinstance(event, RequestAbandoned):
            self._abandoned.inc()
        elif isinstance(event, ShardStarted):
            self._shards_started.inc()
        elif isinstance(event, ShardFinished):
            if event.status == "completed":
                self._shards_finished.inc()
        elif isinstance(event, CampaignMerged):
            self._campaigns.inc()

    def harvest_rate(self) -> float:
        """Targets per request so far (0.0 before the first request)."""
        requests = self._requests.value
        if requests <= 0 or math.isinf(requests):
            return 0.0
        return self._targets.value / requests

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        return {
            "registry": self.registry.snapshot_state(),
            "last_target_ordinal": self._last_target_ordinal,
        }

    def restore_state(self, state: dict) -> None:
        self.registry.restore_state(state["registry"])
        self._last_target_ordinal = state["last_target_ordinal"]
