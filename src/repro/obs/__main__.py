"""``python -m repro.obs`` — replay recorded event traces.

Subcommands::

    python -m repro.obs report trace.jsonl           # deterministic text report
    python -m repro.obs curves trace.jsonl           # per-step harvest/regret CSV
    python -m repro.obs curves trace.jsonl --every 50 --total-targets 120

Exit codes: 0 success, 2 usage error (missing/unreadable/invalid file),
mirroring ``python -m repro.lint``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.metrics import targets_vs_requests_curve
from repro.obs.report import (
    crawl_report,
    harvest_rate_curve,
    regret_curve,
    trace_from_events,
)
from repro.obs.sinks import read_events


def _load(path: str):
    try:
        return read_events(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro.obs: cannot read {path!r}: {error}")


def _cmd_report(args: argparse.Namespace) -> int:
    meta, events = _load(args.trace)
    print(
        crawl_report(
            events,
            crawler=str(meta.get("crawler", "")),
            site=str(meta.get("site", "")),
        ),
        end="",
    )
    return 0


def _cmd_curves(args: argparse.Namespace) -> int:
    _, events = _load(args.trace)
    trace = trace_from_events(events)
    steps, rates = harvest_rate_curve(trace)
    _, regrets = regret_curve(trace, total_targets=args.total_targets)
    print("step,targets,harvest_rate,regret")
    _, cumulative = targets_vs_requests_curve(trace)
    for i in range(0, len(steps), max(1, args.every)):
        print(f"{steps[i]},{int(cumulative[i])},{rates[i]:.6f},{regrets[i]}")
    if steps and (len(steps) - 1) % max(1, args.every) != 0:
        i = len(steps) - 1  # always include the final step
        print(f"{steps[i]},{int(cumulative[i])},{rates[i]:.6f},{regrets[i]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Replay a recorded crawl-event trace (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="deterministic text crawl report")
    report.add_argument("trace", help="JSONL event trace written by JsonlSink")
    report.set_defaults(func=_cmd_report)

    curves = sub.add_parser(
        "curves", help="per-step harvest-rate / regret curves as CSV"
    )
    curves.add_argument("trace", help="JSONL event trace written by JsonlSink")
    curves.add_argument(
        "--every", type=int, default=1,
        help="emit every Nth step (default: every step)",
    )
    curves.add_argument(
        "--total-targets", type=int, default=None,
        help="site's total target count, to cap the OMNISCIENT ideal",
    )
    curves.set_defaults(func=_cmd_curves)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as error:
        if isinstance(error.code, str):
            print(error.code, file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
