"""Structured crawl events: the observable record of one crawl.

Every instrumented component emits frozen :class:`CrawlEvent`
dataclasses through an :class:`~repro.obs.observer.Observer`.  The
stream is *deterministic*: event timestamps are request ordinals (the
1-based position in the crawler's HTTP ledger) or crawl-step counters,
never wall-clock time, so the same seed yields a byte-identical event
stream — the property the ``repro.lint`` DET rules protect.

The full schema — one row per event type, with fields and emission
site — is the contract table in docs/observability.md, enforced by
``tests/test_docs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar


@dataclass(frozen=True)
class CrawlEvent:
    """Base class of all observable crawl events.

    Subclasses declare a stable ``kind`` tag used by the JSONL wire
    format (``{"e": "<kind>", ...fields}``).
    """

    #: stable wire-format tag; subclasses must override
    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-serialisable form: ``{"e": kind, **fields}``."""
        payload: dict[str, Any] = {"e": self.kind}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload


@dataclass(frozen=True)
class FetchEvent(CrawlEvent):
    """One HTTP request issued (GET or HEAD).

    Emitted by ``HttpClient._record`` — the same site that feeds the
    :class:`~repro.analysis.trace.CrawlTrace`, so the FetchEvent stream
    reconstructs the trace exactly (see ``repro.obs.report``).
    """

    kind: ClassVar[str] = "fetch"

    ordinal: int       # 1-based request number (ledger position)
    method: str        # "GET" or "HEAD"
    url: str
    status: int
    size: int          # bytes received
    is_target: bool    # a newly retrieved target file


@dataclass(frozen=True)
class ActionSelected(CrawlEvent):
    """One crawl-loop iteration: the bandit's pull and its outcome.

    Emitted by ``SBCrawler.crawl`` after the selected page (plus any
    redirect / immediate-target chain) has been processed.  ``action_id``
    is ``-1`` while no action exists yet (uniform frontier draw);
    ``reward`` is the number of targets retrieved by this pull — the
    quantity fed to ``SleepingBandit.record_reward``.
    """

    kind: ClassVar[str] = "action_selected"

    step: int          # pages fetched by the crawler so far (crawl step t)
    action_id: int     # chosen arm, or -1 for the pre-action phase
    score: float       # bandit score of the chosen arm (0.0 when random)
    n_awake: int       # awake actions at selection time
    frontier_size: int # frontier URLs remaining after the pop
    url: str           # the URL drawn from the action's pool
    reward: int        # targets retrieved by this pull


@dataclass(frozen=True)
class ActionCreated(CrawlEvent):
    """A new action (tag-path cluster) entered the action space.

    Emitted by ``SBCrawler`` when ``ActionSpace.assign`` mints a fresh
    cluster (Algorithm 1's "create singleton" branch).
    """

    kind: ClassVar[str] = "action_created"

    action_id: int
    tag_path: str      # the tag path that seeded the cluster
    n_actions: int     # total actions after creation
    step: int          # crawl step at creation time


@dataclass(frozen=True)
class ClassifierBatchTrained(CrawlEvent):
    """The online URL classifier completed one ``partial_fit`` batch.

    Emitted by ``OnlineUrlClassifier.add_labeled`` (Algorithm 2's
    training trigger).  Accuracies are prequential (test-then-train),
    0.0 until the model has made its first evaluated prediction.
    """

    kind: ClassVar[str] = "classifier_batch_trained"

    n_batches: int              # batches trained so far (this one included)
    n_examples: int             # fresh labelled URLs in this batch
    prequential_accuracy: float # cumulative test-then-train accuracy
    recent_accuracy: float      # accuracy over the last <=500 labels


@dataclass(frozen=True)
class TargetFound(CrawlEvent):
    """A target file was retrieved and counted.

    Emitted by ``SBCrawler._crawl_next_page`` when a GET response's
    MIME type confirms a target.  ``ordinal`` matches the
    :class:`FetchEvent` of the confirming request.
    """

    kind: ClassVar[str] = "target_found"

    ordinal: int       # request ordinal of the confirming GET
    url: str
    n_targets: int     # distinct targets retrieved so far (this one included)


@dataclass(frozen=True)
class EarlyStopTriggered(CrawlEvent):
    """The Sec. 4.8 early-stopping rule fired.

    Emitted by ``EarlyStoppingMonitor.observe`` at the step where the
    discovery-slope EMA stayed below the threshold for ``patience``
    consecutive windows.
    """

    kind: ClassVar[str] = "early_stop"

    step: int          # monitor iteration at which the rule fired
    ema: float         # the EMA value that triggered the stop
    window: int        # nu
    patience: int      # kappa


@dataclass(frozen=True)
class FaultInjected(CrawlEvent):
    """The fault layer tampered with one request.

    Emitted by ``HttpClient._record`` when a response carries a
    ``fault`` tag (set by :class:`~repro.http.faults.FaultyServer`,
    including the synthetic timeout response).  ``ordinal`` matches the
    :class:`FetchEvent` of the faulted request.
    """

    kind: ClassVar[str] = "fault_injected"

    ordinal: int       # request ordinal of the faulted request
    url: str
    fault: str         # fault kind (repro.http.faults.FAULT_KINDS)
    status: int        # resulting status (0 never occurs; 598 = timeout)


@dataclass(frozen=True)
class RetryScheduled(CrawlEvent):
    """The retry policy decided to re-issue a failed request.

    Emitted by ``HttpClient`` between the failed attempt and its retry.
    ``wait_seconds`` is the simulated backoff (jittered exponential,
    raised to any honoured ``Retry-After``) charged to the ledger.
    """

    kind: ClassVar[str] = "retry_scheduled"

    ordinal: int       # request ordinal of the failed attempt
    url: str
    attempt: int       # 1-based attempt number that just failed
    wait_seconds: float
    reason: str        # "status_429", "timeout", "truncated", ...


@dataclass(frozen=True)
class RequestAbandoned(CrawlEvent):
    """Retries were exhausted; the request stays failed.

    Emitted by ``HttpClient`` after the last transient failure of a
    request whose retry policy ran out of attempts (or retry budget).
    The crawler reacts by requeueing the URL or dead-lettering it.
    """

    kind: ClassVar[str] = "request_abandoned"

    ordinal: int       # request ordinal of the final failed attempt
    url: str
    attempts: int      # total attempts made (first try + retries)
    reason: str        # classification of the final failure


@dataclass(frozen=True)
class ShardStarted(CrawlEvent):
    """A campaign shard was dispatched to a worker.

    Emitted by ``CampaignEngine`` for every shard, in virtual-clock
    dispatch order.  Campaign events are a *deterministic record*: the
    engine replays them after all shards are collected, so serial and
    multiprocessing backends produce byte-identical campaign streams
    (docs/campaign.md, "Determinism guarantee").  ``virtual_start`` is
    the shard's start time on the simulated politeness clock — never
    wall-clock.
    """

    kind: ClassVar[str] = "shard_started"

    shard_id: int        # dense shard index (0-based)
    n_sites: int         # sites assigned to this shard
    sites: str           # comma-joined site names, sorted
    virtual_start: float # seconds on the virtual politeness clock


@dataclass(frozen=True)
class ShardFinished(CrawlEvent):
    """A campaign shard's crawls completed (or were interrupted).

    Emitted by ``CampaignEngine`` after :class:`ShardStarted`, same
    deterministic replay ordering.  ``status`` is ``"completed"`` or
    ``"interrupted"`` (graceful-shutdown partial shard).
    """

    kind: ClassVar[str] = "shard_finished"

    shard_id: int
    n_requests: int       # requests issued across the shard's sites
    n_targets: int        # targets retrieved across the shard's sites
    virtual_finish: float # shard finish time on the virtual clock
    status: str           # "completed" | "interrupted"


@dataclass(frozen=True)
class CampaignMerged(CrawlEvent):
    """Per-shard outputs were folded into one campaign report.

    Emitted by ``CampaignEngine`` once per campaign, after the last
    :class:`ShardFinished`.  ``digest`` is the report's SHA-256 — the
    value the backend-equivalence gate compares.
    """

    kind: ClassVar[str] = "campaign_merged"

    n_shards: int
    n_sites: int
    n_requests: int        # merged request count (campaign ledger)
    n_targets: int         # merged distinct-target count
    makespan_seconds: float  # virtual campaign makespan
    digest: str            # SHA-256 of the canonical report


#: Wire-format registry: kind tag -> event class.
EVENT_TYPES: dict[str, type[CrawlEvent]] = {
    cls.kind: cls
    for cls in (
        FetchEvent,
        ActionSelected,
        ActionCreated,
        ClassifierBatchTrained,
        TargetFound,
        EarlyStopTriggered,
        FaultInjected,
        RetryScheduled,
        RequestAbandoned,
        ShardStarted,
        ShardFinished,
        CampaignMerged,
    )
}


def event_from_dict(payload: dict[str, Any]) -> CrawlEvent:
    """Inverse of :meth:`CrawlEvent.to_dict`; raises on unknown kinds."""
    kind = payload.get("e")
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event kind: {kind!r}")
    kwargs = {k: v for k, v in payload.items() if k != "e"}
    return cls(**kwargs)
