"""Deterministic crawl reports and curves from an event stream.

The FetchEvent stream carries exactly the information of a
:class:`~repro.analysis.trace.CrawlTrace` (same emission site), so any
replay of a recorded event trace reconstructs the run's request-level
aggregates *exactly*: ``n_requests``, ``n_targets`` and the per-step
harvest-rate curve all match the originating ``CrawlResult``.  The
curves reuse the existing ``repro.analysis`` machinery
(:func:`~repro.analysis.metrics.targets_vs_requests_curve`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.metrics import targets_vs_requests_curve
from repro.analysis.trace import CrawlRecord, CrawlTrace
from repro.obs.events import (
    ActionCreated,
    ClassifierBatchTrained,
    CrawlEvent,
    EarlyStopTriggered,
    FetchEvent,
    TargetFound,
)
from repro.obs.metrics import MetricsObserver, MetricsRegistry


def trace_from_events(
    events: Iterable[CrawlEvent], crawler: str = "", site: str = ""
) -> CrawlTrace:
    """Rebuild the request trace from the FetchEvents of a stream."""
    trace = CrawlTrace(crawler=crawler, site=site)
    for event in events:
        if isinstance(event, FetchEvent):
            trace.append(
                CrawlRecord(
                    method=event.method,
                    url=event.url,
                    status=event.status,
                    size=event.size,
                    is_target=event.is_target,
                )
            )
    return trace


def harvest_rate_curve(trace: CrawlTrace) -> tuple[list[int], list[float]]:
    """Per-step harvest rate: cumulative targets / requests issued.

    The per-step twin of the paper's Figure 4 left panels and of the
    harvest-rate curves used by the RL-crawler literature (PAPERS.md).
    """
    requests, cumulative = targets_vs_requests_curve(trace)
    steps = [int(x) for x in requests]
    rates = [float(c) / s for s, c in zip(steps, cumulative)]
    return steps, rates


def regret_curve(
    trace: CrawlTrace, total_targets: int | None = None
) -> tuple[list[int], list[int]]:
    """Per-step regret against the OMNISCIENT upper bound.

    OMNISCIENT retrieves one target per request until the site is
    exhausted, so the ideal cumulative count at step t is
    ``min(t, total_targets)`` (just ``t`` when the total is unknown);
    regret is ideal minus achieved.
    """
    requests, cumulative = targets_vs_requests_curve(trace)
    steps = [int(x) for x in requests]
    regrets = []
    for step, found in zip(steps, cumulative):
        ideal = step if total_targets is None else min(step, total_targets)
        regrets.append(int(ideal) - int(found))
    return steps, regrets


def replay_metrics(events: Iterable[CrawlEvent]) -> MetricsRegistry:
    """Fold a recorded event stream into a fresh metrics registry."""
    observer = MetricsObserver()
    for event in events:
        observer.on_event(event)
    return observer.registry


def _checkpoints(n: int, k: int = 10) -> list[int]:
    """Up to ``k`` evenly spaced 1-based indices ending at ``n``."""
    if n <= 0:
        return []
    points = sorted({max(1, round(i * n / k)) for i in range(1, k + 1)})
    return points


def crawl_report(
    events: Sequence[CrawlEvent],
    crawler: str = "",
    site: str = "",
) -> str:
    """Render a deterministic text report of one recorded crawl.

    Sections: run totals, the harvest-rate curve at ten checkpoints,
    and the full metric catalogue (the same numbers a live
    :class:`~repro.obs.metrics.MetricsObserver` would have collected).
    """
    trace = trace_from_events(events, crawler=crawler, site=site)
    registry = replay_metrics(events)
    n_actions = 0
    n_batches = 0
    early_stop: EarlyStopTriggered | None = None
    n_targets_found = 0
    last_accuracy = 0.0
    for event in events:
        if isinstance(event, ActionCreated):
            n_actions = max(n_actions, event.n_actions)
        elif isinstance(event, ClassifierBatchTrained):
            n_batches = event.n_batches
            last_accuracy = event.prequential_accuracy
        elif isinstance(event, TargetFound):
            n_targets_found = max(n_targets_found, event.n_targets)
        elif isinstance(event, EarlyStopTriggered):
            early_stop = event

    lines: list[str] = []
    title = "crawl report"
    label = " ".join(part for part in (crawler, site) if part)
    if label:
        title += f" — {label}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append("")
    lines.append(f"n_requests        {trace.n_requests}")
    lines.append(f"n_targets         {trace.n_targets}")
    lines.append(f"targets_distinct  {n_targets_found}")
    lines.append(f"bytes_total       {trace.total_bytes}")
    lines.append(f"target_bytes      {trace.target_bytes}")
    rate = trace.n_targets / trace.n_requests if trace.n_requests else 0.0
    lines.append(f"harvest_rate      {rate:.4f}")
    lines.append(f"actions_created   {n_actions}")
    lines.append(f"classifier_batches {n_batches}")
    lines.append(f"classifier_prequential_accuracy {last_accuracy:.4f}")
    if early_stop is not None:
        lines.append(
            f"early_stop        step={early_stop.step} ema={early_stop.ema:.4f}"
        )
    else:
        lines.append("early_stop        -")
    lines.append("")
    lines.append("harvest-rate curve (requests : targets : rate)")
    steps, rates = harvest_rate_curve(trace)
    _, cumulative = targets_vs_requests_curve(trace)
    for index in _checkpoints(len(steps)):
        i = index - 1
        lines.append(
            f"  {steps[i]:>8d} : {int(cumulative[i]):>6d} : {rates[i]:.4f}"
        )
    if not steps:
        lines.append("  (no requests recorded)")
    lines.append("")
    lines.append("metrics")
    lines.append(registry.render())
    return "\n".join(lines) + "\n"
