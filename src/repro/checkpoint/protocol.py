"""The ``Checkpointable`` protocol: snapshot/restore for crawl state.

Every stateful component that participates in durable checkpoints —
frontier, bandits, classifier and its models, HNSW index, tag-path
vectorizer, early-stopping monitor, cost ledger, HTTP client, metrics
— implements the same two methods.  The names avoid ``snapshot()``
because :meth:`repro.http.ledger.CostLedger.snapshot` already means
"defensive copy".

Contract (enforced by the hypothesis round-trip tests):

* ``snapshot_state`` returns a JSON-canonicalizable dict (see
  :mod:`repro.checkpoint.codec`) and does not mutate the component;
* ``restore_state(snapshot_state())`` on a freshly *constructed*
  component of the same configuration makes it behaviourally
  indistinguishable from the original — every subsequent random draw,
  float accumulation and iteration order matches bit for bit;
* ``snapshot → restore → snapshot`` is byte-identical.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Checkpointable(Protocol):
    """Structural interface for components that can round-trip their
    mutable state through a canonical-JSON payload."""

    def snapshot_state(self) -> dict:
        """Return this component's mutable state as a canonical payload."""
        ...

    def restore_state(self, state: dict) -> None:
        """Overwrite this component's mutable state from a payload
        produced by :meth:`snapshot_state` on an identically-configured
        instance."""
        ...
