"""Atomic, versioned on-disk checkpoint store.

Layout: one subdirectory per checkpoint, named by a monotonically
increasing sequence number::

    <store>/ckpt-00000001/state.json      canonical-JSON payload
    <store>/ckpt-00000001/manifest.json   schema version, step, SHA-256

Both files are written to a temp name and published with
``os.replace``, and the manifest is written *last*: a torn write leaves
either no manifest or a digest mismatch, the loader detects it and the
previous checkpoint wins.  Nothing in a checkpoint references wall
clock or absolute paths, so stores relocate freely.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.checkpoint.codec import SCHEMA_VERSION, canonical_json, payload_digest

#: keys every manifest.json carries (doc-gated in docs/checkpoint.md)
MANIFEST_FIELDS = ("schema_version", "seq", "step", "digest")

_CKPT_PREFIX = "ckpt-"


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures (corruption, schema drift,
    payload/configuration mismatches)."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint directory failed validation: missing or truncated
    manifest, digest mismatch, or unparsable state file."""


@dataclass(frozen=True)
class LoadedCheckpoint:
    """A validated checkpoint, plus provenance for diagnostics."""

    payload: dict
    seq: int
    step: int
    path: Path
    #: names of newer checkpoint dirs that failed validation and were
    #: skipped before this one validated (fail-loud breadcrumb)
    corrupt_skipped: tuple[str, ...] = field(default=())


def _write_atomic(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` via temp file + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)  # repro: noqa[CONC005] checkpoint store is the one sanctioned io surface; paths are per-shard private
    os.replace(tmp, path)  # repro: noqa[CONC005] atomic publish of a per-shard private file


class CheckpointStore:
    """Durable sequence of checkpoints under one directory.

    The write/read surface is deliberately tiny and fail-loud:
    :meth:`write_checkpoint` publishes atomically, :meth:`read_latest`
    validates digests and falls back past torn writes, and
    :meth:`prune_old` bounds disk growth while always keeping a
    fallback generation.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # -- writing -----------------------------------------------------

    def write_checkpoint(self, payload: dict, step: int = 0) -> Path:
        """Atomically publish ``payload`` as the next checkpoint and
        return its directory."""
        self.directory.mkdir(parents=True, exist_ok=True)  # repro: noqa[CONC005] per-shard private checkpoint dir
        seq = self._next_seq()
        target = self.directory / f"{_CKPT_PREFIX}{seq:08d}"
        target.mkdir(exist_ok=True)  # repro: noqa[CONC005] per-shard private checkpoint dir
        text = canonical_json(payload) + "\n"
        _write_atomic(target / "state.json", text)
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "seq": seq,
            "step": step,
            "digest": payload_digest(payload),
        }
        # manifest last: its presence certifies a complete state file
        _write_atomic(target / "manifest.json", canonical_json(manifest) + "\n")
        return target

    def _next_seq(self) -> int:
        existing = [seq for seq, _ in self._entries()]
        return (max(existing) + 1) if existing else 1

    # -- reading -----------------------------------------------------

    def _entries(self) -> list[tuple[int, Path]]:
        """(seq, dir) pairs, ascending, for every checkpoint-shaped dir."""
        if not self.directory.is_dir():
            return []
        entries = []
        for child in self.directory.iterdir():
            name = child.name
            if child.is_dir() and name.startswith(_CKPT_PREFIX):
                suffix = name[len(_CKPT_PREFIX):]
                if suffix.isdigit():
                    entries.append((int(suffix), child))
        return sorted(entries)

    def _load_dir(self, path: Path) -> tuple[dict, dict]:
        """Validate one checkpoint dir; raise CorruptCheckpointError on
        any defect (missing file, bad JSON, schema drift, digest
        mismatch)."""
        try:
            manifest = json.loads((path / "manifest.json").read_text())
            state_text = (path / "state.json").read_text()
        except (OSError, ValueError) as exc:
            raise CorruptCheckpointError(
                f"unreadable checkpoint {path.name}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or any(
            key not in manifest for key in MANIFEST_FIELDS
        ):
            raise CorruptCheckpointError(
                f"truncated manifest in {path.name}: need {MANIFEST_FIELDS}"
            )
        if manifest["schema_version"] != SCHEMA_VERSION:
            raise CorruptCheckpointError(
                f"checkpoint {path.name} has schema_version "
                f"{manifest['schema_version']!r}, expected {SCHEMA_VERSION}"
            )
        try:
            payload = json.loads(state_text)
        except ValueError as exc:
            raise CorruptCheckpointError(
                f"unparsable state in {path.name}: {exc}"
            ) from exc
        if payload_digest(payload) != manifest["digest"]:
            raise CorruptCheckpointError(
                f"digest mismatch in {path.name}: state.json does not "
                f"match its manifest (torn write?)"
            )
        return payload, manifest

    def read_latest(self, kind: str | None = None) -> LoadedCheckpoint | None:
        """Newest valid checkpoint, or ``None`` if the store is empty.

        Corrupt (torn) newer checkpoints are skipped — the previous
        valid one wins — and their names are reported in
        ``corrupt_skipped``.  If checkpoints exist but *none* validates,
        raises :class:`CorruptCheckpointError` instead of silently
        pretending the store is empty.  ``kind`` filters on the
        payload's ``"kind"`` field (valid checkpoints of another kind
        are passed over, not treated as corruption).
        """
        skipped: list[str] = []
        saw_any = False
        for seq, path in reversed(self._entries()):
            saw_any = True
            try:
                payload, manifest = self._load_dir(path)
            except CorruptCheckpointError:
                skipped.append(path.name)
                continue
            if kind is not None and payload.get("kind") != kind:
                continue
            return LoadedCheckpoint(
                payload=payload,
                seq=manifest["seq"],
                step=manifest["step"],
                path=path,
                corrupt_skipped=tuple(skipped),
            )
        if saw_any and skipped and kind is None:
            raise CorruptCheckpointError(
                f"no valid checkpoint in {self.directory.name}: all of "
                f"{skipped} failed validation"
            )
        return None

    def read_all(self, kind: str | None = None) -> list[LoadedCheckpoint]:
        """Every valid checkpoint, ascending by sequence number.

        Corrupt entries are skipped silently here (callers wanting the
        fail-loud contract use :meth:`read_latest`); ``kind`` filters on
        the payload's ``"kind"`` field.
        """
        loaded: list[LoadedCheckpoint] = []
        for seq, path in self._entries():
            try:
                payload, manifest = self._load_dir(path)
            except CorruptCheckpointError:
                continue
            if kind is not None and payload.get("kind") != kind:
                continue
            loaded.append(LoadedCheckpoint(
                payload=payload,
                seq=manifest["seq"],
                step=manifest["step"],
                path=path,
            ))
        return loaded

    # -- maintenance -------------------------------------------------

    def prune_old(self, keep: int = 2) -> int:
        """Delete all but the ``keep`` newest checkpoints (``keep >= 2``
        preserves the previous-generation fallback); returns how many
        were removed."""
        if keep < 1:
            raise ValueError("prune_old needs keep >= 1")
        entries = self._entries()
        removed = 0
        for _seq, path in entries[:-keep] if keep else entries:
            shutil.rmtree(path)  # repro: noqa[CONC005] per-shard private checkpoint dir
            removed += 1
        return removed
