"""Checkpoint scheduling and graceful interruption.

:class:`CrawlCheckpointer` is the object a crawl loop talks to: once
per iteration it calls :meth:`CrawlCheckpointer.tick` with a payload
builder, and the checkpointer decides whether to save (every ``every``
iterations), interrupt (shutdown flag set, or the deterministic
``interrupt_at`` test hook reached — final checkpoint written first,
then :class:`CrawlInterrupted` raised), or do nothing.  Disarmed
(``checkpoint=None`` in the crawl loop) the whole feature costs one
``if`` per iteration — the clean path stays byte-identical.

Shutdown flags are plain instances passed explicitly down the call
chain (CLI → backend → ``run_shard`` → checkpointer); there is no
module-level flag, so worker processes and tests never share hidden
state.  :func:`install_signal_handlers` wires SIGINT/SIGTERM to a flag
in the CLI process only.
"""

from __future__ import annotations

import signal
from typing import Callable

from repro.checkpoint.store import CheckpointStore, LoadedCheckpoint


class CrawlInterrupted(RuntimeError):
    """Raised by :meth:`CrawlCheckpointer.tick` after the final
    checkpoint of an interrupted crawl has been written."""

    def __init__(self, step: int, checkpoint_path=None) -> None:
        super().__init__(f"crawl interrupted at step {step}")
        self.step = step
        self.checkpoint_path = checkpoint_path


class ShutdownFlag:
    """A latching one-way flag; ``set()`` is idempotent and safe to
    call from a signal handler (a single attribute store)."""

    __slots__ = ("_is_set",)

    def __init__(self) -> None:
        self._is_set = False

    def set(self) -> None:
        self._is_set = True

    def is_set(self) -> bool:
        return self._is_set


def install_signal_handlers(
    flag: ShutdownFlag, raise_keyboard_interrupt: bool = False
) -> Callable[[], None]:
    """Route SIGINT and SIGTERM to ``flag``; returns an undo function.

    With ``raise_keyboard_interrupt`` the handler also raises
    ``KeyboardInterrupt`` — needed when the main thread is blocked in a
    multiprocessing pool collect rather than a crawl loop that polls
    the flag.
    """

    def _handler(signum, frame):  # pragma: no cover - exercised via CI job
        flag.set()
        if raise_keyboard_interrupt:
            raise KeyboardInterrupt

    previous = {
        signum: signal.signal(signum, _handler)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }

    def _restore() -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return _restore


class CrawlCheckpointer:
    """Drives periodic checkpoints and interruption for one crawl.

    Parameters
    ----------
    store:
        Destination :class:`CheckpointStore`, or ``None`` to capture
        the final payload in memory only (``last_payload`` — the bench
        and unit tests use this to reach a mid-crawl state without
        disk).
    every:
        Save a checkpoint every ``every`` loop iterations (0 disables
        periodic saves; interrupt checkpoints still happen).
    flag:
        Shutdown flag polled at each tick (set by a signal handler).
    interrupt_at:
        Deterministic test hook: behave exactly as if the flag had been
        set when the step counter reaches this value.
    extras:
        Named :class:`~repro.checkpoint.protocol.Checkpointable`
        companions (metrics observer, trace sink) snapshotted into the
        payload's ``"extras"`` map alongside the crawler's own state.
    """

    def __init__(
        self,
        store: CheckpointStore | None,
        every: int = 0,
        flag: ShutdownFlag | None = None,
        interrupt_at: int | None = None,
        keep: int = 2,
    ) -> None:
        self.store = store
        self.every = every
        self.flag = flag
        self.interrupt_at = interrupt_at
        self.keep = keep
        self.extras: dict[str, object] = {}
        self.step = 0
        self.last_payload: dict | None = None
        self.resume_payload: dict | None = None
        self._last_saved_step: int | None = None

    # -- resume ------------------------------------------------------

    def arm_resume(self, loaded: LoadedCheckpoint) -> None:
        """Prime the checkpointer with a previously saved checkpoint;
        the crawl loop restores from ``resume_payload`` and the step
        counter continues where the snapshot was taken."""
        self.resume_payload = loaded.payload
        self.step = loaded.step
        self._last_saved_step = loaded.step

    # -- per-iteration hook ------------------------------------------

    def _build(self, build_payload: Callable[[], dict | None]) -> dict | None:
        payload = build_payload()
        if payload is None:
            return None
        payload = dict(payload)
        payload["step"] = self.step
        if self.extras:
            payload["extras"] = {
                name: component.snapshot_state()
                for name, component in self.extras.items()
            }
        return payload

    def _save(self, payload: dict | None):
        self.last_payload = payload
        if payload is None or self.store is None:
            return None
        path = self.store.write_checkpoint(payload, step=self.step)
        self._last_saved_step = self.step
        self.store.prune_old(keep=max(self.keep, 2))
        return path

    def tick(self, build_payload: Callable[[], dict | None]) -> None:
        """Call once at the top of each crawl-loop iteration.

        ``build_payload`` is only invoked when a save actually happens;
        it may return ``None`` for crawlers that cannot snapshot their
        frontier (the interrupt still fires, the site restarts fresh on
        resume).
        """
        interrupted = (self.flag is not None and self.flag.is_set()) or (
            self.interrupt_at is not None and self.step >= self.interrupt_at
        )
        if interrupted:
            path = self._save(self._build(build_payload))
            raise CrawlInterrupted(self.step, path)
        if (
            self.every > 0
            and self.step > 0
            and self.step % self.every == 0
            and self.step != self._last_saved_step
        ):
            self._save(self._build(build_payload))
        self.step += 1
