"""Durable crawl state: versioned checkpoint/resume (docs/checkpoint.md).

The package has three small layers:

* :mod:`repro.checkpoint.codec` — canonical-JSON payloads, bit-exact
  array and RNG-state round-trips, SHA-256 digests;
* :mod:`repro.checkpoint.store` — atomic on-disk checkpoints with a
  manifest, torn-write detection, previous-checkpoint fallback;
* :mod:`repro.checkpoint.controller` — the per-iteration tick that
  saves periodically and converts SIGINT/SIGTERM into a final
  checkpoint plus :class:`CrawlInterrupted`.

Components advertise participation via the structural
:class:`Checkpointable` protocol (``snapshot_state`` /
``restore_state``); the guarantee — stop at step *k*, resume, and the
crawl digest, event stream, ledger and merged campaign report are
byte-identical to an uninterrupted run — is enforced by
``tests/test_checkpoint_resume.py`` and CI's resume-equivalence job.
"""

from repro.checkpoint.codec import (
    SCHEMA_VERSION,
    canonical_json,
    decode_array,
    decode_rng_state,
    encode_array,
    encode_rng_state,
    payload_digest,
)
from repro.checkpoint.controller import (
    CrawlCheckpointer,
    CrawlInterrupted,
    ShutdownFlag,
    install_signal_handlers,
)
from repro.checkpoint.protocol import Checkpointable
from repro.checkpoint.store import (
    MANIFEST_FIELDS,
    CheckpointError,
    CheckpointStore,
    CorruptCheckpointError,
    LoadedCheckpoint,
)

__all__ = [
    "SCHEMA_VERSION",
    "MANIFEST_FIELDS",
    "Checkpointable",
    "CheckpointError",
    "CheckpointStore",
    "CorruptCheckpointError",
    "CrawlCheckpointer",
    "CrawlInterrupted",
    "LoadedCheckpoint",
    "ShutdownFlag",
    "canonical_json",
    "decode_array",
    "decode_rng_state",
    "encode_array",
    "encode_rng_state",
    "install_signal_handlers",
    "payload_digest",
]
