"""Canonical serialization primitives for checkpoint payloads.

Checkpoints follow the same byte-discipline as the campaign report
(``campaign/merge.py``): canonical JSON (sorted keys, no whitespace,
``allow_nan=False``) hashed with SHA-256, no wall clock, no absolute
paths.  Two invariants keep payloads digest-stable:

* **No int-keyed dicts.**  JSON silently stringifies non-string keys;
  ordered associations (bandit arms, frontier pools, HNSW nodes) are
  encoded as lists of pairs so insertion order — which fixes
  float-summation order after restore — survives the round trip.
* **Exact numerics.**  ``random.Random`` states round-trip as plain
  integer lists; numpy arrays round-trip via dtype + shape + base64 of
  their contiguous bytes, bit-exact.
"""

from __future__ import annotations

import base64
import hashlib
import json

import numpy as np

#: bump when the payload layout changes incompatibly; loaders reject
#: checkpoints written under a different schema instead of guessing
SCHEMA_VERSION = 1


def canonical_json(payload: object) -> str:
    """The one JSON form a payload has: sorted keys, compact separators,
    NaN/Infinity rejected (fail loud rather than emit non-JSON)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def payload_digest(payload: object) -> str:
    """SHA-256 over the canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def encode_array(array: np.ndarray) -> dict:
    """Bit-exact numpy array encoding: dtype + shape + base64 bytes."""
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`; returns a fresh writable array."""
    raw = base64.b64decode(payload["data"].encode("ascii"))
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


def encode_rng_state(rng) -> list:
    """``random.Random.getstate()`` as a JSON-safe nested list.

    The state is ``(version, tuple_of_ints, gauss_next)``; both layers
    become lists.  The function never touches the generator's stream —
    encoding is observation only.
    """
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def decode_rng_state(payload: list) -> tuple:
    """The tuple ``random.Random.setstate`` expects, rebuilt from
    :func:`encode_rng_state` output.  Callers apply it to an *existing*
    seeded generator — restore never constructs new RNGs."""
    version, internal, gauss_next = payload
    return (version, tuple(internal), gauss_next)
