"""The pre-PR check: linter + documentation gates in one command.

Runs, in order, from the repository root::

    python -m repro.lint --project src   # two-phase whole-program lint
    python -m pytest tests/test_docs.py tests/test_obs_events.py
                                      # doc gates: README/API/observability
                                      # contracts hold as written

Invoke as ``python -m repro.precheck`` (or the ``repro-precheck``
console script when the package is installed).  Exit code is 0 only
when every step passes — the same gate CI applies, runnable locally
before opening a PR (documented in docs/static_analysis.md).

``--ci`` switches to machine-readable mode: child output still streams
through, but the final line on stdout is a single JSON object
summarising every check (``{"ok": ..., "checks": [...]}``) for the CI
workflow (``.github/workflows/ci.yml``) to parse, and the exit code is
non-zero iff any check failed.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

#: (description, argv) pairs run relative to the repository root.
#: The lint step runs the whole-program pass (--project: FLOW rules over
#: the project symbol graph) and is served by the incremental cache, so
#: warm re-runs cost milliseconds.
CHECKS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("determinism & invariant lint", ("-m", "repro.lint", "--project", "src")),
    (
        "documentation gates",
        ("-m", "pytest", "-q", "tests/test_docs.py", "tests/test_obs_events.py"),
    ),
)


def repo_root() -> Path:
    """The checkout root: the directory holding ``src/`` and ``tests/``.

    Derived from this file's location (``<root>/src/repro/precheck.py``),
    so the command works from any working directory inside the repo.
    """
    return Path(__file__).resolve().parent.parent.parent


def build_commands(python: str | None = None) -> list[tuple[str, list[str]]]:
    """The concrete command lines (for display and for tests)."""
    interpreter = python if python is not None else sys.executable
    return [(label, [interpreter, *argv]) for label, argv in CHECKS]


def run_checks(root: Path) -> list[dict[str, object]]:
    """Run every check from ``root``; one result record per check.

    Each record is JSON-ready: ``{"name", "command", "returncode",
    "ok"}``.  Child stdout/stderr stream through untouched.
    """
    env = dict(os.environ)
    src = str(root / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    records: list[dict[str, object]] = []
    for label, command in build_commands():
        print(f"== {label}: {' '.join(command[1:])}")
        result = subprocess.run(command, cwd=root, env=env)
        ok = result.returncode == 0
        print(f"== {label}: {'ok' if ok else f'FAILED (exit {result.returncode})'}")
        records.append(
            {
                "name": label,
                "command": command,
                "returncode": result.returncode,
                "ok": ok,
            }
        )
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.precheck",
        description="Run the pre-PR gate: whole-program lint + doc gates.",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="emit a machine-readable JSON summary as the last stdout "
        "line and exit non-zero iff any check failed",
    )
    args = parser.parse_args(argv)
    root = repo_root()
    if not (root / "src").is_dir() or not (root / "tests").is_dir():
        print(
            f"repro.precheck: {root} does not look like the repository "
            "root (need src/ and tests/); run from a source checkout",
            file=sys.stderr,
        )
        if args.ci:
            print(json.dumps({"ok": False, "checks": [], "error": "not-a-checkout"}))
        return 2
    records = run_checks(root)
    failures = sum(1 for record in records if not record["ok"])
    if args.ci:
        print(json.dumps({"ok": failures == 0, "checks": records}))
        return 1 if failures else 0
    if failures:
        print(f"repro.precheck: {failures} of {len(CHECKS)} checks failed")
        return 1
    print("repro.precheck: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
