"""The built-in determinism & invariant rules (DET*, COR*, API*).

Every rule is grounded in a failure mode this reproduction actually
cares about: unseeded randomness or wall-clock reads silently break the
byte-identical-trace guarantee behind Tables 1-7; float-equality guards
and swallowed exceptions corrupt metrics without failing tests; layering
violations let experiment code leak into the crawler hot path.  See
``docs/static_analysis.md`` for the full catalogue with examples.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule

#: Bumped whenever any rule's behaviour changes (per-file or FLOW), so
#: the incremental cache (`repro.lint.cache`) cannot serve findings
#: computed by an older rule set.  The active rule codes and the config
#: digest are mixed into the cache key separately.
RULESET_VERSION = "2026.08-6"


def _dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class UnseededRandomRule(Rule):
    """DET001 — all randomness must flow through explicit seeded streams.

    Flags, everywhere except ``repro/utils/rng.py``:

    * ``random.Random()`` with no seed argument;
    * module-level ``random.*()`` calls (``random.random()``,
      ``random.seed()``, ...) that mutate or read the global RNG;
    * ``from random import ...`` (aliasing defeats auditing);
    * ``import random`` at function scope (the historical pattern that
      hid re-seeding inside methods, e.g. old ``core/bandit.py``).
    """

    code = "DET001"
    name = "unseeded-random"
    rationale = ("global or unseeded randomness breaks the byte-identical "
                 "crawl-trace guarantee (docs/architecture.md, Determinism)")

    def _exempt(self, ctx: FileContext) -> bool:
        return ctx.config.is_rng_module(ctx.posix_path)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if self._exempt(ctx):
            return
        dotted = _dotted_name(node.func)
        if dotted == "random.Random":
            if not node.args and not node.keywords:
                ctx.report(self, node,
                           "unseeded random.Random(); pass an explicit seed "
                           "or use repro.utils.rng.derive_rng")
        elif dotted.startswith("random."):
            ctx.report(self, node,
                       f"{dotted}() uses the process-global RNG; thread an "
                       "explicit random.Random / derive_rng stream instead")

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        if self._exempt(ctx) or not ctx.in_function():
            return
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                ctx.report(self, node,
                           "function-scope 'import random'; import at module "
                           "level or use repro.utils.rng.derive_rng")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if self._exempt(ctx):
            return
        if node.module == "random" and node.level == 0:
            ctx.report(self, node,
                       "'from random import ...' hides global-RNG usage from "
                       "audits; import the module and seed an instance")


class WallClockRule(Rule):
    """DET002 — no wall-clock or OS entropy reads in library code.

    ``time.time()``, ``datetime.now()``, ``os.urandom()`` and friends
    make a crawl depend on when/where it runs.  Simulated time must come
    from the environment (``revisit`` policies take ``now`` parameters);
    benchmarks and tests are exempt.
    """

    code = "DET002"
    name = "wall-clock"
    rationale = ("wall-clock and OS entropy make runs irreproducible; "
                 "simulated time is threaded explicitly")

    #: Dotted-name suffixes that read the clock or OS entropy.
    FORBIDDEN = (
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.is_test_file():
            return
        dotted = _dotted_name(node.func)
        if not dotted:
            return
        for suffix in self.FORBIDDEN:
            if dotted == suffix or dotted.endswith("." + suffix):
                ctx.report(self, node,
                           f"{dotted}() reads wall-clock/OS entropy; thread "
                           "simulated time or an explicit seed instead")
                return


class SetIterationOrderRule(Rule):
    """DET003 — unordered iteration must not feed RNG-dependent logic.

    Python ``set`` iteration order depends on insertion history and hash
    randomisation of the *process*, so ``for x in some_set`` followed by
    an RNG draw (or frontier ``pop_random``) in the same function can
    consume the stream in a platform-dependent order.  Heuristic: the
    function both iterates a set-valued expression and touches an
    ``rng``-named object or ``pop_random``/``derive_rng``.
    """

    code = "DET003"
    name = "set-iteration-order"
    rationale = ("set iteration order is unstable across processes; feeding "
                 "it into RNG choice reorders the stream")

    def visit_FunctionDef(self, node: ast.AST, ctx: FileContext) -> None:
        set_names: set[str] = set()
        uses_rng = False
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and _is_set_expression(child.value):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            if isinstance(child, ast.Name) and "rng" in child.id:
                uses_rng = True
            if isinstance(child, ast.Attribute) and (
                "rng" in child.attr or child.attr == "pop_random"
            ):
                uses_rng = True
        if not uses_rng:
            return
        for child in ast.walk(node):
            if not isinstance(child, (ast.For, ast.AsyncFor)):
                continue
            iterable = child.iter
            if _is_set_expression(iterable) or (
                isinstance(iterable, ast.Name) and iterable.id in set_names
            ):
                ctx.report(self, child,
                           "iterating an unordered set in a function that "
                           "draws from an RNG; sort the set first so the "
                           "stream consumption order is deterministic")


class MutableDefaultRule(Rule):
    """COR001 — no mutable default arguments."""

    code = "COR001"
    name = "mutable-default"
    rationale = ("mutable defaults are shared across calls and leak state "
                 "between crawls")

    _MUTABLE_CALLS = ("list", "dict", "set")

    def _is_mutable(self, default: ast.AST | None) -> bool:
        if default is None:
            return False
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in self._MUTABLE_CALLS
        )

    def visit_FunctionDef(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            if self._is_mutable(default):
                ctx.report(self, default,
                           f"mutable default for argument {arg.arg!r} of "
                           f"{node.name}(); use None and create inside")
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if self._is_mutable(default):
                ctx.report(self, default,
                           f"mutable default for argument {arg.arg!r} of "
                           f"{node.name}(); use None and create inside")


class FloatEqualityRule(Rule):
    """COR002 — no exact float-literal ``==``/``!=`` outside tests.

    Cosine norms, losses and scale factors accumulate rounding error;
    exact comparison against a float literal is usually a latent bug.
    Intentional exact-zero guards take a ``noqa`` with a justification,
    or use ``repro.utils.approx_zero``.
    """

    code = "COR002"
    name = "float-equality"
    rationale = ("exact float comparison is unstable under rounding; use "
                 "approx_zero()/math.isclose or justify with noqa")

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        if ctx.is_test_file():
            return
        operands = [node.left] + node.comparators
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(isinstance(side, ast.Constant)
                   and isinstance(side.value, float) for side in pair):
                ctx.report(self, node,
                           "exact ==/!= against a float literal; use "
                           "repro.utils.approx_zero / math.isclose (or noqa "
                           "with a justification)")
                return


class SwallowedExceptionRule(Rule):
    """COR003 — no bare ``except:`` / silently-passing ``except Exception``.

    A crawl loop that swallows exceptions keeps running with corrupted
    bookkeeping: the ledger, trace and bandit statistics silently drift
    from the pages actually fetched.
    """

    code = "COR003"
    name = "swallowed-exception"
    rationale = ("silent exception swallowing corrupts crawl bookkeeping "
                 "without failing any test")

    _BROAD = ("Exception", "BaseException")

    def _is_broad(self, node: ast.AST | None) -> bool:
        if node is None:  # bare except
            return True
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        return False

    def _only_passes(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring or bare `...`
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(self, node,
                       "bare 'except:' catches everything including "
                       "KeyboardInterrupt; name the exceptions")
            return
        if self._is_broad(node.type) and self._only_passes(node.body):
            ctx.report(self, node,
                       "'except Exception: pass' swallows failures silently; "
                       "handle, log to the trace, or re-raise")


class SeedThreadingRule(Rule):
    """API001 — public crawler-layer functions must thread a seed or rng.

    A public function in ``core/``/``baselines/`` that *creates* an RNG
    (``random.Random(...)`` or ``derive_rng(...)``) without taking a
    ``seed``/``rng`` parameter — and without deriving it from stored
    state like ``self.seed`` — hard-wires its stream, so callers cannot
    decorrelate runs.
    """

    code = "API001"
    name = "seed-threading"
    rationale = ("hard-wired RNG streams in public crawler APIs prevent "
                 "seed-averaged experiments (paper Sec. 4.1)")

    def _creates_rng(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            dotted = _dotted_name(child.func)
            if dotted == "random.Random" or dotted == "Random":
                return True
            if dotted == "derive_rng" or dotted.endswith(".derive_rng"):
                return True
        return False

    def visit_FunctionDef(self, node: ast.AST, ctx: FileContext) -> None:
        if ctx.package not in ctx.config.seeded_packages:
            return
        if node.name.startswith("_"):
            return
        if not self._creates_rng(node):
            return
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg is not None or args.kwarg is not None:
            return
        if any("seed" in p or "rng" in p for p in params):
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and (
                "seed" in child.attr or "rng" in child.attr
            ):
                return  # derives from stored state (self.seed, config.rng, ...)
        ctx.report(self, node,
                   f"public function {node.name}() creates an RNG but has no "
                   "seed/rng parameter and derives none from state")


class LayeringRule(Rule):
    """API002 — imports must respect the architecture's layer ranking.

    ``core/`` importing ``experiments/`` (or anything importing the
    linter) inverts the dependency tower in docs/architecture.md; such
    edges make the crawler untestable in isolation and block the planned
    parallelism/caching refactors.
    """

    code = "API002"
    name = "layering"
    rationale = ("upward imports invert the layering in "
                 "docs/architecture.md and entangle the crawler hot path")

    def _check(self, node: ast.AST, imported: str, ctx: FileContext) -> None:
        if not imported.startswith("repro."):
            return
        own = ctx.package
        if not own:  # root modules (__init__, __main__) wire everything
            return
        own_rank = ctx.config.layer_rank(own)
        if own_rank is None:
            return
        target = imported.split(".")[1]
        if target == own:
            return
        target_rank = ctx.config.layer_rank(target)
        if target_rank is None or target_rank <= own_rank:
            return
        ctx.report(self, node,
                   f"layer violation: repro.{own} (rank {own_rank}) imports "
                   f"repro.{target} (rank {target_rank}); dependencies must "
                   "point downward (docs/architecture.md)")

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            self._check(node, alias.name, ctx)

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level or node.module is None:
            return  # relative imports stay within a subpackage
        self._check(node, node.module, ctx)


def default_rules() -> list[Rule]:
    """Fresh instances of the full built-in rule set, in catalogue order."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        SetIterationOrderRule(),
        MutableDefaultRule(),
        FloatEqualityRule(),
        SwallowedExceptionRule(),
        SeedThreadingRule(),
        LayeringRule(),
    ]
