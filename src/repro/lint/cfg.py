"""Intraprocedural control-flow graphs: the substrate of lint phase 3.

A :class:`CFG` is built per function definition by :func:`build_cfg`.
Statements are grouped into :class:`Block`\\ s (maximal straight-line
runs); edges model every control construct the dataflow rules care
about — ``if``/``for``/``while`` branching and loop back-edges,
``break``/``continue``, ``try``/``except``/``else``/``finally``,
``with`` bodies, and ``return``/``raise`` exits.

Design choices, tuned for lint-grade dataflow rather than compilation:

* **Compound statements appear as their own header.**  A block holds
  the ``ast.If``/``ast.While``/``ast.For``/``ast.With`` node itself;
  only the *header* part (test, iterator, context expressions) is
  evaluated there — bodies live in successor blocks.  Transfer
  functions must therefore read headers via
  :func:`repro.lint.dataflow.header_exprs`, never ``ast.walk`` on the
  raw node (which would re-visit body statements).
* **``finally`` is inlined per exit path.**  A ``return`` inside
  ``try ... finally`` first flows through a fresh copy of the finally
  body's blocks and only then reaches the exit — so a resource closed
  in a ``finally`` is closed on *every* path, abrupt or normal, without
  interprocedural tricks.  The duplicated blocks reference the same AST
  statements, which is sound for the forward analyses built on top.
* **Implicit exception edges are approximate.**  Every block created
  inside a ``try`` body gets an edge to each of that ``try``'s handler
  entries (the innermost handlers only).  That over-approximates where
  an exception can be raised — exactly the conservative direction a
  leak/taint analysis wants.
* **Determinism.**  Block indices follow construction order, successor
  lists are sorted, and nothing consults hashes of AST objects, so the
  same source always yields the same graph.

The virtual ``entry`` block is always index 0 and the virtual ``exit``
block index 1; both are empty.  Unreachable blocks may exist (e.g. the
join block after ``if``/``else`` where both arms return); the solver
simply never visits them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Index of the (empty, virtual) entry block of every CFG.
ENTRY = 0
#: Index of the (empty, virtual) exit block of every CFG.
EXIT = 1


@dataclass
class Block:
    """One basic block: a run of statements plus its out-edges."""

    index: int
    stmts: list[ast.AST] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    def add_succ(self, index: int) -> None:
        if index not in self.succs:
            self.succs.append(index)


class CFG:
    """Control-flow graph of one function (see module docstring)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: list[Block] = []
        self.new_block()  # ENTRY
        self.new_block()  # EXIT

    # -- construction ----------------------------------------------------

    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: int, dst: int) -> None:
        self.blocks[src].add_succ(dst)

    def finalize(self) -> "CFG":
        for block in self.blocks:
            block.succs.sort()
        return self

    # -- queries ---------------------------------------------------------

    def successors(self, index: int) -> list[int]:
        return self.blocks[index].succs

    def predecessors(self) -> dict[int, list[int]]:
        """Map block index -> sorted predecessor indices."""
        preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                preds[succ].append(block.index)
        return preds

    def reachable_from(self, index: int) -> set[int]:
        """Indices of all blocks reachable from ``index`` (inclusive)."""
        seen = {index}
        stack = [index]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def block_of(self, stmt: ast.AST) -> int | None:
        """Index of the first block holding ``stmt`` (identity match)."""
        for block in self.blocks:
            for candidate in block.stmts:
                if candidate is stmt:
                    return block.index
        return None


#: Stack frames the builder unwinds for abrupt jumps: loops catch
#: break/continue, except-frames catch raise, finally-frames are inlined
#: on the way past regardless of jump kind.
_LOOP, _FINALLY, _EXCEPT = "loop", "finally", "except"


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func.name)
        self._func = func
        #: (_LOOP, header_idx, after_idx) | (_FINALLY, stmts) |
        #: (_EXCEPT, [handler_entry_idx, ...]) — innermost last.
        self._frames: list[tuple] = []

    def build(self) -> CFG:
        first = self.cfg.new_block()
        self.cfg.edge(ENTRY, first.index)
        end = self._seq(self._func.body, first)
        if end is not None:
            self.cfg.edge(end.index, EXIT)
        return self.cfg.finalize()

    # -- sequencing ------------------------------------------------------

    def _seq(self, stmts: list[ast.stmt], cur: Block | None) -> Block | None:
        """Thread ``stmts`` from ``cur``; None means control never falls
        through (every path returned/raised/broke)."""
        for stmt in stmts:
            if cur is None:
                return None  # unreachable trailing statements
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, node: ast.stmt, cur: Block) -> Block | None:
        if isinstance(node, ast.If):
            return self._if(node, cur)
        if isinstance(node, (ast.While,)):
            return self._loop(node, cur, is_for=False)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._loop(node, cur, is_for=True)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, cur)
        if isinstance(node, ast.Try):
            return self._try(node, cur)
        if isinstance(node, ast.Return):
            cur.stmts.append(node)
            self._unwind(cur, "return")
            return None
        if isinstance(node, ast.Raise):
            cur.stmts.append(node)
            self._unwind(cur, "raise")
            return None
        if isinstance(node, ast.Break):
            cur.stmts.append(node)
            self._unwind(cur, "break")
            return None
        if isinstance(node, ast.Continue):
            cur.stmts.append(node)
            self._unwind(cur, "continue")
            return None
        cur.stmts.append(node)
        return cur

    # -- structured constructs -------------------------------------------

    def _join(self, ends: list[Block | None]) -> Block | None:
        live = [end for end in ends if end is not None]
        if not live:
            return None
        after = self.cfg.new_block()
        for end in live:
            self.cfg.edge(end.index, after.index)
        return after

    def _if(self, node: ast.If, cur: Block) -> Block | None:
        cur.stmts.append(node)  # header: the test expression
        body_entry = self.cfg.new_block()
        self.cfg.edge(cur.index, body_entry.index)
        body_end = self._seq(node.body, body_entry)
        if node.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.edge(cur.index, else_entry.index)
            else_end = self._seq(node.orelse, else_entry)
            return self._join([body_end, else_end])
        after = self._join([body_end, cur])
        return after

    def _loop(self, node, cur: Block, is_for: bool) -> Block | None:
        header = self.cfg.new_block()
        self.cfg.edge(cur.index, header.index)
        header.stmts.append(node)  # header: iter/test (+ For target bind)
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        self.cfg.edge(header.index, body_entry.index)
        self._frames.append((_LOOP, header.index, after.index))
        body_end = self._seq(node.body, body_entry)
        self._frames.pop()
        if body_end is not None:
            self.cfg.edge(body_end.index, header.index)
        if node.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.edge(header.index, else_entry.index)
            else_end = self._seq(node.orelse, else_entry)
            if else_end is not None:
                self.cfg.edge(else_end.index, after.index)
        else:
            self.cfg.edge(header.index, after.index)
        return after

    def _with(self, node, cur: Block) -> Block | None:
        cur.stmts.append(node)  # header: context expressions + as-binds
        body_entry = self.cfg.new_block()
        self.cfg.edge(cur.index, body_entry.index)
        body_end = self._seq(node.body, body_entry)
        return self._join([body_end])

    def _try(self, node: ast.Try, cur: Block) -> Block | None:
        handler_entries: list[Block] = []
        for handler in node.handlers:
            entry = self.cfg.new_block()
            entry.stmts.append(handler)  # header: type match + name bind
            handler_entries.append(entry)

        if node.finalbody:
            self._frames.append((_FINALLY, node.finalbody))
        if handler_entries:
            self._frames.append(
                (_EXCEPT, [b.index for b in handler_entries])
            )

        body_entry = self.cfg.new_block()
        self.cfg.edge(cur.index, body_entry.index)
        region_start = len(self.cfg.blocks) - 1
        body_end = self._seq(node.body, body_entry)
        if node.orelse and body_end is not None:
            body_end = self._seq(node.orelse, body_end)
        region_end = len(self.cfg.blocks)
        # Any statement in the protected region may raise: edge every
        # region block to every handler entry (innermost handlers only).
        # The pre-try block is included because an exception can fire
        # before the first body statement *completes* — without that
        # edge a handler would only ever see post-statement facts and a
        # `x = fallback; try: x = compute()` pattern would falsely kill
        # the fallback definition on the exceptional path.
        for index in (cur.index, *range(region_start, region_end)):
            for entry in handler_entries:
                self.cfg.edge(index, entry.index)

        if handler_entries:
            self._frames.pop()  # _EXCEPT: a raise in a handler propagates

        handler_ends: list[Block | None] = []
        for handler, entry in zip(node.handlers, handler_entries):
            handler_ends.append(self._seq(handler.body, entry))

        normal = [e for e in [body_end, *handler_ends] if e is not None]
        if not node.finalbody:
            return self._join(normal) if normal else None

        self._frames.pop()  # _FINALLY: the finally must not re-enter itself
        result: Block | None = None
        if normal:
            fin_entry = self.cfg.new_block()
            for end in normal:
                self.cfg.edge(end.index, fin_entry.index)
            fin_end = self._seq(node.finalbody, fin_entry)
            result = self._join([fin_end])
        if not handler_entries:
            # An uncaught exception in the protected region still runs
            # the finally before propagating: model one copy whose end
            # unwinds like a re-raise through the enclosing frames.
            fin_entry = self.cfg.new_block()
            for index in (cur.index, *range(region_start, region_end)):
                self.cfg.edge(index, fin_entry.index)
            fin_end = self._seq(node.finalbody, fin_entry)
            if fin_end is not None:
                self._unwind(fin_end, "raise")
        return result

    # -- abrupt jumps ----------------------------------------------------

    def _unwind(self, cur: Block, kind: str) -> None:
        """Route an abrupt jump through enclosing finallys to its target."""
        saved = list(self._frames)
        try:
            while self._frames:
                frame = self._frames.pop()
                if frame[0] == _FINALLY:
                    entry = self.cfg.new_block()
                    self.cfg.edge(cur.index, entry.index)
                    end = self._seq(frame[1], entry)
                    if end is None:
                        return  # the finally itself diverted control
                    cur = end
                elif frame[0] == _EXCEPT and kind == "raise":
                    for target in frame[1]:
                        self.cfg.edge(cur.index, target)
                    return
                elif frame[0] == _LOOP and kind in ("break", "continue"):
                    target = frame[2] if kind == "break" else frame[1]
                    self.cfg.edge(cur.index, target)
                    return
            self.cfg.edge(cur.index, EXIT)
        finally:
            self._frames = saved


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def function_defs(tree: ast.AST):
    """Yield every function definition in ``tree`` (any nesting depth)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
