"""Lint configuration, loadable from ``[tool.repro-lint]`` in pyproject.

Everything has a code-level default tuned to this repository, so the
linter runs out of the box; the pyproject table only needs to list
deviations::

    [tool.repro-lint]
    disable = ["COR002"]          # rule codes to turn off globally
    exclude = ["*/generated/*"]   # fnmatch patterns on posix paths

    [tool.repro-lint.layers]      # override the API002 layer ranking
    plugins = 45
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: Layer rank of each first-level subpackage of ``repro``; an import of
#: a *higher-ranked* package from a lower-ranked one is an API002
#: violation.  Equal ranks may import each other (``html``/``webgraph``
#: are deliberately co-resident: pages render from graph models and the
#: generator reuses DOM builders).  Mirrors docs/architecture.md.
DEFAULT_LAYERS: dict[str, int] = {
    "utils": 0,
    "lint": 0,  # the linter must stay importable with zero library deps
    "webgraph": 10,
    "html": 10,
    "ml": 10,
    "sd": 10,
    "checkpoint": 10,  # codec/store substrate; core and campaign snapshot into it
    "analysis": 10,
    "obs": 10,  # events/metrics are substrate; report replay peers with analysis
    "http": 20,
    "core": 30,
    "baselines": 40,
    "deepweb": 40,
    "revisit": 40,
    "campaign": 40,
    "experiments": 50,
    "bench": 60,  # the benchmark harness may exercise anything below it
}

#: Subpackages whose public functions must thread a seed/rng (API001).
DEFAULT_SEEDED_PACKAGES: tuple[str, ...] = ("core", "baselines")

#: The one module allowed to touch ``random`` module-level state.
DEFAULT_RNG_MODULE: str = "repro/utils/rng.py"


@dataclass(frozen=True)
class RuleConfig:
    """Effective linter configuration (defaults + pyproject overrides)."""

    #: Rule codes disabled globally (``DET001`` etc.).
    disable: frozenset[str] = frozenset()
    #: fnmatch patterns (posix paths) excluded from directory walks.
    exclude: tuple[str, ...] = ()
    #: API002 layer ranking; merged over :data:`DEFAULT_LAYERS`.
    layers: dict[str, int] = field(default_factory=dict)
    #: API001 scope.
    seeded_packages: tuple[str, ...] = DEFAULT_SEEDED_PACKAGES
    #: Path suffix of the module exempt from DET001.
    rng_module: str = DEFAULT_RNG_MODULE

    def is_excluded(self, posix_path: str) -> bool:
        return any(fnmatch(posix_path, pattern) for pattern in self.exclude)

    def layer_rank(self, package: str) -> int | None:
        if package in self.layers:
            return self.layers[package]
        return DEFAULT_LAYERS.get(package)

    def is_rng_module(self, posix_path: str) -> bool:
        return posix_path.endswith(self.rng_module)


def config_digest(config: RuleConfig) -> str:
    """Stable digest of the effective configuration.

    Part of the incremental-cache key: any change to the knobs that can
    alter findings (disabled rules, excludes, layer ranks, API001/FLOW001
    scope, the RNG-module exemption) must invalidate cached results.
    """
    import hashlib
    import json

    payload = {
        "disable": sorted(config.disable),
        "exclude": list(config.exclude),
        "layers": dict(sorted(config.layers.items())),
        "seeded_packages": list(config.seeded_packages),
        "rng_module": config.rng_module,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def load_pyproject_config(pyproject_path: str | Path | None = None) -> RuleConfig:
    """Build a :class:`RuleConfig` from ``[tool.repro-lint]``.

    With no explicit path, searches for ``pyproject.toml`` upward from
    the current directory; a missing file or missing table yields the
    defaults.  Unknown keys raise ``ValueError`` so typos fail loudly.
    """
    import tomllib

    if pyproject_path is None:
        for parent in [Path.cwd(), *Path.cwd().parents]:
            candidate = parent / "pyproject.toml"
            if candidate.is_file():
                pyproject_path = candidate
                break
        else:
            return RuleConfig()
    pyproject_path = Path(pyproject_path)
    if not pyproject_path.is_file():
        return RuleConfig()
    with pyproject_path.open("rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-lint", {})
    known = {"disable", "exclude", "layers", "seeded-packages", "rng-module"}
    unknown = set(table) - known
    if unknown:
        raise ValueError(
            f"unknown [tool.repro-lint] key(s): {sorted(unknown)} "
            f"(expected a subset of {sorted(known)})"
        )
    return RuleConfig(
        disable=frozenset(str(c).upper() for c in table.get("disable", [])),
        exclude=tuple(table.get("exclude", [])),
        layers={str(k): int(v) for k, v in table.get("layers", {}).items()},
        seeded_packages=tuple(
            table.get("seeded-packages", DEFAULT_SEEDED_PACKAGES)
        ),
        rng_module=str(table.get("rng-module", DEFAULT_RNG_MODULE)),
    )
