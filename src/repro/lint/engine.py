"""Rule-engine framework: AST dispatch, suppression, file walking.

A :class:`Rule` declares interest in AST node types by defining
``visit_<NodeType>`` methods (the :class:`ast.NodeVisitor` naming
convention).  The :class:`Linter` parses each file once and walks the
tree with a single dispatcher that hands every node to every rule that
subscribed to its type — so adding rules never adds extra tree walks.

Findings a rule reports are filtered through per-line suppression
comments before they reach the caller::

    norm == 0.0  # repro: noqa[COR002] exact zero is intentional here
    anything()   # repro: noqa          (suppresses every rule)

The marker may carry several codes (``noqa[DET001,COR002]``) and any
amount of trailing prose explaining *why* the line is exempt.  Markers
are recognised only in real comment tokens — a string literal that
happens to contain the text does not suppress anything.

Beyond the per-file walk, :meth:`Linter.run` drives the three-phase
whole-program analysis: phase 1 produces per-file findings plus a
:class:`~repro.lint.symbols.ModuleSymbols` table for every module
(optionally served from the content-hash cache in
:mod:`repro.lint.cache`); phase 3 — interleaved with phase 1, so its
results cache per file — builds a control-flow graph per function and
runs the dataflow DF rules (:mod:`repro.lint.df_rules`); phase 2
assembles the project model and runs the interprocedural FLOW rules
plus the project half of the DF family (:mod:`repro.lint.project`).
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Iterable

from repro.lint.config import RuleConfig

#: Matches the suppression marker — bare, or with a [CODE1,CODE2] list.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]*)\])?")

#: Findings for files the linter itself could not process.
PARSE_ERROR_CODE = "E999"


class LintUsageError(Exception):
    """Invalid invocation (unknown rule code, missing path, ...)."""


def _parse_noqa_codes(match: re.Match) -> frozenset[str] | None:
    codes = match.group(1)
    if codes is None:
        return None  # bare noqa: suppresses everything
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def scan_noqa(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed codes (``None`` = all codes).

    Scans COMMENT tokens only, so a *string literal* containing the
    marker text (fixtures, docs, generated HTML) cannot accidentally
    suppress findings on its line.  Sources that cannot be tokenised
    fall back to a plain line scan — those files fail with ``E999``
    anyway, so precision there does not matter.
    """
    markers: dict[int, frozenset[str] | None] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is not None:
                markers[token.start[0]] = _parse_noqa_codes(match)
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        markers.clear()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(text)
            if match is not None:
                markers[lineno] = _parse_noqa_codes(match)
    return markers


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set the three class attributes and implement one or more
    ``visit_<NodeType>(self, node, ctx)`` handlers.  Handlers report
    violations via ``ctx.report(self, node, message)``; suppression and
    rule-disabling are handled by the engine, not the rule.

    ``visit_FunctionDef`` handlers are automatically also invoked for
    ``ast.AsyncFunctionDef`` nodes.
    """

    #: Stable identifier, e.g. ``"DET001"`` — used in reports, ``noqa``
    #: markers and the ``disable`` config list.
    code: ClassVar[str] = ""
    #: Short human-readable name shown by ``--list-rules``.
    name: ClassVar[str] = ""
    #: One-line rationale shown by ``--list-rules``.
    rationale: ClassVar[str] = ""

    def handlers(self) -> dict[str, Callable]:
        """Map AST node-type name -> bound handler method."""
        table: dict[str, Callable] = {}
        for attr in dir(self):
            if attr.startswith("visit_"):
                table[attr[len("visit_"):]] = getattr(self, attr)
        if "FunctionDef" in table:
            table.setdefault("AsyncFunctionDef", table["FunctionDef"])
        return table


@dataclass
class FileContext:
    """Everything a rule may want to know about the file being linted."""

    path: str
    config: RuleConfig
    source: str
    tree: ast.AST
    findings: list[Finding] = field(default_factory=list)
    #: Findings filtered out by a noqa marker — kept so the project pass
    #: can tell *used* markers from stale ones (FLOW004).
    suppressed_findings: list[Finding] = field(default_factory=list)
    #: Depth of the enclosing function stack at the node being visited
    #: (0 = module scope); maintained by the dispatcher.
    function_depth: int = 0
    _noqa: dict[int, frozenset[str] | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._noqa = scan_noqa(self.source)

    # -- path-derived attributes ----------------------------------------

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    @property
    def repro_relpath(self) -> str:
        """Path relative to the ``repro`` package root (e.g.
        ``core/bandit.py``), or ``""`` if the file is outside it."""
        parts = Path(self.path).parts
        if "repro" not in parts:
            return ""
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index + 1:])

    @property
    def package(self) -> str:
        """First-level subpackage under ``repro`` (``"core"``, ...), or
        ``""`` for root modules and files outside the package."""
        relpath = self.repro_relpath
        if "/" not in relpath:
            return ""
        return relpath.split("/", 1)[0]

    def in_function(self) -> bool:
        return self.function_depth > 0

    def is_test_file(self) -> bool:
        name = Path(self.path).name
        posix = self.posix_path
        return (
            name.startswith("test_")
            or name.endswith("_test.py")
            or "/tests/" in posix
            or "/benchmarks/" in posix
        )

    # -- reporting -------------------------------------------------------

    def suppressed(self, code: str, line: int) -> bool:
        if line not in self._noqa:
            return False
        codes = self._noqa[line]
        return codes is None or code in codes

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        finding = Finding(path=self.path, line=line, col=col, rule=rule.code,
                          message=message)
        if self.suppressed(rule.code, line):
            self.suppressed_findings.append(finding)
        else:
            self.findings.append(finding)


class _Dispatcher(ast.NodeVisitor):
    """Single tree walk that fans each node out to subscribed rules."""

    def __init__(
        self, handlers: dict[str, list[Callable]], ctx: FileContext
    ) -> None:
        self._handlers = handlers
        self._ctx = ctx

    def visit(self, node: ast.AST) -> None:
        for handler in self._handlers.get(type(node).__name__, ()):
            handler(node, self._ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._ctx.function_depth += 1
            self.generic_visit(node)
            self._ctx.function_depth -= 1
        else:
            self.generic_visit(node)


@dataclass
class LintRun:
    """Result of one :meth:`Linter.run` invocation."""

    findings: list[Finding]
    cache: "CacheStats"
    project: bool
    files: int
    #: Wall seconds per phase (``per_file`` includes ``dataflow`` and
    #: ``effects``); populated by :meth:`Linter.run` for ``--stats``.
    timings: dict[str, float] = field(default_factory=dict)
    #: Phase-4 fixpoint result (:class:`~repro.lint.effects
    #: .EffectAnalysis`); only populated on ``project=True`` runs — the
    #: substrate the shard-safety certificate is built from.
    effects: "object | None" = None


class Linter:
    """Run a rule set over source strings, files or directory trees."""

    def __init__(
        self,
        config: RuleConfig | None = None,
        rules: Iterable[Rule] | None = None,
        project_rules: "Iterable | None" = None,
        df_rules: "Iterable | None" = None,
        conc_rules: "Iterable | None" = None,
    ) -> None:
        from repro.lint.conc_rules import default_conc_rules
        from repro.lint.df_rules import default_df_rules
        from repro.lint.project import default_project_rules
        from repro.lint.rules import default_rules

        self.config = config or RuleConfig()
        all_rules = list(rules) if rules is not None else default_rules()
        all_project = (list(project_rules) if project_rules is not None
                       else default_project_rules())
        all_df = (list(df_rules) if df_rules is not None
                  else default_df_rules())
        all_conc = (list(conc_rules) if conc_rules is not None
                    else default_conc_rules())
        known = {rule.code for rule in all_rules}
        known.update(rule.code for rule in all_project)
        known.update(rule.code for rule in all_df)
        known.update(rule.code for rule in all_conc)
        known.update(rule.code for rule in default_rules())
        known.update(rule.code for rule in default_project_rules())
        known.update(rule.code for rule in default_df_rules())
        known.update(rule.code for rule in default_conc_rules())
        unknown = set(self.config.disable) - known
        if unknown:
            raise LintUsageError(
                f"unknown rule code(s) in disable list: {sorted(unknown)}"
            )
        self.rules = [r for r in all_rules if r.code not in self.config.disable]
        self.project_rules = [r for r in all_project
                              if r.code not in self.config.disable]
        self.df_rules = [r for r in all_df
                         if r.code not in self.config.disable]
        self.conc_rules = [r for r in all_conc
                           if r.code not in self.config.disable]
        self._df_seconds = 0.0
        self._effects_seconds = 0.0
        self._last_effects = None
        self._handlers: dict[str, list[Callable]] = {}
        for rule in self.rules:
            for node_type, handler in rule.handlers().items():
                self._handlers.setdefault(node_type, []).append(handler)

    # -- phase 1: per-file analysis --------------------------------------

    def _analyze(self, source: str, path: str, sha: str = ""):
        """Full per-file result: findings, suppressed findings, symbols.

        Returns a :class:`repro.lint.cache.CachedFile` — the unit both
        the incremental cache and the project pass consume.
        """
        from repro.lint.cache import CachedFile
        from repro.lint.symbols import extract_symbols

        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            finding = Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
            )
            return CachedFile(sha=sha, findings=[finding], suppressed=[],
                              symbols=None, noqa=scan_noqa(source))
        ctx = FileContext(path=path, config=self.config, source=source,
                          tree=tree)
        _Dispatcher(self._handlers, ctx).visit(tree)
        df_facts = self._run_dataflow(tree, ctx)
        effect_facts = self._run_effects(tree, ctx)
        return CachedFile(
            sha=sha,
            findings=sorted(ctx.findings),
            suppressed=sorted(ctx.suppressed_findings),
            symbols=extract_symbols(tree, path),
            noqa=dict(ctx._noqa),
            df_facts=df_facts,
            effect_facts=effect_facts,
        )

    def _run_dataflow(self, tree: ast.AST, ctx: FileContext) -> dict:
        """Phase 3: one CFG per function, every DF rule over each, plus
        the per-module fact collection DF003's project half consumes.
        The CONC rules' per-function halves (phase 4) share the CFGs."""
        if not self.df_rules and not self.conc_rules:
            return {}
        started = time.perf_counter()
        from repro.lint.cfg import build_cfg, function_defs

        for func in function_defs(tree):
            cfg = build_cfg(func)
            for rule in self.df_rules:
                rule.check_function(func, cfg, ctx)
            for rule in self.conc_rules:
                rule.check_function(func, cfg, ctx)
        df_facts: dict[str, list] = {}
        for rule in self.df_rules:
            facts = rule.collect_module(tree, ctx)
            if facts:
                df_facts[rule.code] = facts
        self._df_seconds += time.perf_counter() - started
        return df_facts

    def _run_effects(self, tree: ast.AST, ctx: FileContext):
        """Phase 4 per-file half: effect sites, callees, RNG streams.

        Lines carrying an explicit ``noqa[CONC005]`` marker are passed
        down as sanctioned io: the site still produces its CONC005
        finding (which the marker then suppresses — FLOW004 stays
        honest) but no longer drives the function's effect to
        ``performs-io`` in the lattice.
        """
        if not self.conc_rules:
            return None
        from repro.lint.effects import collect_effects

        started = time.perf_counter()
        sanctioned = frozenset(
            line for line, codes in ctx._noqa.items()
            if codes is not None and "CONC005" in codes
        )
        effect_facts = collect_effects(tree, sanctioned_lines=sanctioned)
        self._effects_seconds += time.perf_counter() - started
        return effect_facts

    # -- entry points ----------------------------------------------------

    def check_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one source string; ``path`` drives path-sensitive rules."""
        return self._analyze(source, path).findings

    def check_file(self, path: str | Path) -> list[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.check_source(text, path=str(path))

    def _collect_files(self, paths: Iterable[str | Path]) -> list[Path]:
        """Expand files/directories into a deduplicated ``*.py`` list.

        Overlapping inputs (``src src/repro``) or the same file named
        twice resolve to a single entry, so nothing is linted twice.
        """
        seen: set[Path] = set()
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if not path.exists():
                raise LintUsageError(f"no such file or directory: {path}")
            candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in candidates:
                if self.config.is_excluded(file.as_posix()):
                    continue
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                files.append(file)
        return files

    def check_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and (recursively) directories of ``*.py`` files."""
        return sorted(
            finding
            for file in self._collect_files(paths)
            for finding in self.check_file(file)
        )

    # -- phase 2: whole-program run --------------------------------------

    def _cache_key(self) -> str:
        from repro.lint.config import config_digest
        from repro.lint.rules import RULESET_VERSION

        codes = sorted({r.code for r in self.rules}
                       | {r.code for r in self.project_rules}
                       | {r.code for r in self.df_rules}
                       | {r.code for r in self.conc_rules})
        return "|".join([RULESET_VERSION, ",".join(codes),
                         config_digest(self.config)])

    def run(
        self,
        paths: Iterable[str | Path],
        *,
        project: bool = False,
        cache_path: str | Path | None = None,
        reference_roots: Iterable[str | Path] = (),
    ) -> LintRun:
        """The two-phase analysis: per-file rules, then FLOW rules.

        ``reference_roots`` name directories whose files feed the
        project model (symbol tables, reference corpus) without being
        linted themselves — findings only ever anchor inside ``paths``.
        With ``cache_path`` set, unchanged files are served from the
        content-hash cache and cost one SHA-256 instead of a parse.
        """
        from repro.lint.cache import CacheStats, LintCache, content_sha

        main_files = self._collect_files(paths)
        stats = CacheStats(enabled=cache_path is not None)
        cache = (LintCache(cache_path, key=self._cache_key())
                 if cache_path is not None else None)
        self._df_seconds = 0.0
        self._effects_seconds = 0.0
        self._last_effects = None
        phase_started = time.perf_counter()

        def analyze_file(file: Path):
            data = file.read_bytes()
            sha = content_sha(data)
            path_str = str(file)
            stats.files += 1
            if cache is not None:
                hit = cache.get(path_str, sha)
                if hit is not None:
                    stats.hits += 1
                    return hit
                stats.misses += 1
            result = self._analyze(data.decode("utf-8"), path_str, sha)
            if cache is not None:
                cache.put(path_str, result)
            return result

        results = {str(file): analyze_file(file) for file in main_files}
        findings = [f for result in results.values()
                    for f in result.findings]
        per_file_seconds = time.perf_counter() - phase_started

        project_seconds = 0.0
        if project:
            phase_started = time.perf_counter()
            findings.extend(self._run_project_phase(
                main_files, results, reference_roots, analyze_file,
            ))
            project_seconds = time.perf_counter() - phase_started
        if cache is not None:
            cache.save()
        timings = {
            "per_file": per_file_seconds,
            "dataflow": self._df_seconds,
            "effects": self._effects_seconds,
            "project": project_seconds,
        }
        return LintRun(findings=sorted(findings), cache=stats,
                       project=project, files=len(results),
                       timings=timings, effects=self._last_effects)

    def _run_project_phase(
        self,
        main_files: list[Path],
        results: dict,
        reference_roots: Iterable[str | Path],
        analyze_file: Callable,
    ) -> list[Finding]:
        from repro.lint.project import UnusedNoqaRule, build_project

        seen = {file.resolve() for file in main_files}
        reference_files: list[Path] = []
        for root in reference_roots:
            root = Path(root)
            if not root.exists():
                continue
            candidates = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            for file in candidates:
                if self.config.is_excluded(file.as_posix()):
                    continue
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                reference_files.append(file)
        reference_results = [analyze_file(file) for file in reference_files]

        all_results = [*results.values(), *reference_results]
        symbols = [r.symbols for r in all_results if r.symbols is not None]
        noqa = {path: result.noqa for path, result in results.items()}
        suppressed: dict[str, dict[int, set[str]]] = {}
        for path, result in results.items():
            for finding in result.suppressed:
                suppressed.setdefault(path, {}).setdefault(
                    finding.line, set()
                ).add(finding.rule)

        df_facts = {path: result.df_facts for path, result in results.items()
                    if result.df_facts}
        effect_facts = {path: result.effect_facts
                        for path, result in results.items()
                        if result.effect_facts is not None}
        model = build_project(symbols, linted_paths=results.keys(),
                              noqa=noqa, suppressed=suppressed,
                              df_facts=df_facts, effects=effect_facts)

        analysis = None
        if self.conc_rules:
            from repro.lint.effects import propagate_effects

            started = time.perf_counter()
            analysis = propagate_effects(model)
            self._effects_seconds += time.perf_counter() - started
            self._last_effects = analysis

        findings: list[Finding] = []
        deferred = [r for r in self.project_rules
                    if isinstance(r, UnusedNoqaRule)]
        checks = [rule.check for rule in self.project_rules
                  if not isinstance(rule, UnusedNoqaRule)]
        checks.extend(rule.check_project for rule in self.df_rules)
        if analysis is not None:
            checks.extend(
                (lambda m, c, _rule=rule: _rule.check_project(m, c, analysis))
                for rule in self.conc_rules
            )
        for check in checks:
            for finding in check(model, self.config):
                codes = noqa.get(finding.path, {}).get(finding.line, False)
                if codes is False:
                    findings.append(finding)
                elif codes is None or finding.rule in codes:
                    model.record_suppressed(finding)
                else:
                    findings.append(finding)
        for rule in deferred:
            findings.extend(rule.check(model, self.config))
        return findings
