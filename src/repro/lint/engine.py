"""Rule-engine framework: AST dispatch, suppression, file walking.

A :class:`Rule` declares interest in AST node types by defining
``visit_<NodeType>`` methods (the :class:`ast.NodeVisitor` naming
convention).  The :class:`Linter` parses each file once and walks the
tree with a single dispatcher that hands every node to every rule that
subscribed to its type — so adding rules never adds extra tree walks.

Findings a rule reports are filtered through per-line suppression
comments before they reach the caller::

    norm == 0.0  # repro: noqa[COR002] exact zero is intentional here
    anything()   # repro: noqa          (suppresses every rule)

The marker may carry several codes (``noqa[DET001,COR002]``) and any
amount of trailing prose explaining *why* the line is exempt.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Iterable

from repro.lint.config import RuleConfig

#: ``# repro: noqa`` or ``# repro: noqa[CODE1,CODE2]`` anywhere in a line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]*)\])?")

#: Findings for files the linter itself could not process.
PARSE_ERROR_CODE = "E999"


class LintUsageError(Exception):
    """Invalid invocation (unknown rule code, missing path, ...)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set the three class attributes and implement one or more
    ``visit_<NodeType>(self, node, ctx)`` handlers.  Handlers report
    violations via ``ctx.report(self, node, message)``; suppression and
    rule-disabling are handled by the engine, not the rule.

    ``visit_FunctionDef`` handlers are automatically also invoked for
    ``ast.AsyncFunctionDef`` nodes.
    """

    #: Stable identifier, e.g. ``"DET001"`` — used in reports, ``noqa``
    #: markers and the ``disable`` config list.
    code: ClassVar[str] = ""
    #: Short human-readable name shown by ``--list-rules``.
    name: ClassVar[str] = ""
    #: One-line rationale shown by ``--list-rules``.
    rationale: ClassVar[str] = ""

    def handlers(self) -> dict[str, Callable]:
        """Map AST node-type name -> bound handler method."""
        table: dict[str, Callable] = {}
        for attr in dir(self):
            if attr.startswith("visit_"):
                table[attr[len("visit_"):]] = getattr(self, attr)
        if "FunctionDef" in table:
            table.setdefault("AsyncFunctionDef", table["FunctionDef"])
        return table


@dataclass
class FileContext:
    """Everything a rule may want to know about the file being linted."""

    path: str
    config: RuleConfig
    source: str
    tree: ast.AST
    findings: list[Finding] = field(default_factory=list)
    #: Depth of the enclosing function stack at the node being visited
    #: (0 = module scope); maintained by the dispatcher.
    function_depth: int = 0
    _noqa: dict[int, frozenset[str] | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None:
                self._noqa[lineno] = None  # bare noqa: everything
            else:
                self._noqa[lineno] = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )

    # -- path-derived attributes ----------------------------------------

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    @property
    def repro_relpath(self) -> str:
        """Path relative to the ``repro`` package root (e.g.
        ``core/bandit.py``), or ``""`` if the file is outside it."""
        parts = Path(self.path).parts
        if "repro" not in parts:
            return ""
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index + 1:])

    @property
    def package(self) -> str:
        """First-level subpackage under ``repro`` (``"core"``, ...), or
        ``""`` for root modules and files outside the package."""
        relpath = self.repro_relpath
        if "/" not in relpath:
            return ""
        return relpath.split("/", 1)[0]

    def in_function(self) -> bool:
        return self.function_depth > 0

    def is_test_file(self) -> bool:
        name = Path(self.path).name
        posix = self.posix_path
        return (
            name.startswith("test_")
            or name.endswith("_test.py")
            or "/tests/" in posix
            or "/benchmarks/" in posix
        )

    # -- reporting -------------------------------------------------------

    def suppressed(self, code: str, line: int) -> bool:
        if line not in self._noqa:
            return False
        codes = self._noqa[line]
        return codes is None or code in codes

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(rule.code, line):
            return
        self.findings.append(
            Finding(path=self.path, line=line, col=col, rule=rule.code,
                    message=message)
        )


class _Dispatcher(ast.NodeVisitor):
    """Single tree walk that fans each node out to subscribed rules."""

    def __init__(
        self, handlers: dict[str, list[Callable]], ctx: FileContext
    ) -> None:
        self._handlers = handlers
        self._ctx = ctx

    def visit(self, node: ast.AST) -> None:
        for handler in self._handlers.get(type(node).__name__, ()):
            handler(node, self._ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._ctx.function_depth += 1
            self.generic_visit(node)
            self._ctx.function_depth -= 1
        else:
            self.generic_visit(node)


class Linter:
    """Run a rule set over source strings, files or directory trees."""

    def __init__(
        self,
        config: RuleConfig | None = None,
        rules: Iterable[Rule] | None = None,
    ) -> None:
        from repro.lint.rules import default_rules

        self.config = config or RuleConfig()
        all_rules = list(rules) if rules is not None else default_rules()
        known = {rule.code for rule in all_rules}
        known.update(rule.code for rule in default_rules())
        unknown = set(self.config.disable) - known
        if unknown:
            raise LintUsageError(
                f"unknown rule code(s) in disable list: {sorted(unknown)}"
            )
        self.rules = [r for r in all_rules if r.code not in self.config.disable]
        self._handlers: dict[str, list[Callable]] = {}
        for rule in self.rules:
            for node_type, handler in rule.handlers().items():
                self._handlers.setdefault(node_type, []).append(handler)

    # -- entry points ----------------------------------------------------

    def check_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one source string; ``path`` drives path-sensitive rules."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc.msg}",
                )
            ]
        ctx = FileContext(path=path, config=self.config, source=source, tree=tree)
        _Dispatcher(self._handlers, ctx).visit(tree)
        return sorted(ctx.findings)

    def check_file(self, path: str | Path) -> list[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.check_source(text, path=str(path))

    def check_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and (recursively) directories of ``*.py`` files."""
        findings: list[Finding] = []
        for path in paths:
            path = Path(path)
            if not path.exists():
                raise LintUsageError(f"no such file or directory: {path}")
            if path.is_dir():
                files = sorted(path.rglob("*.py"))
            else:
                files = [path]
            for file in files:
                if self.config.is_excluded(file.as_posix()):
                    continue
                findings.extend(self.check_file(file))
        return sorted(findings)
