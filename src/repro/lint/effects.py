"""Phase 4 substrate: interprocedural effect inference.

The concurrency rules (:mod:`repro.lint.conc_rules`) and the
shard-safety certificate (:mod:`repro.lint.certificate`) need to know,
for every function in the project, *what it touches*: nothing (pure),
module-level state (read or mutated), or the world outside the process
(clock, filesystem, environment).  This module computes that in the
same two-step shape DF003 uses:

* the **per-file half** (:func:`collect_effects`) walks one parsed
  module and records an :class:`EffectFact` per function — its local
  effect, the concrete :class:`EffectSite` list behind that verdict,
  and the names it calls — plus the module-level RNG streams CONC002's
  project half tracks.  Everything is JSON-serialisable so the
  incremental cache stores it next to ``df_facts``;
* the **project half** (:func:`propagate_effects`) joins the facts of
  every module with a name-resolved call graph and runs the effect
  lattice to fixpoint: a function's effect is the join of its own
  sites and its callees' effects.  The same closure yields the set of
  functions *worker-reachable* from the campaign/core entry points —
  the code the sharded campaign engine will actually run in parallel
  workers.

Like the rest of the linter the analysis resolves names, not objects:
a call edge exists from ``f`` to every project function sharing the
callee's terminal name.  That over-approximates reachability (safe for
a certificate — unreachable code can only be *mis*classified as
reachable, never the reverse) while staying deterministic and cheap.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.lint.df_rules import (MUTABLE_CONSTRUCTORS, MUTATOR_METHODS,
                                 _dotted, _module_mutables, _own_nodes)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectModel

# ---------------------------------------------------------------------------
# The effect lattice
# ---------------------------------------------------------------------------

#: Lattice levels, bottom to top.  ``join`` is max-by-rank: a function
#: that both reads module state and touches the filesystem is classified
#: by its most serious effect.
PURE = "pure"
READS = "reads-module-state"
MUTATES = "mutates-module-state"
IO = "performs-io"

EFFECT_RANK: dict[str, int] = {PURE: 0, READS: 1, MUTATES: 2, IO: 3}

#: Packages whose functions the sharded campaign engine runs inside
#: parallel workers; reachability from here defines "worker-reachable".
WORKER_ENTRY_PACKAGES: tuple[str, ...] = ("campaign", "core")


def join_effects(left: str, right: str) -> str:
    return left if EFFECT_RANK[left] >= EFFECT_RANK[right] else right


# ---------------------------------------------------------------------------
# Effect-site detection tables
# ---------------------------------------------------------------------------

#: Dotted call names that read the wall clock, entropy, or process
#: identity — nondeterministic inputs a replayable worker must not take
#: (the DET002 family, seen interprocedurally).
CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.perf_counter",
    "time.process_time", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "os.urandom", "uuid.uuid1",
    "uuid.uuid4", "os.getpid",
})

#: Dotted call names that touch the filesystem or process environment.
FS_CALLS = frozenset({
    "os.remove", "os.unlink", "os.makedirs", "os.mkdir", "os.rename",
    "os.replace", "os.rmdir", "os.listdir", "os.getenv",
    "shutil.rmtree", "shutil.copy", "shutil.copytree", "shutil.move",
    "tempfile.mkdtemp", "tempfile.mkstemp",
})

#: Bare or terminal call names that open/print regardless of receiver.
#: Deliberately narrow — ``replace``/``rename`` style names collide
#: with string/datetime methods, so only Path/file-specific method
#: names appear here.
IO_HEADS = frozenset({
    "open", "print", "input", "write_text", "read_text", "write_bytes",
    "read_bytes", "mkdir", "unlink", "rmdir", "touch",
})

#: RNG stream constructors (terminal call names).  ``derive_rng`` is the
#: sanctioned one; the rest establish a stream CONC002 must see owned.
RNG_CONSTRUCTORS = frozenset({"Random", "default_rng", "RandomState",
                              "SystemRandom"})
DERIVED_CONSTRUCTORS = frozenset({"derive_rng"})


def is_rng_construction(expr: ast.AST) -> bool:
    """``random.Random(...)`` / ``np.random.default_rng(...)`` /
    ``derive_rng(...)`` — any expression that mints an RNG stream."""
    if not isinstance(expr, ast.Call):
        return False
    head = _dotted(expr.func).rsplit(".", 1)[-1]
    return head in RNG_CONSTRUCTORS or head in DERIVED_CONSTRUCTORS


def is_derived_rng(expr: ast.AST) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    return _dotted(expr.func).rsplit(".", 1)[-1] in DERIVED_CONSTRUCTORS


# ---------------------------------------------------------------------------
# Serialisable facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EffectSite:
    """One concrete reason a function is not pure."""

    kind: str    # "read" | "mutate" | "global-write" | "io"
    target: str  # the module-level name, or the dotted call for io
    line: int
    col: int
    detail: str  # human-readable, e.g. ".append()" or "wall clock"

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target, "line": self.line,
                "col": self.col, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EffectSite":
        return cls(kind=data["kind"], target=data["target"],
                   line=data["line"], col=data["col"], detail=data["detail"])


@dataclass(frozen=True)
class EffectFact:
    """Per-function effect summary, cached alongside ``df_facts``."""

    qualname: str
    line: int
    local_effect: str            # join of the sites alone, callees excluded
    sites: tuple[EffectSite, ...]
    callees: tuple[str, ...]     # terminal names of every called target

    def to_dict(self) -> dict[str, Any]:
        return {"qualname": self.qualname, "line": self.line,
                "local_effect": self.local_effect,
                "sites": [s.to_dict() for s in self.sites],
                "callees": list(self.callees)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EffectFact":
        return cls(qualname=data["qualname"], line=data["line"],
                   local_effect=data["local_effect"],
                   sites=tuple(EffectSite.from_dict(s)
                               for s in data["sites"]),
                   callees=tuple(data["callees"]))


@dataclass(frozen=True)
class RngStreamFact:
    """A module-level RNG stream (CONC002's shared-stream half)."""

    name: str
    line: int
    col: int
    via_derive: bool

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line, "col": self.col,
                "via_derive": self.via_derive}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RngStreamFact":
        return cls(name=data["name"], line=data["line"], col=data["col"],
                   via_derive=data["via_derive"])


@dataclass
class ModuleEffects:
    """Everything phase 4 extracts from one file (cache unit)."""

    functions: list[EffectFact] = field(default_factory=list)
    rng_streams: list[RngStreamFact] = field(default_factory=list)
    #: Module-level mutable names (the read/mutate targets' universe).
    mutables: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"functions": [f.to_dict() for f in self.functions],
                "rng_streams": [r.to_dict() for r in self.rng_streams],
                "mutables": list(self.mutables)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleEffects":
        return cls(
            functions=[EffectFact.from_dict(f) for f in data["functions"]],
            rng_streams=[RngStreamFact.from_dict(r)
                         for r in data["rng_streams"]],
            mutables=tuple(data["mutables"]),
        )


# ---------------------------------------------------------------------------
# The per-file half
# ---------------------------------------------------------------------------


def _io_site(node: ast.Call) -> EffectSite | None:
    dotted = _dotted(node.func)
    tail = dotted.rsplit(".", 1)[-1]
    two = ".".join(dotted.split(".")[-2:]) if "." in dotted else dotted
    if two in CLOCK_CALLS or dotted in CLOCK_CALLS:
        return EffectSite(kind="io", target=two, line=node.lineno,
                          col=node.col_offset, detail="wall clock / entropy")
    if two in FS_CALLS or dotted in FS_CALLS:
        return EffectSite(kind="io", target=two, line=node.lineno,
                          col=node.col_offset, detail="filesystem / env")
    if tail in IO_HEADS:
        return EffectSite(kind="io", target=dotted or tail,
                          line=node.lineno, col=node.col_offset,
                          detail="filesystem / console")
    return None


def _environ_site(node: ast.Attribute) -> EffectSite | None:
    if _dotted(node) == "os.environ":
        return EffectSite(kind="io", target="os.environ", line=node.lineno,
                          col=node.col_offset, detail="process environment")
    return None


class _FunctionWalker(ast.NodeVisitor):
    """Collect (qualname, node) for every def, mirroring DF003's walk."""

    def __init__(self) -> None:
        self.functions: list[tuple[str, ast.AST]] = []
        self._scope: list[str] = []

    def _handle(self, node: ast.AST) -> None:
        qualname = ".".join([*self._scope, node.name])
        self.functions.append((qualname, node))
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _handle
    visit_AsyncFunctionDef = _handle

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()


def _function_effect_fact(qualname: str, func: ast.AST,
                          mutables: set[str],
                          sanctioned_lines: frozenset[int] = frozenset(),
                          ) -> EffectFact:
    own = list(_own_nodes(func))
    declared_global: set[str] = set()
    bound: set[str] = {a.arg for a in ast.walk(func.args)  # type: ignore[attr-defined]
                       if isinstance(a, ast.arg)}
    for node in own:
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    bound -= declared_global

    sites: list[EffectSite] = []
    callees: set[str] = set()
    for node in own:
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted:
                callees.add(dotted.rsplit(".", 1)[-1])
            io = _io_site(node)
            if io is not None:
                sites.append(io)
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mutables
                    and node.func.value.id not in bound):
                sites.append(EffectSite(
                    kind="mutate", target=node.func.value.id,
                    line=node.lineno, col=node.col_offset,
                    detail=f".{node.func.attr}()",
                ))
        elif isinstance(node, ast.Attribute):
            env = _environ_site(node)
            if env is not None:
                sites.append(env)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in mutables and node.id not in bound:
                sites.append(EffectSite(
                    kind="read", target=node.id, line=node.lineno,
                    col=node.col_offset, detail="module-state read",
                ))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                        and target.value.id not in bound):
                    sites.append(EffectSite(
                        kind="mutate", target=target.value.id,
                        line=node.lineno, col=node.col_offset,
                        detail="subscript store",
                    ))
                elif (isinstance(target, ast.Name)
                      and target.id in declared_global):
                    sites.append(EffectSite(
                        kind="global-write", target=target.id,
                        line=node.lineno, col=node.col_offset,
                        detail="global rebind",
                    ))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                        and target.value.id not in bound):
                    sites.append(EffectSite(
                        kind="mutate", target=target.value.id,
                        line=node.lineno, col=node.col_offset,
                        detail="subscript delete",
                    ))

    # A mutator call's receiver Name also surfaces as a Load — drop the
    # shadow "read" so one mutation yields one site, not two.
    mutated_at = {(s.target, s.line) for s in sites if s.kind == "mutate"}
    sites = [s for s in sites
             if not (s.kind == "read" and (s.target, s.line) in mutated_at)]

    local = PURE
    for site in sites:
        if site.kind == "io":
            # A ``noqa[CONC005]`` marker sanctions the io site (e.g. the
            # checkpoint store's atomic writes): CONC005 still reports
            # it — keeping FLOW004's used-marker accounting honest — but
            # the sanctioned site no longer poisons the effect lattice,
            # so transitive callers stay replayable in the certificate.
            if site.line not in sanctioned_lines:
                local = join_effects(local, IO)
        elif site.kind in ("mutate", "global-write"):
            local = join_effects(local, MUTATES)
        else:
            local = join_effects(local, READS)
    deduped = sorted(set(sites), key=lambda s: (s.line, s.col, s.kind,
                                                s.target))
    return EffectFact(
        qualname=qualname,
        line=getattr(func, "lineno", 1),
        local_effect=local,
        sites=tuple(deduped),
        callees=tuple(sorted(callees)),
    )


def _module_rng_streams(tree: ast.Module) -> list[RngStreamFact]:
    streams: list[RngStreamFact] = []
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not is_rng_construction(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                streams.append(RngStreamFact(
                    name=target.id, line=stmt.lineno, col=stmt.col_offset,
                    via_derive=is_derived_rng(value),
                ))
    return streams


def collect_effects(tree: ast.Module,
                    sanctioned_lines: frozenset[int] = frozenset(),
                    ) -> ModuleEffects:
    """The per-file half: one :class:`EffectFact` per function.

    ``sanctioned_lines`` holds the line numbers carrying an explicit
    ``# repro: noqa[CONC005]`` marker: io sites there are deliberate
    (the durable-checkpoint store), stay visible to CONC005 itself, but
    are excluded from the function's ``local_effect``.
    """
    mutables = _module_mutables(tree)
    walker = _FunctionWalker()
    walker.visit(tree)
    facts = [_function_effect_fact(qualname, func, mutables,
                                   sanctioned_lines)
             for qualname, func in walker.functions]
    return ModuleEffects(
        functions=facts,
        rng_streams=_module_rng_streams(tree),
        mutables=tuple(sorted(mutables)),
    )


# ---------------------------------------------------------------------------
# The project half
# ---------------------------------------------------------------------------


@dataclass
class EffectAnalysis:
    """Fixpoint result over the whole project."""

    #: (path, qualname) -> propagated effect (callees joined in).
    effects: dict[tuple[str, str], str]
    #: Functions reachable from campaign/core worker entry points.
    worker_reachable: frozenset[tuple[str, str]]
    #: (path, qualname) -> the underlying per-function fact.
    facts: dict[tuple[str, str], EffectFact]
    #: (path, mutable name) pairs some function body actually mutates —
    #: the "contested" module state CONC001 cares about.
    contested: frozenset[tuple[str, str]]

    def effect_of(self, path: str, qualname: str) -> str:
        return self.effects.get((path, qualname), PURE)

    def is_worker_reachable(self, path: str, qualname: str) -> bool:
        return (path, qualname) in self.worker_reachable


def _package_of(model: "ProjectModel", path: str) -> str:
    mod = model.by_path.get(path)
    return mod.package if mod is not None else ""


def propagate_effects(model: "ProjectModel") -> EffectAnalysis:
    """Run the effect lattice and worker-reachability to fixpoint."""
    facts: dict[tuple[str, str], EffectFact] = {}
    by_name: dict[str, list[tuple[str, str]]] = {}
    contested: set[tuple[str, str]] = set()
    for path in sorted(model.effects):
        module_effects = model.effects[path]
        for fact in module_effects.functions:
            key = (path, fact.qualname)
            facts[key] = fact
            by_name.setdefault(fact.qualname.rsplit(".", 1)[-1],
                               []).append(key)
            for site in fact.sites:
                if site.kind in ("mutate", "global-write"):
                    contested.add((path, site.target))

    # Effect fixpoint: effects only climb a 4-level lattice, so simple
    # round-robin iteration terminates quickly and deterministically.
    effects = {key: fact.local_effect for key, fact in facts.items()}
    ordered = sorted(facts)
    changed = True
    while changed:
        changed = False
        for key in ordered:
            current = effects[key]
            for callee in facts[key].callees:
                for target in by_name.get(callee, ()):
                    current = join_effects(current, effects[target])
            if current != effects[key]:
                effects[key] = current
                changed = True

    # Worker reachability: closure from every function of the entry
    # packages over the same name-resolved call edges.
    reachable: set[tuple[str, str]] = set()
    work: list[tuple[str, str]] = []
    for key in ordered:
        if _package_of(model, key[0]) in WORKER_ENTRY_PACKAGES:
            reachable.add(key)
            work.append(key)
    while work:
        key = work.pop()
        for callee in facts[key].callees:
            for target in by_name.get(callee, ()):
                if target not in reachable:
                    reachable.add(target)
                    work.append(target)

    return EffectAnalysis(
        effects=effects,
        worker_reachable=frozenset(reachable),
        facts=facts,
        contested=frozenset(contested),
    )


def summarize_effects(analysis: EffectAnalysis,
                      paths: Iterable[str]) -> dict[str, int]:
    """Effect-level histogram over the functions of ``paths``."""
    wanted = set(paths)
    counts = {PURE: 0, READS: 0, MUTATES: 0, IO: 0}
    for (path, _), effect in analysis.effects.items():
        if path in wanted:
            counts[effect] += 1
    return counts
