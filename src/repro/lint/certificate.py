"""The shard-safety certificate: phase 4's machine-readable verdict.

``python -m repro.lint --shard-safety repro.campaign`` distils one
project-mode lint run into a deterministic JSON document the scheduler
work can *gate on*: per-symbol effect classifications for the target
package, a pass/fail verdict per CONC rule, the worker-reachable
surface summary, and a SHA-256 digest over the whole payload.  CI
regenerates the certificate and fails on digest drift against the
committed ``bench_results/shard_safety.json`` — so any change that
makes previously-safe code unsafe (or silently widens the worker
surface) turns red in review instead of at campaign scale.

Determinism contract: no timestamps, no absolute paths, sorted keys,
sorted symbol/finding lists — two runs over the same tree are
byte-identical (that property is itself under test).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.conc_rules import default_conc_rules
from repro.lint.effects import EFFECT_RANK, EffectAnalysis
from repro.lint.rules import RULESET_VERSION
from repro.lint.symbols import module_name_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintRun

#: Bumped when the certificate layout changes incompatibly.
CERTIFICATE_SCHEMA_VERSION = 1

#: Default committed location (bench_results/ is the repo's home for
#: generated-and-committed gate artifacts).
DEFAULT_CERTIFICATE_PATH = "bench_results/shard_safety.json"


def _relative_posix(path: str) -> str:
    """Repo-relative posix path, best effort (absolute inputs are cut
    at the last ``src``/``tests``/``benchmarks`` component)."""
    posix = Path(path).as_posix()
    for anchor in ("src/", "tests/", "benchmarks/", "examples/"):
        index = posix.rfind(anchor)
        if index != -1:
            return posix[index:]
    return posix


def build_certificate(run: "LintRun", target: str) -> dict:
    """Assemble the certificate document (digest included) from a
    ``project=True`` lint run whose :attr:`LintRun.effects` is set."""
    analysis = run.effects
    if not isinstance(analysis, EffectAnalysis):
        raise ValueError(
            "shard-safety needs a project-mode run with CONC rules "
            "enabled (LintRun.effects is missing)"
        )

    conc_codes = [rule.code for rule in default_conc_rules()]
    conc_findings = sorted(f for f in run.findings
                           if f.rule in set(conc_codes))

    symbols = []
    for (path, qualname), fact in sorted(analysis.facts.items()):
        module = module_name_for(path)
        if module != target and not module.startswith(target + "."):
            continue
        symbols.append({
            "module": module,
            "qualname": qualname,
            "line": fact.line,
            "effect": analysis.effect_of(path, qualname),
            "local_effect": fact.local_effect,
            "worker_reachable": analysis.is_worker_reachable(path, qualname),
            "sites": len(fact.sites),
        })
    symbols.sort(key=lambda s: (s["module"], s["qualname"]))

    histogram = {effect: 0 for effect in EFFECT_RANK}
    for key in analysis.worker_reachable:
        histogram[analysis.effects[key]] += 1

    rules = {}
    for rule in default_conc_rules():
        count = sum(1 for f in conc_findings if f.rule == rule.code)
        rules[rule.code] = {
            "name": rule.name,
            "findings": count,
            "verdict": "pass" if count == 0 else "fail",
        }

    document = {
        "schema_version": CERTIFICATE_SCHEMA_VERSION,
        "tool": "repro.lint --shard-safety",
        "ruleset_version": RULESET_VERSION,
        "target": target,
        "rules": rules,
        "symbols": symbols,
        "summary": {
            "functions_analyzed": len(analysis.facts),
            "worker_reachable": len(analysis.worker_reachable),
            "worker_effects": histogram,
            "target_symbols": len(symbols),
            "conc_findings": len(conc_findings),
            "safe": not conc_findings,
        },
        "findings": [
            {
                "path": _relative_posix(f.path),
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in conc_findings
        ],
    }
    document["digest"] = certificate_digest(document)
    return document


def certificate_digest(document: dict) -> str:
    """SHA-256 over the canonical JSON form, ``digest`` key excluded."""
    payload = {k: v for k, v in document.items() if k != "digest"}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def render_certificate(document: dict) -> str:
    """Canonical serialisation: sorted keys, two-space indent, trailing
    newline — byte-identical across runs and platforms."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
