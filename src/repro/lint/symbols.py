"""Per-module symbol tables: phase 1 of the whole-program analysis.

While the per-file rule walk looks for *local* violations, the project
pass (``repro.lint.project``) needs a compact, serialisable summary of
every module: what it defines, what it exports, what it imports, which
names it references and which dotted names it calls.  That summary is a
:class:`ModuleSymbols` — cheap to build (one extra AST walk), cheap to
store (plain JSON, so the incremental cache can skip re-parsing
unchanged files entirely) and rich enough to drive the interprocedural
FLOW rules: seed-drop detection, dead-export analysis, import-cycle
search and event-emission coverage.

The extractor deliberately stays approximate: it resolves *names*, not
objects.  That is the right trade-off for a linter — no imports are
executed, a broken module cannot take the analysis down with it, and
the model stays deterministic across platforms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Directory names that anchor a dotted module name for files outside
#: the ``repro`` package (reference corpus roots).
_ROOT_DIRS = ("tests", "examples", "benchmarks")


def module_name_for(path: str | Path) -> str:
    """Dotted module name for ``path``, best effort.

    ``.../src/repro/core/bandit.py`` -> ``repro.core.bandit``;
    ``.../tests/test_x.py`` -> ``tests.test_x``; anything else falls
    back to the file stem.  ``__init__`` components are dropped so a
    package's name is the directory's dotted path.
    """
    parts = list(Path(path).parts)
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index < len(parts) - 1:
            anchor = index
            break
    if anchor is None:
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] in _ROOT_DIRS:
                anchor = index
                break
    if anchor is None:
        return Path(path).stem
    dotted = parts[anchor:]
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass(frozen=True)
class ImportRecord:
    """One ``import`` / ``from ... import`` statement, unresolved."""

    module: str              # dotted module as written ("" for `from . import x`)
    names: tuple[str, ...]   # imported names for from-imports, () for plain
    level: int               # relative-import level (0 = absolute)
    line: int
    is_from: bool
    #: True for real module-scope imports.  Function-scope (lazy) and
    #: ``if TYPE_CHECKING:`` imports are recorded for the reference
    #: corpus but excluded from the import graph — deferring an import
    #: is exactly how a runtime cycle is broken, so FLOW003 must not
    #: count those edges.
    toplevel: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {"module": self.module, "names": list(self.names),
                "level": self.level, "line": self.line,
                "is_from": self.is_from, "toplevel": self.toplevel}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ImportRecord":
        return cls(module=data["module"], names=tuple(data["names"]),
                   level=data["level"], line=data["line"],
                   is_from=data["is_from"], toplevel=data["toplevel"])


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition (any nesting depth)."""

    name: str
    qualname: str            # dotted within the module, e.g. "SBCrawler.crawl"
    line: int
    params: tuple[str, ...]  # positional + keyword-only parameter names
    is_public: bool          # public name inside only public classes
    is_method: bool
    is_stub: bool            # body is only docstring/.../pass/raise
    loaded: tuple[str, ...]  # sorted names read (Load context) in the body
    #: Sorted attribute names accessed in the body (``self.step`` ->
    #: ``step``).  Kept separate from ``loaded`` — FLOW001's seed-drop
    #: check must not treat an unrelated attribute as a parameter use —
    #: and consumed by DF003's method-call reachability edges.
    attrs: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "qualname": self.qualname,
                "line": self.line, "params": list(self.params),
                "is_public": self.is_public, "is_method": self.is_method,
                "is_stub": self.is_stub, "loaded": list(self.loaded),
                "attrs": list(self.attrs)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionInfo":
        return cls(name=data["name"], qualname=data["qualname"],
                   line=data["line"], params=tuple(data["params"]),
                   is_public=data["is_public"], is_method=data["is_method"],
                   is_stub=data["is_stub"], loaded=tuple(data["loaded"]),
                   attrs=tuple(data.get("attrs", ())))


@dataclass(frozen=True)
class ClassInfo:
    """One class definition (module or class scope)."""

    name: str
    line: int
    bases: tuple[str, ...]   # dotted base names as written
    is_public: bool

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line,
                "bases": list(self.bases), "is_public": self.is_public}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassInfo":
        return cls(name=data["name"], line=data["line"],
                   bases=tuple(data["bases"]), is_public=data["is_public"])


@dataclass(frozen=True)
class ModuleSymbols:
    """Everything the project pass needs to know about one module."""

    path: str                # path string as given to the linter
    module: str              # dotted module name (see module_name_for)
    package: str             # first-level subpackage under repro, or ""
    is_package: bool         # file is an __init__.py
    exports: tuple[tuple[str, int], ...]   # __all__ entries with line numbers
    functions: tuple[FunctionInfo, ...]
    classes: tuple[ClassInfo, ...]
    imports: tuple[ImportRecord, ...]
    refs: tuple[str, ...]    # sorted identifiers referenced anywhere
    calls: tuple[str, ...]   # sorted dotted names that are called

    # -- derived views ---------------------------------------------------

    def ref_set(self) -> frozenset[str]:
        return frozenset(self.refs)

    def call_heads(self) -> frozenset[str]:
        """Last components of every called dotted name."""
        return frozenset(name.rsplit(".", 1)[-1] for name in self.calls)

    def star_imports(self) -> list[ImportRecord]:
        return [rec for rec in self.imports
                if rec.is_from and "*" in rec.names]

    # -- serialisation (incremental cache) -------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "package": self.package,
            "is_package": self.is_package,
            "exports": [[name, line] for name, line in self.exports],
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "imports": [i.to_dict() for i in self.imports],
            "refs": list(self.refs),
            "calls": list(self.calls),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleSymbols":
        return cls(
            path=data["path"],
            module=data["module"],
            package=data["package"],
            is_package=data["is_package"],
            exports=tuple((name, line) for name, line in data["exports"]),
            functions=tuple(FunctionInfo.from_dict(f)
                            for f in data["functions"]),
            classes=tuple(ClassInfo.from_dict(c) for c in data["classes"]),
            imports=tuple(ImportRecord.from_dict(i)
                          for i in data["imports"]),
            refs=tuple(data["refs"]),
            calls=tuple(data["calls"]),
        )


def _is_stub_body(body: list[ast.stmt]) -> bool:
    """Docstring/``...``/``pass``/``raise`` only — an interface stub."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        if isinstance(stmt, ast.Raise):
            continue  # raise NotImplementedError and friends
        return False
    return True


def _extract_exports(tree: ast.Module) -> tuple[tuple[str, int], ...]:
    exports: list[tuple[str, int]] = []
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in stmt.targets):
                value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__all__":
                value = stmt.value
        if value is None or not isinstance(value, (ast.List, ast.Tuple)):
            continue
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value,
                                                                str):
                exports.append((element.value, element.lineno))
    return tuple(exports)


class _SymbolVisitor(ast.NodeVisitor):
    """Single walk collecting defs, imports, references and call sites."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        self.imports: list[ImportRecord] = []
        self.refs: set[str] = set()
        self.calls: set[str] = set()
        #: (kind, name, is_public) scope stack; kind in {"class", "func"}.
        self._scope: list[tuple[str, str, bool]] = []
        #: Nesting depth of ``if TYPE_CHECKING:`` blocks.
        self._type_checking: int = 0

    # -- defs ------------------------------------------------------------

    def _public_context(self) -> bool:
        """True when every enclosing scope is a public *class* (methods of
        public classes are API surface; locals of functions are not)."""
        return all(kind == "class" and public
                   for kind, _, public in self._scope)

    def _qualname(self, name: str) -> str:
        return ".".join([n for _, n, _ in self._scope] + [name])

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        params = tuple(
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        )
        is_method = bool(self._scope) and self._scope[-1][0] == "class"
        public = not node.name.startswith("_") and self._public_context()
        loaded = sorted(
            {child.id for child in ast.walk(node)
             if isinstance(child, ast.Name)
             and isinstance(child.ctx, ast.Load)}
        )
        attrs = sorted(
            {child.attr for child in ast.walk(node)
             if isinstance(child, ast.Attribute)}
        )
        self.functions.append(FunctionInfo(
            name=node.name,
            qualname=self._qualname(node.name),
            line=node.lineno,
            params=params,
            is_public=public,
            is_method=is_method,
            is_stub=_is_stub_body(node.body),
            loaded=tuple(loaded),
            attrs=tuple(attrs),
        ))
        self._scope.append(("func", node.name, False))
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = tuple(filter(None, (_dotted_name(b) for b in node.bases)))
        public = not node.name.startswith("_") and self._public_context()
        self.classes.append(ClassInfo(
            name=node.name, line=node.lineno, bases=bases, is_public=public,
        ))
        self._scope.append(("class", node.name, public))
        self.generic_visit(node)
        self._scope.pop()

    # -- imports ---------------------------------------------------------

    def _at_runtime_toplevel(self) -> bool:
        return not self._scope and self._type_checking == 0

    def visit_If(self, node: ast.If) -> None:
        guarded = (
            (isinstance(node.test, ast.Name)
             and node.test.id == "TYPE_CHECKING")
            or (isinstance(node.test, ast.Attribute)
                and node.test.attr == "TYPE_CHECKING")
        )
        self.visit(node.test)
        if guarded:
            self._type_checking += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self._type_checking -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append(ImportRecord(
                module=alias.name, names=(), level=0, line=node.lineno,
                is_from=False, toplevel=self._at_runtime_toplevel(),
            ))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        names = tuple(alias.name for alias in node.names)
        self.imports.append(ImportRecord(
            module=node.module or "", names=names, level=node.level,
            line=node.lineno, is_from=True,
            toplevel=self._at_runtime_toplevel(),
        ))
        self.refs.update(name for name in names if name != "*")
        self.generic_visit(node)

    # -- references and calls --------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.refs.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.refs.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted:
            self.calls.add(dotted)
        self.generic_visit(node)


def extract_symbols(tree: ast.Module, path: str | Path) -> ModuleSymbols:
    """Build the :class:`ModuleSymbols` summary for one parsed module."""
    visitor = _SymbolVisitor()
    visitor.visit(tree)
    path = str(path)
    module = module_name_for(path)
    package = ""
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        package = parts[1]
    return ModuleSymbols(
        path=path,
        module=module,
        package=package,
        is_package=Path(path).name == "__init__.py",
        exports=_extract_exports(tree),
        functions=tuple(visitor.functions),
        classes=tuple(visitor.classes),
        imports=tuple(visitor.imports),
        refs=tuple(sorted(visitor.refs)),
        calls=tuple(sorted(visitor.calls)),
    )
