"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit codes follow the usual linter contract:

* ``0`` — all linted files are clean;
* ``1`` — findings were reported;
* ``2`` — usage error (unknown path, unknown rule code, bad flags).

``--project`` enables the phase-2 whole-program pass (FLOW rules over
the project symbol graph); it is implied when ``--select`` names a FLOW
code or DF003 (whose report needs the call graph).  The phase-3
dataflow pass (DF rules over per-function CFGs) runs by default and is
turned off with ``--no-dataflow``.  ``--select``/``--disable`` accept
bare family prefixes (``--select DF`` = every DF rule).  Results are
served from the content-hash incremental cache
(``.repro-lint-cache.json``) unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.lint.certificate import (DEFAULT_CERTIFICATE_PATH,
                                    build_certificate, render_certificate)
from repro.lint.conc_rules import default_conc_rules
from repro.lint.config import load_pyproject_config
from repro.lint.df_rules import default_df_rules
from repro.lint.engine import LintUsageError, Linter
from repro.lint.project import default_project_rules
from repro.lint.reporters import (render_json, render_sarif, render_stats,
                                  render_text)
from repro.lint.rules import default_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Default on-disk location of the incremental cache (git-ignored).
DEFAULT_CACHE = ".repro-lint-cache.json"

#: Directories fed to the project model as reference corpus when found
#: under the repository root (alongside whatever paths were linted).
REFERENCE_DIRS = ("src", "tests", "examples", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter for the "
                    "repro codebase (see docs/static_analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="report format (json is stable for CI annotation; sarif is "
             "SARIF 2.1.0 for code-scanning upload)",
    )
    parser.add_argument(
        "--disable", default="",
        help="comma-separated rule codes or family prefixes to turn off "
             "(adds to pyproject)",
    )
    parser.add_argument(
        "--select", default="",
        help="comma-separated rule codes or family prefixes (e.g. DF) to "
             "run exclusively (overrides the pyproject disable list, ruff "
             "semantics)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: search upward from cwd)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--project", action=argparse.BooleanOptionalAction, default=None,
        help="run the whole-program FLOW pass over the project symbol "
             "graph (default: only when --select names a FLOW rule or "
             "DF003)",
    )
    parser.add_argument(
        "--dataflow", action=argparse.BooleanOptionalAction, default=True,
        help="run the per-function CFG/dataflow DF pass "
             "(--no-dataflow turns phase 3 off)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-phase timing and cache hit/miss counts to stderr",
    )
    parser.add_argument(
        "--cache", default=DEFAULT_CACHE, metavar="PATH",
        help=f"incremental cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental cache entirely",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--shard-safety", default=None, metavar="PACKAGE",
        help="emit the shard-safety certificate for a dotted package "
             "(e.g. repro.campaign); implies --project and writes the "
             "JSON document to --cert-out",
    )
    parser.add_argument(
        "--cert-out", default=DEFAULT_CERTIFICATE_PATH, metavar="PATH",
        help="where --shard-safety writes the certificate "
             f"(default: {DEFAULT_CERTIFICATE_PATH})",
    )
    return parser


def _discover_reference_roots(paths: list[str]) -> list[Path]:
    """``src``/``tests``/``examples``/``benchmarks`` under the repo root.

    The root is the nearest ancestor of the first path (falling back to
    the working directory) that holds a ``pyproject.toml``; without one
    the project model sees only the linted paths themselves.
    """
    start = Path(paths[0]) if paths else Path.cwd()
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for parent in [start, *start.parents]:
        if (parent / "pyproject.toml").is_file():
            return [parent / name for name in REFERENCE_DIRS
                    if (parent / name).is_dir()]
    return []


def _expand_families(tokens: set[str], known: set[str]) -> set[str]:
    """Expand bare family prefixes (``DF``, ``FLOW``) to their codes."""
    families: dict[str, set[str]] = {}
    for code in known:
        families.setdefault(code.rstrip("0123456789"), set()).add(code)
    expanded: set[str] = set()
    for token in tokens:
        expanded.update(families.get(token, {token}))
    return expanded


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    project_rules = default_project_rules()
    df_rules = default_df_rules()
    conc_rules = default_conc_rules()
    if args.list_rules:
        for rule in [*rules, *project_rules, *df_rules, *conc_rules]:
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return EXIT_CLEAN

    known = {rule.code for rule in rules}
    known.update(rule.code for rule in project_rules)
    known.update(rule.code for rule in df_rules)
    known.update(rule.code for rule in conc_rules)
    selected = {c.strip().upper() for c in args.select.split(",") if c.strip()}
    disabled = {c.strip().upper() for c in args.disable.split(",") if c.strip()}
    selected = _expand_families(selected, known)
    disabled = _expand_families(disabled, known)
    unknown = (selected | disabled) - known
    if unknown:
        print(f"error: unknown rule code(s): {sorted(unknown)}",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        if args.no_config:
            from repro.lint.config import RuleConfig

            config = RuleConfig()
        else:
            config = load_pyproject_config(args.config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if selected:
        rules = [rule for rule in rules if rule.code in selected]
        project_rules = [rule for rule in project_rules
                         if rule.code in selected]
        df_rules = [rule for rule in df_rules if rule.code in selected]
        conc_rules = [rule for rule in conc_rules if rule.code in selected]
        # An explicit --select wins over the pyproject disable list
        # (ruff semantics): lift the selected codes out of `disable` so
        # the Linter does not silently drop them again.
        config = replace(config, disable=config.disable - selected)
    if disabled:
        rules = [rule for rule in rules if rule.code not in disabled]
        project_rules = [rule for rule in project_rules
                         if rule.code not in disabled]
        df_rules = [rule for rule in df_rules if rule.code not in disabled]
        conc_rules = [rule for rule in conc_rules
                      if rule.code not in disabled]
    if not args.dataflow:
        df_rules = []  # --no-dataflow wins, even over an explicit select

    project = args.project
    if project is None:
        # DF003 and the CONC family only materialise findings in the
        # project phase (reachability needs the call graph), so
        # selecting them implies --project, like selecting a FLOW rule.
        project = (any(code.startswith("FLOW") for code in selected)
                   or any(code.startswith("CONC") for code in selected)
                   or "DF003" in selected)
    if args.shard_safety is not None:
        project = True  # the certificate is a whole-program artifact
        if not conc_rules:
            print("error: --shard-safety needs the CONC rules enabled",
                  file=sys.stderr)
            return EXIT_USAGE
    cache_path = None if args.no_cache else args.cache
    reference_roots = _discover_reference_roots(args.paths) if project else ()

    try:
        linter = Linter(config=config, rules=rules,
                        project_rules=project_rules, df_rules=df_rules,
                        conc_rules=conc_rules)
        run = linter.run(args.paths, project=project, cache_path=cache_path,
                         reference_roots=reference_roots)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.shard_safety is not None:
        certificate = build_certificate(run, args.shard_safety)
        out_path = Path(args.cert_out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(render_certificate(certificate),
                            encoding="utf-8")
        summary = certificate["summary"]
        print(
            f"shard-safety[{args.shard_safety}]: "
            f"{'SAFE' if summary['safe'] else 'UNSAFE'} — "
            f"{summary['conc_findings']} CONC finding(s), "
            f"{summary['worker_reachable']} worker-reachable function(s), "
            f"digest {certificate['digest'][:12]} -> {out_path}"
        )

    renderers = {"json": render_json, "sarif": render_sarif,
                 "human": render_text}
    print(renderers[args.format](run.findings, cache=run.cache))
    if args.stats:
        print(render_stats(run), file=sys.stderr)
    return EXIT_FINDINGS if run.findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
