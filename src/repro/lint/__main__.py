"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit codes follow the usual linter contract:

* ``0`` — all linted files are clean;
* ``1`` — findings were reported;
* ``2`` — usage error (unknown path, unknown rule code, bad flags).
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.config import load_pyproject_config
from repro.lint.engine import LintUsageError, Linter
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import default_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter for the "
                    "repro codebase (see docs/static_analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (json is stable for CI annotation)",
    )
    parser.add_argument(
        "--disable", default="",
        help="comma-separated rule codes to turn off (adds to pyproject)",
    )
    parser.add_argument(
        "--select", default="",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: search upward from cwd)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return EXIT_CLEAN

    known = {rule.code for rule in rules}
    selected = {c.strip().upper() for c in args.select.split(",") if c.strip()}
    disabled = {c.strip().upper() for c in args.disable.split(",") if c.strip()}
    unknown = (selected | disabled) - known
    if unknown:
        print(f"error: unknown rule code(s): {sorted(unknown)}",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        if args.no_config:
            from repro.lint.config import RuleConfig

            config = RuleConfig()
        else:
            config = load_pyproject_config(args.config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if selected:
        rules = [rule for rule in rules if rule.code in selected]
    if disabled:
        rules = [rule for rule in rules if rule.code not in disabled]

    try:
        linter = Linter(config=config, rules=rules)
        findings = linter.check_paths(args.paths)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
