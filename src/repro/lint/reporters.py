"""Finding reporters: human-readable text and CI-consumable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.lint.engine import Finding


def render_text(findings: Iterable[Finding]) -> str:
    """``path:line:col: CODE message`` per finding plus a summary line."""
    findings = list(findings)
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    if not findings:
        lines.append("repro.lint: clean (0 findings)")
    else:
        by_rule = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"repro.lint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} ({breakdown})"
        )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document for CI annotation tooling."""
    findings = list(findings)
    document = {
        "tool": "repro.lint",
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
