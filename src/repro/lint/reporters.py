"""Finding reporters: human-readable text and CI-consumable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.cache import CacheStats


def _cache_line(cache: "CacheStats") -> str:
    if not cache.enabled:
        return "cache: disabled"
    return (f"cache: {cache.files} files, {cache.hits} hits, "
            f"{cache.misses} misses")


def render_text(
    findings: Iterable[Finding], cache: "CacheStats | None" = None
) -> str:
    """``path:line:col: CODE message`` per finding plus a summary line."""
    findings = list(findings)
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    if not findings:
        lines.append("repro.lint: clean (0 findings)")
    else:
        by_rule = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"repro.lint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} ({breakdown})"
        )
    if cache is not None and cache.enabled:
        lines.append(_cache_line(cache))
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding], cache: "CacheStats | None" = None
) -> str:
    """Stable JSON document for CI annotation tooling.

    The ``cache`` key carries the incremental-cache statistics of the
    run (``{"enabled", "files", "hits", "misses"}``) so CI can assert
    warm runs really are warm; it is ``null`` for cache-less calls.
    """
    findings = list(findings)
    document = {
        "tool": "repro.lint",
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
        "cache": cache.to_dict() if cache is not None else None,
    }
    return json.dumps(document, indent=2, sort_keys=True)
