"""Finding reporters: human-readable text and CI-consumable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Iterable

from repro.lint.engine import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.cache import CacheStats
    from repro.lint.engine import LintRun


def finding_category(rule: str) -> str:
    """Rule-family prefix of a code: ``DET001`` -> ``DET``, ``E999`` ->
    ``E``.  Stable across releases — CI dashboards group on it."""
    return rule.rstrip("0123456789")


def _cache_line(cache: "CacheStats") -> str:
    if not cache.enabled:
        return "cache: disabled"
    return (f"cache: {cache.files} files, {cache.hits} hits, "
            f"{cache.misses} misses")


def render_text(
    findings: Iterable[Finding], cache: "CacheStats | None" = None
) -> str:
    """``path:line:col: CODE message`` per finding plus a summary line."""
    findings = list(findings)
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    if not findings:
        lines.append("repro.lint: clean (0 findings)")
    else:
        by_rule = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"repro.lint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} ({breakdown})"
        )
    if cache is not None and cache.enabled:
        lines.append(_cache_line(cache))
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding], cache: "CacheStats | None" = None
) -> str:
    """Stable JSON document for CI annotation tooling.

    The ``cache`` key carries the incremental-cache statistics of the
    run (``{"enabled", "files", "hits", "misses"}``) so CI can assert
    warm runs really are warm; it is ``null`` for cache-less calls.

    Each finding carries a ``category`` (its rule-family prefix: DET /
    COR / API / FLOW / DF) and the list is sorted by (path, line, col,
    rule, message) regardless of input order, so two runs over the same
    tree produce byte-identical reports.
    """
    findings = sorted(findings)
    document = {
        "tool": "repro.lint",
        "count": len(findings),
        "findings": [
            {**finding.to_dict(), "category": finding_category(finding.rule)}
            for finding in findings
        ],
        "cache": cache.to_dict() if cache is not None else None,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    findings: Iterable[Finding], cache: "CacheStats | None" = None
) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning annotations.

    One run, one driver (``repro.lint``), the full default rule
    catalogue under ``tool.driver.rules`` and one ``result`` per
    finding.  Region columns are 1-based per the SARIF spec (findings
    store 0-based AST offsets).  ``cache`` is accepted for renderer
    interface parity and ignored — cache statistics are not part of the
    SARIF data model.
    """
    del cache
    from repro.lint.conc_rules import default_conc_rules
    from repro.lint.df_rules import default_df_rules
    from repro.lint.project import default_project_rules
    from repro.lint.rules import RULESET_VERSION, default_rules

    catalogue = [*default_rules(), *default_project_rules(),
                 *default_df_rules(), *default_conc_rules()]
    sarif_rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.rationale},
        }
        for rule in catalogue
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings)
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "version": RULESET_VERSION,
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_stats(run: "LintRun") -> str:
    """Per-phase timing + cache accounting for ``--stats`` (stderr)."""
    timings = run.timings or {}
    per_file = timings.get("per_file", 0.0)
    dataflow = timings.get("dataflow", 0.0)
    effects = timings.get("effects", 0.0)
    project = timings.get("project", 0.0)
    lines = [
        f"phase per-file: {per_file:.3f}s "
        f"(dataflow {dataflow:.3f}s, {run.files} files)",
        f"phase effects: {effects:.3f}s",
    ]
    if run.project:
        lines.append(f"phase project: {project:.3f}s")
    lines.append(_cache_line(run.cache))
    return "\n".join(lines)
