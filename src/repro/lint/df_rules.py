"""Phase 3 of the analysis: dataflow rules (the DF family).

Each rule runs per function over the :mod:`repro.lint.cfg` graph via
:meth:`DataflowRule.check_function`, reporting through the ordinary
:class:`~repro.lint.engine.FileContext` so ``# repro: noqa[DF00x]``
markers and FLOW004 stale-marker accounting apply unchanged.  DF003 is
the exception: its per-file half (:meth:`DataflowRule.collect_module`)
only *collects* mutation facts — cheap, serialisable, cached per file —
and its whole-program half (:meth:`DataflowRule.check_project`) joins
those facts with the FLOW symbol graph to decide which mutations are
reachable from crawler/campaign entry points.

The rules are deliberately lint-grade, not verifier-grade: names, not
objects, are tracked; aliasing through containers and attributes counts
as an *escape* (conservatively silencing DF002 rather than guessing);
and exception edges over-approximate where control can go.  Every
asymmetry is tuned so a report is worth reading — false negatives are
acceptable, false positives on idiomatic code are not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar

from repro.lint.cfg import CFG, EXIT, build_cfg, function_defs
from repro.lint.config import RuleConfig
from repro.lint.dataflow import (ForwardAnalysis, ReachingDefinitions,
                                 header_exprs, solve_forward, stmt_defs,
                                 stmt_uses)
from repro.lint.engine import FileContext, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectModel

#: Packages whose functions count as crawler/campaign entry points for
#: DF003 reachability (the layers the worker-pool engine will run).
ENTRY_PACKAGES = ("core", "campaign", "deepweb", "baselines")

#: ``random.Random`` drawing methods — DF001 sinks when the receiver is
#: a fixed-seed stream, and the consumption sites DET003 already guards.
RNG_METHODS = frozenset({
    "sample", "shuffle", "choice", "choices", "random", "randint",
    "randrange", "uniform", "gauss", "normalvariate", "lognormvariate",
})

#: Free functions that consume an RNG argument (repro.utils.sampling).
SAMPLING_FUNCS = frozenset({
    "weighted_choice", "bounded_lognormal", "clipped_normal_int",
    "sample", "shuffle",
})

#: Constructors whose result is an open resource DF002 tracks.
RESOURCE_CONSTRUCTORS = frozenset({"open", "JsonlSink", "WarcWriter"})

#: Method names that release a tracked resource.
CLOSE_METHODS = frozenset({"close", "__exit__"})

#: Container-mutating method names for DF003.
MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "pop", "popitem", "remove",
    "discard", "clear", "insert", "setdefault", "sort",
})

#: Constructor names whose module-level result is mutable (DF003).
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "defaultdict", "Counter", "deque",
    "OrderedDict",
})

#: Name components that mark a call as *handling* a retry error (DF005):
#: charging the ledger, emitting an observability event, re-recording.
HANDLED_TOKENS = ("record", "charge", "spend", "debit", "emit", "event",
                  "ledger")


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class DataflowRule:
    """Base class for DF rules; all three hooks default to no-ops.

    ``check_function`` runs once per function definition with its CFG;
    ``collect_module`` runs once per file and returns serialisable facts
    the incremental cache stores; ``check_project`` runs in the project
    phase over the assembled model (facts + symbol graph).
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        pass

    def collect_module(self, tree: ast.AST, ctx: FileContext) -> list:
        return []

    def check_project(self, model: "ProjectModel",
                      config: RuleConfig) -> list[Finding]:
        return []


# ---------------------------------------------------------------------------
# DF001 — unseeded-rng-taint
# ---------------------------------------------------------------------------


def _fixed_seed_rng(expr: ast.AST) -> bool:
    """``random.Random()`` / ``random.Random(<literals>)`` — a stream no
    caller can decorrelate (parameter-seeded constructions are fine)."""
    if not isinstance(expr, ast.Call):
        return False
    if _dotted(expr.func) not in ("random.Random", "Random"):
        return False
    return (all(isinstance(a, ast.Constant) for a in expr.args)
            and all(isinstance(k.value, ast.Constant)
                    for k in expr.keywords))


class _RngTaint(ForwardAnalysis):
    def transfer(self, fact: frozenset, stmt: ast.AST) -> frozenset:
        tainted = {name for name, _ in fact}
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            target = stmt.targets[0].id
            result = {d for d in fact if d[0] != target}
            if _fixed_seed_rng(stmt.value):
                result.add((target, stmt.value.lineno))
            elif (isinstance(stmt.value, ast.Name)
                  and stmt.value.id in tainted):
                line = next(l for n, l in fact if n == stmt.value.id)
                result.add((target, line))
            return frozenset(result)
        killed = {name for name, _ in stmt_defs(stmt)}
        if killed:
            return frozenset(d for d in fact if d[0] not in killed)
        return fact


class UnseededRngTaintRule(DataflowRule):
    """DF001 — a fixed-seed RNG must not reach a sampling/shuffle call.

    DET001 bans the *global* stream and API001 demands a seed parameter
    at the API boundary, but neither sees a ``random.Random(42)`` built
    locally and handed to ``sample``/``shuffle``/``weighted_choice`` —
    a stream hard-wired to one seed, so seed-averaged experiments
    (paper Sec. 4.1) silently reuse identical draws.  The taint lattice
    tracks fixed-seed constructions through plain aliasing to any
    drawing method or sampling helper; construct through
    ``repro.utils.rng.derive_rng`` instead.
    """

    code = "DF001"
    name = "unseeded-rng-taint"
    rationale = ("a literal-seeded RNG reaching a sampling call pins the "
                 "stream to one seed; derive it via derive_rng")

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        if ctx.is_test_file() or ctx.config.is_rng_module(ctx.posix_path):
            return
        analysis = _RngTaint()
        in_facts, _ = solve_forward(cfg, analysis)
        seen: set[tuple[int, int]] = set()
        for index in sorted(in_facts):
            fact = in_facts[index]
            for stmt in cfg.blocks[index].stmts:
                tainted = {name for name, _ in fact}
                for expr in header_exprs(stmt):
                    self._scan(expr, tainted, seen, ctx)
                fact = analysis.transfer(fact, stmt)

    def _scan(self, expr: ast.AST, tainted: set[str],
              seen: set[tuple[int, int]], ctx: FileContext) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in RNG_METHODS:
                receiver = func.value
                hit = (isinstance(receiver, ast.Name)
                       and receiver.id in tainted)
                if hit or _fixed_seed_rng(receiver):
                    seen.add(key)
                    ctx.report(self, node, (
                        f"fixed-seed RNG reaches .{func.attr}(); the "
                        "stream cannot be decorrelated across runs — "
                        "derive it via repro.utils.rng.derive_rng"
                    ))
                    continue
            head = _dotted(func).rsplit(".", 1)[-1]
            if head in SAMPLING_FUNCS:
                values = [*node.args, *(k.value for k in node.keywords)]
                if any(isinstance(a, ast.Name) and a.id in tainted
                       for a in values):
                    seen.add(key)
                    ctx.report(self, node, (
                        f"fixed-seed RNG passed to {head}(); the stream "
                        "cannot be decorrelated across runs — derive it "
                        "via repro.utils.rng.derive_rng"
                    ))


# ---------------------------------------------------------------------------
# DF002 — resource-leak
# ---------------------------------------------------------------------------


def _opens_resource(expr: ast.AST) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    head = _dotted(expr.func).rsplit(".", 1)[-1]
    return head in RESOURCE_CONSTRUCTORS


class _OpenResources(ForwardAnalysis):
    """Fact: ``frozenset[(name, open_line)]`` of locals holding an open,
    unescaped resource.  Escapes (returned, yielded, passed to a call,
    stored anywhere) conservatively stop tracking — ownership moved."""

    def transfer(self, fact: frozenset, stmt: ast.AST) -> frozenset:
        result = set(fact)
        names = {name for name, _ in fact}
        gen: tuple[str, int] | None = None
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _opens_resource(stmt.value)):
            gen = (stmt.targets[0].id, stmt.lineno)
        escaped = self._escaped(stmt, names)
        closed = self._closed(stmt, names)
        rebound = {name for name, _ in stmt_defs(stmt)}
        drop = escaped | closed | rebound
        if drop:
            result = {d for d in result if d[0] not in drop}
        if gen is not None:
            result = {d for d in result if d[0] != gen[0]}
            result.add(gen)
        return frozenset(result)

    def _closed(self, stmt: ast.AST, names: set[str]) -> set[str]:
        closed: set[str] = set()
        for expr in header_exprs(stmt):
            for node in ast.walk(expr):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in CLOSE_METHODS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in names):
                    closed.add(node.func.value.id)
        return closed

    def _escaped(self, stmt: ast.AST, names: set[str]) -> set[str]:
        regions: list[ast.AST] = []
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if getattr(stmt, "value", None) is not None:
                regions.append(stmt.value)
            if getattr(stmt, "exc", None) is not None:
                regions.append(stmt.exc)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None and not _opens_resource(stmt.value):
                regions.append(stmt.value)
        for expr in header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    regions.extend(node.args)
                    regions.extend(k.value for k in node.keywords)
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    if node.value is not None:
                        regions.append(node.value)
                elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
                    regions.extend(node.elts)
                elif isinstance(node, ast.Dict):
                    regions.extend(v for v in node.values)
        escaped: set[str] = set()
        for region in regions:
            for node in ast.walk(region):
                if (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in names):
                    escaped.add(node.id)
        return escaped


class ResourceLeakRule(DataflowRule):
    """DF002 — a locally opened sink/file/WARC writer must be closed on
    every path out of the function.

    A ``JsonlSink`` or ``WarcWriter`` leaked on an early return or
    exception path holds a buffered file handle: events written near the
    end of a crawl silently vanish, and the trace-replay gate diffs a
    truncated file.  Tracking stops when ownership escapes (the handle
    is returned, yielded, passed to a callee or stored on an object) —
    whoever received it owns the close.  ``with`` blocks never trip the
    rule; that is the preferred fix.
    """

    code = "DF002"
    name = "resource-leak"
    rationale = ("a sink/file opened on a path that can exit without "
                 "close() loses buffered crawl data; use with/finally")

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        if ctx.is_test_file():
            return
        in_facts, _ = solve_forward(cfg, _OpenResources())
        leaked = in_facts.get(EXIT, frozenset())
        for name, line in sorted(leaked):
            anchor = ast.Pass()
            anchor.lineno, anchor.col_offset = line, 0
            ctx.report(self, anchor, (
                f"{name!r} opened here can reach a function exit without "
                "close(); wrap it in a with block or close it in finally"
            ))


# ---------------------------------------------------------------------------
# DF003 — shared-mutable-state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutationFact:
    """One mutation of a module-level mutable from inside a function."""

    qualname: str   # function qualname within its module
    target: str     # the module-level name being mutated
    line: int
    col: int
    detail: str     # human-readable mutation kind, e.g. ".append()"

    def to_dict(self) -> dict[str, Any]:
        return {"qualname": self.qualname, "target": self.target,
                "line": self.line, "col": self.col, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MutationFact":
        return cls(qualname=data["qualname"], target=data["target"],
                   line=data["line"], col=data["col"],
                   detail=data["detail"])


def _module_mutables(tree: ast.Module) -> set[str]:
    mutables: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        if not mutable and isinstance(value, ast.Call):
            head = _dotted(value.func).rsplit(".", 1)[-1]
            mutable = head in MUTABLE_CONSTRUCTORS
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not (
                    target.id.startswith("__") and target.id.endswith("__")):
                mutables.add(target.id)
    return mutables


def _own_nodes(func: ast.AST):
    """Nodes belonging to ``func`` itself, not to nested definitions
    (those are visited as functions in their own right)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


class _QualnameVisitor(ast.NodeVisitor):
    """Collect (qualname, node) for every function definition."""

    def __init__(self) -> None:
        self.functions: list[tuple[str, ast.AST]] = []
        self._scope: list[str] = []

    def _handle(self, node: ast.AST) -> None:
        qualname = ".".join([*self._scope, node.name])
        self.functions.append((qualname, node))
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _handle
    visit_AsyncFunctionDef = _handle

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()


class SharedMutableStateRule(DataflowRule):
    """DF003 — module-level mutable containers must not be mutated from
    code reachable from crawler/campaign entry points.

    A module-level ``list``/``dict``/``set`` mutated on the crawl path
    is cross-run *and* cross-worker state: two campaigns in one process
    see each other's entries, and the planned worker-pool engine turns
    the same line into a data race.  The per-file half records mutation
    facts (method mutators, subscript stores, ``global`` rebinds of a
    name the function does not bind locally); the project half keeps
    only facts in functions the symbol graph shows are reachable from
    the entry packages.  Registries filled at import time are fine —
    the rule fires on *function-body* mutations only.
    """

    code = "DF003"
    name = "shared-mutable-state"
    rationale = ("module-level mutables mutated on the crawl path race "
                 "under the worker-pool engine; pass state explicitly")

    def collect_module(self, tree: ast.AST, ctx: FileContext) -> list:
        if ctx.is_test_file():
            return []
        mutables = _module_mutables(tree)
        if not mutables:
            return []
        visitor = _QualnameVisitor()
        visitor.visit(tree)
        facts: list[MutationFact] = []
        for qualname, func in visitor.functions:
            facts.extend(self._function_facts(qualname, func, mutables))
        return sorted(facts, key=lambda f: (f.line, f.col, f.target))

    def _function_facts(self, qualname: str, func: ast.AST,
                        mutables: set[str]) -> list[MutationFact]:
        own = list(_own_nodes(func))
        declared_global: set[str] = set()
        bound: set[str] = {a.arg for a in ast.walk(func.args)  # type: ignore[attr-defined]
                           if isinstance(a, ast.arg)}
        for node in own:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                           ast.Store):
                bound.add(node.id)
        bound -= declared_global

        def shared(name: str) -> bool:
            return name in mutables and name not in bound

        facts: list[MutationFact] = []
        for node in own:
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and shared(node.func.value.id)):
                facts.append(MutationFact(
                    qualname=qualname, target=node.func.value.id,
                    line=node.lineno, col=node.col_offset,
                    detail=f".{node.func.attr}()",
                ))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and shared(target.value.id)):
                        facts.append(MutationFact(
                            qualname=qualname, target=target.value.id,
                            line=node.lineno, col=node.col_offset,
                            detail="subscript store",
                        ))
                    elif (isinstance(target, ast.Name)
                          and target.id in declared_global
                          and target.id in mutables):
                        facts.append(MutationFact(
                            qualname=qualname, target=target.id,
                            line=node.lineno, col=node.col_offset,
                            detail="global rebind",
                        ))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and shared(target.value.id)):
                        facts.append(MutationFact(
                            qualname=qualname, target=target.value.id,
                            line=node.lineno, col=node.col_offset,
                            detail="subscript delete",
                        ))
        return facts

    def check_project(self, model: "ProjectModel",
                      config: RuleConfig) -> list[Finding]:
        reachable = self._reachable_functions(model)
        findings: list[Finding] = []
        for path in sorted(model.df_facts):
            if not model.is_linted(path):
                continue
            for fact in model.df_facts[path].get(self.code, []):
                if (path, fact.qualname) not in reachable:
                    continue
                findings.append(Finding(
                    path=path, line=fact.line, col=fact.col,
                    rule=self.code,
                    message=(
                        f"{fact.qualname}() mutates module-level mutable "
                        f"{fact.target!r} ({fact.detail}) and is reachable "
                        "from crawler/campaign entry points; shared state "
                        "races under concurrent workers — pass it "
                        "explicitly or move it into an object"
                    ),
                ))
        return findings

    def _reachable_functions(self, model: "ProjectModel") -> set:
        """(path, qualname) closure over the name-resolved call graph,
        seeded with every function of the entry packages."""
        by_name: dict[str, list[tuple[str, Any]]] = {}
        for mod in model.by_path.values():
            for func in mod.functions:
                by_name.setdefault(func.name, []).append((mod.path, func))
        work: list[tuple[str, Any]] = []
        reachable: set[tuple[str, str]] = set()
        for mod in model.by_path.values():
            if mod.package not in ENTRY_PACKAGES:
                continue
            for func in mod.functions:
                if (mod.path, func.qualname) not in reachable:
                    reachable.add((mod.path, func.qualname))
                    work.append((mod.path, func))
        while work:
            _, func = work.pop()
            callees = set(func.loaded) | set(getattr(func, "attrs", ()))
            for name in callees:
                for path, target in by_name.get(name, []):
                    key = (path, target.qualname)
                    if key not in reachable:
                        reachable.add(key)
                        work.append((path, target))
        return reachable


# ---------------------------------------------------------------------------
# DF004 — dead-store
# ---------------------------------------------------------------------------


class DeadStoreRule(DataflowRule):
    """DF004 — an assignment never read on any successor path is noise
    at best and a dropped result at worst.

    Reaching definitions marks each ``(name, line)`` definition; any
    definition that reaches a statement *using* the name is live.  Only
    plain single-name assignments are candidates — tuple unpacking,
    augmented assignment, loop targets and underscore names are
    idiomatic ways to discard values and stay exempt, as do names a
    nested function closes over (the closure may read them later).
    """

    code = "DF004"
    name = "dead-store"
    rationale = ("a stored value no path ever reads hides a dropped "
                 "result or leftover refactor debris")

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        if ctx.is_test_file():
            return
        in_facts, _ = solve_forward(cfg, ReachingDefinitions())
        analysis = ReachingDefinitions()
        closure_reads = self._closure_reads(func)
        candidates: dict[tuple[str, int], int] = {}
        live: set[tuple[str, int]] = set()
        for index in sorted(in_facts):
            fact = in_facts[index]
            for stmt in cfg.blocks[index].stmts:
                uses = stmt_uses(stmt)
                for pair in fact:
                    if pair[0] in uses:
                        live.add(pair)
                self._collect_candidates(stmt, closure_reads, candidates)
                fact = analysis.transfer(fact, stmt)
        for (name, line), col in sorted(candidates.items(),
                                        key=lambda kv: (kv[0][1], kv[1])):
            if (name, line) in live:
                continue
            anchor = ast.Pass()
            anchor.lineno, anchor.col_offset = line, col
            ctx.report(self, anchor, (
                f"value assigned to {name!r} is never read on any path "
                "(dead store); drop the binding or use the value"
            ))

    def _collect_candidates(self, stmt: ast.AST, closure_reads: set[str],
                            candidates: dict) -> None:
        target: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
        if (isinstance(target, ast.Name)
                and not target.id.startswith("_")
                and target.id not in closure_reads):
            candidates[(target.id, stmt.lineno)] = stmt.col_offset

    def _closure_reads(self, func: ast.AST) -> set[str]:
        """Names loaded inside nested functions/lambdas — a reaching-defs
        lattice cannot order closure reads, so exempt them outright."""
        reads: set[str] = set()
        for node in ast.walk(func):
            if node is func or not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Lambda)):
                continue
            for child in ast.walk(node):
                if (isinstance(child, ast.Name)
                        and isinstance(child.ctx, ast.Load)):
                    reads.add(child.id)
        return reads


# ---------------------------------------------------------------------------
# DF005 — swallowed-retry-error
# ---------------------------------------------------------------------------


def _retry_exception_names(type_node: ast.AST | None) -> list[str]:
    if type_node is None:
        return []
    nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
             else [type_node])
    names: list[str] = []
    for node in nodes:
        tail = _dotted(node).rsplit(".", 1)[-1]
        if not tail:
            continue
        if ("Timeout" in tail or "Http" in tail or "HTTP" in tail
                or tail in ("ConnectionError", "ConnectionResetError",
                            "RetryError")):
            names.append(tail)
    return names


class SwallowedRetryErrorRule(DataflowRule):
    """DF005 — catching a timeout/HTTP error obliges the handler's
    continuation to account for it.

    The cost model (Tables 2-3) only reproduces if every failed request
    is *visible*: charged to the ledger, recorded in the trace, emitted
    as an observability event — or re-raised.  A handler that swallows
    a retry-class error and carries on lets request counts drift from
    the pages actually fetched.  The check is CFG-reachability from the
    handler: any reachable re-raise or accounting call (``record``/
    ``charge``/``emit``/``ledger``/... in a call name) satisfies it, so
    the common fall-through-to-shared-bookkeeping shape passes without
    annotation.
    """

    code = "DF005"
    name = "swallowed-retry-error"
    rationale = ("a swallowed timeout/HTTP error desyncs the ledger and "
                 "trace from the requests actually made")

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        if ctx.is_test_file():
            return
        for block in cfg.blocks:
            if not block.stmts or not isinstance(block.stmts[0],
                                                 ast.ExceptHandler):
                continue
            handler = block.stmts[0]
            names = _retry_exception_names(handler.type)
            if not names:
                continue
            if self._handled(cfg, block.index):
                continue
            ctx.report(self, handler, (
                f"handler for {'/'.join(names)} neither re-raises nor "
                "reaches any ledger/trace/event accounting; charge the "
                "ledger, emit an event, or re-raise"
            ))

    def _handled(self, cfg: CFG, index: int) -> bool:
        for reachable in cfg.reachable_from(index):
            for stmt in cfg.blocks[reachable].stmts:
                if isinstance(stmt, ast.Raise):
                    return True
                for expr in header_exprs(stmt):
                    for node in ast.walk(expr):
                        if not isinstance(node, ast.Call):
                            continue
                        dotted = _dotted(node.func)
                        parts = dotted.lower().split(".")
                        if any(token in part for part in parts
                               for token in HANDLED_TOKENS):
                            return True
        return False


def default_df_rules() -> list[DataflowRule]:
    """Fresh instances of the DF rule family, in catalogue order."""
    return [
        UnseededRngTaintRule(),
        ResourceLeakRule(),
        SharedMutableStateRule(),
        DeadStoreRule(),
        SwallowedRetryErrorRule(),
    ]
