"""Phase 2 of the whole-program analysis: project model + FLOW rules.

Phase 1 (the per-file walk in :mod:`repro.lint.engine`) produces one
:class:`~repro.lint.symbols.ModuleSymbols` per module.  This module
assembles them into a :class:`ProjectModel` — an import graph and an
approximate (name-resolved) call graph spanning ``src/repro`` plus the
reference corpus (``tests/``, ``examples/``, ``benchmarks/``) — and
runs the interprocedural **FLOW** rule family over it:

* FLOW001 seed-drop — a ``seed``/``rng`` parameter of a public
  ``core/``/``baselines/`` function must be used (reach an RNG
  construction, be forwarded, or be stored), not silently dropped;
* FLOW002 dead-public-api — ``__all__`` exports referenced nowhere in
  src/tests/examples/benchmarks;
* FLOW003 import-cycle — strongly connected components of the import
  graph, reported once per cycle with the full path;
* FLOW004 unused-noqa — suppression markers that no longer suppress
  any finding (per-file *or* project);
* FLOW005 event-emission-coverage — every ``CrawlEvent`` subclass must
  have at least one construction site in library code.

Findings are anchored at real file/line positions so the ordinary
``# repro: noqa[FLOW00x]`` machinery applies — except FLOW004, which
deliberately ignores *bare* markers (a bare ``noqa`` that suppresses
nothing is exactly the defect being reported; keep a marker on purpose
by listing ``FLOW004`` explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterable

from repro.lint.config import RuleConfig
from repro.lint.engine import Finding
from repro.lint.symbols import ModuleSymbols

#: Base-class name that marks an observable event type (FLOW005).
EVENT_BASE = "CrawlEvent"


@dataclass
class ProjectModel:
    """The assembled whole-program view handed to every FLOW rule."""

    #: module name -> symbols, for every analysed file (linted + reference).
    modules: dict[str, ModuleSymbols]
    #: path string -> symbols (paths exactly as they appear in findings).
    by_path: dict[str, ModuleSymbols]
    #: paths explicitly linted — findings may only anchor here.
    linted_paths: frozenset[str]
    #: path -> {line: codes|None} noqa markers of linted files.
    noqa: dict[str, dict[int, frozenset[str] | None]]
    #: path -> {line: set of rule codes a marker actually suppressed};
    #: per-file phase pre-populates this, the engine adds project-phase
    #: suppressions before FLOW004 runs.
    suppressed: dict[str, dict[int, set[str]]]
    #: module -> set of imported modules (edges restricted to the model).
    import_graph: dict[str, set[str]] = field(default_factory=dict)
    #: path -> {DF rule code -> list of per-file facts} from phase 3;
    #: consumed by the DF rules' project halves (e.g. DF003 joins its
    #: mutation facts with the call graph here).
    df_facts: dict[str, dict[str, list]] = field(default_factory=dict)
    #: path -> per-file effect facts from phase 4
    #: (:class:`~repro.lint.effects.ModuleEffects`); consumed by
    #: :func:`repro.lint.effects.propagate_effects` and the CONC rules.
    effects: dict[str, object] = field(default_factory=dict)

    def is_linted(self, path: str) -> bool:
        return path in self.linted_paths

    def record_suppressed(self, finding: Finding) -> None:
        self.suppressed.setdefault(finding.path, {}).setdefault(
            finding.line, set()
        ).add(finding.rule)


def resolve_import(symbols: ModuleSymbols, module: str, level: int) -> str:
    """Absolute dotted target of a (possibly relative) import."""
    if level == 0:
        return module
    base = symbols.module.split(".")
    if not symbols.is_package:
        base = base[:-1]
    base = base[:len(base) - (level - 1)] if level > 1 else base
    return ".".join(base + ([module] if module else [])).strip(".")


def _resolve_to_model(target: str, modules: dict[str, ModuleSymbols]) -> str | None:
    """Deepest prefix of ``target`` that names a module in the model."""
    parts = target.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in modules:
            return candidate
    return None


def build_project(
    symbols: Iterable[ModuleSymbols],
    linted_paths: Iterable[str],
    noqa: dict[str, dict[int, frozenset[str] | None]],
    suppressed: dict[str, dict[int, set[str]]],
    df_facts: dict[str, dict[str, list]] | None = None,
    effects: dict[str, object] | None = None,
) -> ProjectModel:
    """Assemble the project model (import graph included) from phase 1."""
    modules: dict[str, ModuleSymbols] = {}
    by_path: dict[str, ModuleSymbols] = {}
    for mod in symbols:
        modules[mod.module] = mod
        by_path[mod.path] = mod
    graph: dict[str, set[str]] = {name: set() for name in modules}
    for name, mod in modules.items():
        for rec in mod.imports:
            if not rec.toplevel:
                continue  # lazy / TYPE_CHECKING imports break cycles
            target = resolve_import(mod, rec.module, rec.level)
            resolved = _resolve_to_model(target, modules) if target else None
            if resolved is not None and resolved != name:
                graph[name].add(resolved)
            if rec.is_from and target:
                for imported in rec.names:
                    if imported == "*":
                        continue
                    sub = modules.get(f"{target}.{imported}")
                    if sub is not None and sub.module != name:
                        graph[name].add(sub.module)
    return ProjectModel(
        modules=modules,
        by_path=by_path,
        linted_paths=frozenset(str(p) for p in linted_paths),
        noqa=noqa,
        suppressed=suppressed,
        import_graph=graph,
        df_facts=df_facts or {},
        effects=effects or {},
    )


class ProjectRule:
    """Base class for whole-program rules.

    Unlike per-file :class:`~repro.lint.engine.Rule` subclasses, a
    project rule sees the complete :class:`ProjectModel` and returns raw
    findings; the engine applies ``noqa`` filtering afterwards (so the
    same suppression syntax covers both rule families).
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, model: ProjectModel, config: RuleConfig) -> list[Finding]:
        raise NotImplementedError


def _seed_like(param: str) -> bool:
    return "seed" in param or "rng" in param


class SeedDropRule(ProjectRule):
    """FLOW001 — accepted seed/rng parameters must actually be used.

    The interprocedural generalisation of API001: API001 flags a public
    crawler-layer function that *creates* an RNG without accepting a
    seed; FLOW001 flags the dual failure, a function that *accepts* a
    ``seed``/``rng`` parameter and then drops it on the floor — the
    caller believes it decorrelated the run, but the stream never
    changes.  A parameter counts as used when its name is read anywhere
    in the body: forwarded to a callee, fed to ``random.Random``/
    ``derive_rng``, stored on ``self`` or returned.  Interface stubs
    (docstring/``...``/``raise`` bodies) are exempt.
    """

    code = "FLOW001"
    name = "seed-drop"
    rationale = ("a seed/rng parameter that never reaches an RNG or a "
                 "callee silently decouples the caller's seed from the run")

    def check(self, model: ProjectModel, config: RuleConfig) -> list[Finding]:
        findings: list[Finding] = []
        for mod in model.by_path.values():
            if not model.is_linted(mod.path):
                continue
            if mod.package not in config.seeded_packages:
                continue
            for func in mod.functions:
                if not func.is_public or func.is_stub:
                    continue
                loaded = set(func.loaded)
                for param in func.params:
                    if _seed_like(param) and param not in loaded:
                        findings.append(Finding(
                            path=mod.path, line=func.line, col=0,
                            rule=self.code,
                            message=(
                                f"parameter {param!r} of public function "
                                f"{func.qualname}() is accepted but never "
                                "used; forward it or feed it to an RNG "
                                "construction (seed-drop)"
                            ),
                        ))
        return findings


class DeadPublicApiRule(ProjectRule):
    """FLOW002 — every ``__all__`` export must have a reference somewhere.

    An exported name nobody imports, calls or mentions across
    ``src/``, ``tests/``, ``examples/`` and ``benchmarks/`` is dead API
    surface: it rots silently (no test exercises it) and misleads users
    reading the package's public face.  A ``from X import *`` anywhere
    counts as a use of all of ``X``'s exports.
    """

    code = "FLOW002"
    name = "dead-public-api"
    rationale = ("exports referenced nowhere in src/tests/examples/"
                 "benchmarks are untested, misleading API surface")

    def check(self, model: ProjectModel, config: RuleConfig) -> list[Finding]:
        findings: list[Finding] = []
        star_targets: set[str] = set()
        for mod in model.modules.values():
            for rec in mod.star_imports():
                target = resolve_import(mod, rec.module, rec.level)
                if target:
                    star_targets.add(target)
        for mod in model.by_path.values():
            if not model.is_linted(mod.path) or not mod.exports:
                continue
            if mod.module in star_targets:
                continue
            external_refs: set[str] = set()
            for other in model.modules.values():
                if other.module != mod.module:
                    external_refs.update(other.refs)
            for name, line in mod.exports:
                if name not in external_refs:
                    findings.append(Finding(
                        path=mod.path, line=line, col=0, rule=self.code,
                        message=(
                            f"exported symbol {name!r} is referenced nowhere "
                            "in src/, tests/, examples/ or benchmarks/ "
                            "(dead public API)"
                        ),
                    ))
        return findings


class ImportCycleRule(ProjectRule):
    """FLOW003 — the import graph must stay acyclic.

    Cycles make module initialisation order-dependent (the classic
    partially-initialised-module ``ImportError``) and defeat the layer
    tower API002 enforces edge-by-edge.  Each strongly connected
    component is reported exactly once, with the full cycle path,
    anchored at the lexicographically smallest member's offending
    import line.
    """

    code = "FLOW003"
    name = "import-cycle"
    rationale = ("import cycles make initialisation order-dependent and "
                 "entangle layers the architecture keeps apart")

    def _strongly_connected(self, graph: dict[str, set[str]]) -> list[list[str]]:
        """Tarjan's algorithm, iterative, deterministic ordering."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        components: list[list[str]] = []

        for root in sorted(graph):
            if root in index:
                continue
            work: list[tuple[str, list[str], int]] = [
                (root, sorted(graph.get(root, ())), 0)
            ]
            while work:
                node, neighbours, pos = work.pop()
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                while pos < len(neighbours):
                    succ = neighbours[pos]
                    pos += 1
                    if succ not in index:
                        work.append((node, neighbours, pos))
                        work.append((succ, sorted(graph.get(succ, ())), 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    def _cycle_path(self, start: str, members: set[str],
                    graph: dict[str, set[str]]) -> list[str]:
        """A concrete path start -> ... -> start inside one SCC."""
        path = [start]
        seen = {start}
        node = start
        while True:
            inside = sorted(n for n in graph.get(node, ()) if n in members)
            back = [n for n in inside if n == start]
            if back and len(path) > 1:
                return path + [start]
            step = next((n for n in inside if n not in seen), None)
            if step is None:
                return path + [start]  # fall back: close the loop textually
            path.append(step)
            seen.add(step)
            node = step

    def check(self, model: ProjectModel, config: RuleConfig) -> list[Finding]:
        findings: list[Finding] = []
        for component in self._strongly_connected(model.import_graph):
            members = set(component)
            anchor = next(
                (model.modules[name] for name in component
                 if model.is_linted(model.modules[name].path)),
                None,
            )
            if anchor is None:
                continue  # cycle lives entirely outside the linted paths
            line = 1
            for rec in anchor.imports:
                target = resolve_import(anchor, rec.module, rec.level)
                resolved = _resolve_to_model(target, model.modules) if target else None
                if resolved in members:
                    line = rec.line
                    break
            path = self._cycle_path(anchor.module, members,
                                    model.import_graph)
            findings.append(Finding(
                path=anchor.path, line=line, col=0, rule=self.code,
                message="import cycle: " + " -> ".join(path),
            ))
        return findings


class UnusedNoqaRule(ProjectRule):
    """FLOW004 — suppression markers must suppress something.

    A ``# repro: noqa[...]`` whose codes match no finding on that line
    (per-file or project, suppression bypassed) is stale: the violation
    it excused was fixed, the rule was disabled, or the code list has a
    typo.  Stale markers are worse than none — they licence a future
    violation nobody reviewed.  Markers listing ``FLOW004`` itself are
    kept intentionally and never flagged; bare markers that suppress
    nothing *are* flagged (they cannot self-excuse).
    """

    code = "FLOW004"
    name = "unused-noqa"
    rationale = ("a noqa that suppresses nothing licences an unreviewed "
                 "future violation; remove it or justify with FLOW004")

    def check(self, model: ProjectModel, config: RuleConfig) -> list[Finding]:
        findings: list[Finding] = []
        for path in sorted(model.noqa):
            if not model.is_linted(path):
                continue
            hits = model.suppressed.get(path, {})
            for line, codes in sorted(model.noqa[path].items()):
                if codes is not None and self.code in codes:
                    continue  # explicitly kept
                used = hits.get(line, set())
                if codes is None:
                    if used:
                        continue
                elif codes & used:
                    continue
                label = ("bare noqa" if codes is None
                         else "noqa[" + ",".join(sorted(codes)) + "]")
                findings.append(Finding(
                    path=path, line=line, col=0, rule=self.code,
                    message=(
                        f"{label} suppresses no finding on this line; "
                        "remove the marker (or list FLOW004 to keep it "
                        "deliberately)"
                    ),
                ))
        return findings


class EventEmissionCoverageRule(ProjectRule):
    """FLOW005 — every observable event class must actually be emitted.

    The ``repro.obs`` schema gate (PR 2) checks that each event type is
    *documented*; this closes the other half of the loop: a
    ``CrawlEvent`` subclass with no construction site anywhere in
    library code is an event the instrumentation promises but never
    delivers, so traces and dashboards silently miss it.
    """

    code = "FLOW005"
    name = "event-emission-coverage"
    rationale = ("an event class never constructed in library code is a "
                 "schema promise the instrumentation does not keep")

    def check(self, model: ProjectModel, config: RuleConfig) -> list[Finding]:
        findings: list[Finding] = []
        emitters: set[str] = set()
        by_class: dict[str, str] = {}   # class name -> defining module
        declared: list[tuple[ModuleSymbols, object]] = []
        for mod in model.modules.values():
            for cls in mod.classes:
                if any(base.rsplit(".", 1)[-1] == EVENT_BASE
                       for base in cls.bases):
                    declared.append((mod, cls))
                    by_class[cls.name] = mod.module
        for mod in model.modules.values():
            if not mod.module.startswith("repro."):
                continue  # tests/examples may construct events; library must
            emitters.update(
                head for head in mod.call_heads()
                if head in by_class and by_class[head] != mod.module
            )
        for mod, cls in declared:
            if not model.is_linted(mod.path):
                continue
            if cls.name in emitters:
                continue
            findings.append(Finding(
                path=mod.path, line=cls.line, col=0, rule=self.code,
                message=(
                    f"event class {cls.name} has no construction/emission "
                    "site in library code; instrument the component or "
                    "retire the event"
                ),
            ))
        return findings


def default_project_rules() -> list[ProjectRule]:
    """Fresh instances of the FLOW rule family, in catalogue order.

    Order matters for FLOW004: the engine runs it last, after the other
    project rules have populated the suppression record.
    """
    return [
        SeedDropRule(),
        DeadPublicApiRule(),
        ImportCycleRule(),
        UnusedNoqaRule(),
        EventEmissionCoverageRule(),
    ]
