"""``repro.lint`` — AST-based determinism & invariant linter.

The reproduction's claims (Tables 1-7, Figures 4/5/15) are only
trustworthy if every stochastic component threads explicit seeds through
``repro.utils.rng`` instead of reaching for global randomness or
wall-clock time.  This package enforces that convention — plus a handful
of correctness and layering invariants — as a static-analysis pass over
the repo's own Python AST.

Run it as a command::

    python -m repro.lint src/repro            # human-readable report
    python -m repro.lint --format json src    # machine-readable (CI)

or programmatically::

    from repro.lint import Linter, RuleConfig

    findings = Linter(RuleConfig()).check_paths(["src/repro"])

``tests/test_lint_self.py`` runs the full rule set over ``src/repro``
and asserts zero findings, so violations cannot creep in under refactor
pressure.  See ``docs/static_analysis.md`` for the rule catalogue.
"""

from repro.lint.cache import CacheStats, LintCache
from repro.lint.certificate import (build_certificate, certificate_digest,
                                    render_certificate)
from repro.lint.cfg import CFG, build_cfg
from repro.lint.conc_rules import ConcRule, default_conc_rules
from repro.lint.config import RuleConfig, load_pyproject_config
from repro.lint.dataflow import (ForwardAnalysis, ReachingDefinitions,
                                 solve_forward)
from repro.lint.df_rules import DataflowRule, default_df_rules
from repro.lint.effects import (EffectAnalysis, ModuleEffects,
                                collect_effects, propagate_effects)
from repro.lint.engine import (Finding, LintRun, LintUsageError, Linter,
                               Rule, scan_noqa)
from repro.lint.project import (ProjectModel, ProjectRule, build_project,
                                default_project_rules)
from repro.lint.reporters import (render_json, render_sarif, render_stats,
                                  render_text)
from repro.lint.rules import default_rules
from repro.lint.symbols import ModuleSymbols, extract_symbols

__all__ = [
    "CFG",
    "CacheStats",
    "ConcRule",
    "DataflowRule",
    "EffectAnalysis",
    "Finding",
    "ForwardAnalysis",
    "LintCache",
    "LintRun",
    "LintUsageError",
    "Linter",
    "ModuleEffects",
    "ModuleSymbols",
    "ProjectModel",
    "ProjectRule",
    "ReachingDefinitions",
    "Rule",
    "RuleConfig",
    "build_certificate",
    "build_cfg",
    "build_project",
    "certificate_digest",
    "collect_effects",
    "default_conc_rules",
    "default_df_rules",
    "default_project_rules",
    "default_rules",
    "extract_symbols",
    "load_pyproject_config",
    "propagate_effects",
    "render_certificate",
    "render_json",
    "render_sarif",
    "render_stats",
    "render_text",
    "scan_noqa",
    "solve_forward",
]
