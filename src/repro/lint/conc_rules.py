"""Phase 4 of the analysis: concurrency/shardability rules (CONC).

The ROADMAP's next milestone shards the campaign engine into parallel
per-domain workers.  That only preserves the determinism contract if
worker-executed code shares no mutable state, owns its RNG streams, and
takes no hidden inputs (wall clock, filesystem, environment).  These
rules certify exactly that, on top of the effect facts and reachability
computed in :mod:`repro.lint.effects`:

* CONC001 shared-mutable-reachable — module-level mutable state touched
  from worker-reachable code.  Subsumes DF003 (every DF003 mutation in
  campaign/core scope is also a CONC001 mutate-site) and extends it to
  *reads* of contested state — a worker reading a dict another function
  mutates observes scheduling order;
* CONC002 rng-stream-escape — an RNG stream built outside
  ``derive_rng`` escaping its function, or a module-level stream shared
  by two worker-reachable functions: either way two workers end up
  drawing from one generator and the draw sequence depends on
  interleaving;
* CONC003 nondeterministic-iteration — iterating a ``set`` where the
  order flows into returned/emitted/accumulated values (set iteration
  order varies across processes under hash randomisation, so two
  workers disagree even on identical input);
* CONC004 unguarded-global-write — ``global`` rebinding from
  worker-reachable code, the bluntest cross-worker race;
* CONC005 hidden-io — clock/filesystem/environ access inside
  worker-reachable functions, which the campaign replay machinery
  treats as replayable pure-ish compute.

Per-file halves report through the ordinary :class:`FileContext`, so
``# repro: noqa[CONC00x]`` markers and FLOW004 stale-marker accounting
apply unchanged; project halves return findings the engine filters
through the same machinery.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar

from repro.lint.cfg import CFG
from repro.lint.config import RuleConfig
from repro.lint.dataflow import TaintAnalysis, header_exprs, solve_forward
from repro.lint.df_rules import MUTATOR_METHODS, _dotted, _own_nodes
from repro.lint.effects import (IO, EffectAnalysis, is_derived_rng,
                                is_rng_construction)
from repro.lint.engine import FileContext, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectModel

#: Call names that *accumulate* values in order (CONC003 sinks): the
#: frontier/ledger/event surfaces where iteration order becomes state.
ORDER_SINK_METHODS = frozenset({
    "append", "extend", "add", "insert", "put", "push", "emit", "record",
    "enqueue", "write", "send",
})


class ConcRule:
    """Base class for CONC rules; both hooks default to no-ops.

    ``check_function`` runs per function with its CFG during phase 1/3
    (cached per file through the ordinary findings list);
    ``check_project`` runs in the project phase with the propagated
    :class:`~repro.lint.effects.EffectAnalysis`.
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        pass

    def check_project(self, model: "ProjectModel", config: RuleConfig,
                      effects: EffectAnalysis) -> list[Finding]:
        return []


def _worker_sites(model: "ProjectModel", effects: EffectAnalysis,
                  kinds: frozenset[str]):
    """Yield ``(path, fact, site)`` for effect sites of the given kinds
    inside worker-reachable functions of linted files, in stable order."""
    for key in sorted(effects.worker_reachable):
        path, _ = key
        if not model.is_linted(path):
            continue
        fact = effects.facts[key]
        for site in fact.sites:
            if site.kind in kinds:
                yield path, fact, site


# ---------------------------------------------------------------------------
# CONC001 — shared-mutable-reachable
# ---------------------------------------------------------------------------


class SharedMutableReachableRule(ConcRule):
    """CONC001 — worker-reachable code must not touch module-level
    mutable state.

    DF003 already rejects *mutations* reachable from crawl entry points;
    sharding makes the read side dangerous too: a worker reading a
    module dict that any function mutates observes whatever the
    scheduler interleaved, so identical campaigns diverge.  Mutate-sites
    in worker-reachable functions always fire; read-sites fire only when
    the target is *contested* — some function body in the same module
    mutates it — so import-time registries that are never written after
    import stay clean.
    """

    code = "CONC001"
    name = "shared-mutable-reachable"
    rationale = ("module-level mutable state touched from worker-reachable "
                 "code races or diverges across campaign shards")

    def check_project(self, model: "ProjectModel", config: RuleConfig,
                      effects: EffectAnalysis) -> list[Finding]:
        findings: list[Finding] = []
        for path, fact, site in _worker_sites(
                model, effects, frozenset({"mutate", "read"})):
            if site.kind == "read" and (path, site.target) not in \
                    effects.contested:
                continue
            verb = ("mutates" if site.kind == "mutate"
                    else "reads contested")
            findings.append(Finding(
                path=path, line=site.line, col=site.col, rule=self.code,
                message=(
                    f"{fact.qualname}() {verb} module-level mutable "
                    f"{site.target!r} ({site.detail}) and is reachable "
                    "from campaign/core worker entry points; shards "
                    "sharing it diverge — pass the state explicitly"
                ),
            ))
        return findings


# ---------------------------------------------------------------------------
# CONC002 — rng-stream-escape
# ---------------------------------------------------------------------------


class _RngEscape(TaintAnalysis):
    def is_source(self, expr: ast.AST) -> bool:
        return is_rng_construction(expr) and not is_derived_rng(expr)


class RngStreamEscapeRule(ConcRule):
    """CONC002 — an RNG stream must stay owned by one execution context.

    The per-file half tracks RNGs built outside ``derive_rng`` and fires
    when one *escapes* its function: returned, yielded, stored anywhere
    but ``self``, or handed to a container mutator.  A ``self``-stored
    stream is per-instance state — each worker owns its instances — but
    a stream that leaves the function joins state of unknown ownership,
    and two shards drawing from it interleave nondeterministically.  The
    project half fires on any *module-level* stream (derived or not)
    referenced from two or more distinct worker-reachable functions:
    one generator, many shards, order-dependent draws.
    """

    code = "CONC002"
    name = "rng-stream-escape"
    rationale = ("an RNG stream escaping its owner, or shared at module "
                 "level, interleaves draws nondeterministically across "
                 "shards; derive per-worker streams via derive_rng")

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        if ctx.is_test_file() or ctx.config.is_rng_module(ctx.posix_path):
            return
        in_facts, _ = solve_forward(cfg, _RngEscape())
        analysis = _RngEscape()
        seen: set[int] = set()
        for index in sorted(in_facts):
            fact = in_facts[index]
            for stmt in cfg.blocks[index].stmts:
                tainted = {name for name, _ in fact}
                self._scan(stmt, tainted, seen, ctx)
                fact = analysis.transfer(fact, stmt)

    def _scan(self, stmt: ast.AST, tainted: set[str], seen: set[int],
              ctx: FileContext) -> None:
        def leaks(value: ast.AST | None) -> bool:
            if value is None:
                return False
            if isinstance(value, ast.Name) and value.id in tainted:
                return True
            return is_rng_construction(value) and not is_derived_rng(value)

        escapes: list[tuple[ast.AST, str]] = []
        if isinstance(stmt, ast.Return):
            if leaks(stmt.value):
                escapes.append((stmt, "returned"))
        elif (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, (ast.Yield, ast.YieldFrom))):
            if leaks(stmt.value.value):
                escapes.append((stmt, "yielded"))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not leaks(stmt.value):
                    continue
                if isinstance(target, ast.Subscript):
                    escapes.append((stmt, "stored into a container"))
                elif (isinstance(target, ast.Attribute)
                      and _dotted(target.value) != "self"):
                    escapes.append((stmt, "stored on a foreign object"))
        for expr in header_exprs(stmt):
            for node in ast.walk(expr):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in MUTATOR_METHODS):
                    values = [*node.args,
                              *(k.value for k in node.keywords)]
                    if any(isinstance(a, ast.Name) and a.id in tainted
                           for a in values):
                        escapes.append((node, "pushed into a container"))
        for node, how in escapes:
            line = getattr(node, "lineno", 1)
            if line in seen:
                continue
            seen.add(line)
            ctx.report(self, node, (
                f"RNG stream not obtained via derive_rng is {how} here; "
                "the receiving context's draws interleave with the "
                "owner's — derive a child stream per consumer via "
                "repro.utils.rng.derive_rng"
            ))

    def check_project(self, model: "ProjectModel", config: RuleConfig,
                      effects: EffectAnalysis) -> list[Finding]:
        findings: list[Finding] = []
        for path in sorted(model.effects):
            if not model.is_linted(path):
                continue
            if config.is_rng_module(path.replace("\\", "/")):
                continue
            mod = model.by_path.get(path)
            if mod is None:
                continue
            reachable_users = {
                func.qualname: sorted(set(func.loaded))
                for func in mod.functions
                if effects.is_worker_reachable(path, func.qualname)
            }
            for stream in model.effects[path].rng_streams:
                users = sorted(q for q, loaded in reachable_users.items()
                               if stream.name in loaded)
                if len(users) < 2:
                    continue
                findings.append(Finding(
                    path=path, line=stream.line, col=stream.col,
                    rule=self.code,
                    message=(
                        f"module-level RNG stream {stream.name!r} is drawn "
                        f"from by {len(users)} worker-reachable functions "
                        f"({', '.join(users[:3])}{'…' if len(users) > 3 else ''}); "
                        "shards sharing one generator interleave draws — "
                        "derive a stream per worker via derive_rng"
                    ),
                ))
        return findings


# ---------------------------------------------------------------------------
# CONC003 — nondeterministic-iteration
# ---------------------------------------------------------------------------


def _set_like(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        return _dotted(expr.func).rsplit(".", 1)[-1] in ("set", "frozenset")
    return False


class NondeterministicIterationRule(ConcRule):
    """CONC003 — iteration order of a set must not reach an ordered
    output.

    ``PYTHONHASHSEED`` varies across worker processes, so two shards
    iterating equal sets visit different orders.  Harmless when the loop
    folds into an order-free aggregate; a replay-breaking divergence
    when the order flows into a returned list, an emitted event, or a
    frontier/ledger write.  The taint half tracks set-valued names
    (constructors, literals, aliases); any ``for`` over one marks its
    loop targets order-tainted, and a sink inside the loop body —
    ``return``/``yield`` of a tainted value or an accumulating call
    taking one — fires.  Iterate ``sorted(...)`` instead.
    """

    code = "CONC003"
    name = "nondeterministic-iteration"
    rationale = ("set iteration order differs across worker processes; "
                 "sort before the order can reach returned or emitted "
                 "values")

    def check_function(self, func: ast.AST, cfg: CFG,
                       ctx: FileContext) -> None:
        if ctx.is_test_file():
            return
        analysis = TaintAnalysis(is_source=_set_like)
        in_facts, _ = solve_forward(cfg, analysis)
        seen: set[int] = set()
        for index in sorted(in_facts):
            fact = in_facts[index]
            for stmt in cfg.blocks[index].stmts:
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    tainted = {name for name, _ in fact}
                    self._check_loop(stmt, tainted, seen, ctx)
                fact = analysis.transfer(fact, stmt)

    def _check_loop(self, node: ast.AST, tainted: set[str],
                    seen: set[int], ctx: FileContext) -> None:
        iter_expr = node.iter
        over_set = _set_like(iter_expr) or (
            isinstance(iter_expr, ast.Name) and iter_expr.id in tainted)
        if not over_set or node.lineno in seen:
            return
        loop_names = {n.id for n in ast.walk(node.target)
                      if isinstance(n, ast.Name)}
        sink = self._order_sink(node, loop_names)
        if sink is not None:
            seen.add(node.lineno)
            ctx.report(self, sink, (
                "set iteration order flows into an ordered output "
                "here; two worker processes visit different orders — "
                "iterate sorted(...) instead"
            ))

    def _order_sink(self, loop: ast.AST, loop_names: set[str]):
        """First statement in the loop body where a loop variable (or a
        value derived from one by plain aliasing) reaches an ordered
        output."""
        derived = set(loop_names)
        for stmt in ast.walk(loop):
            if stmt is loop:
                continue
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                if any(isinstance(n, ast.Name) and n.id in derived
                       for n in ast.walk(stmt.value)):
                    derived.add(stmt.targets[0].id)
            if isinstance(stmt, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = stmt.value
                if value is not None and any(
                        isinstance(n, ast.Name) and n.id in derived
                        for n in ast.walk(value)):
                    return stmt
            if (isinstance(stmt, ast.Call)
                    and isinstance(stmt.func, ast.Attribute)
                    and stmt.func.attr in ORDER_SINK_METHODS):
                values = [*stmt.args, *(k.value for k in stmt.keywords)]
                if any(isinstance(n, ast.Name) and n.id in derived
                       for v in values for n in ast.walk(v)):
                    return stmt
        return None


# ---------------------------------------------------------------------------
# CONC004 — unguarded-global-write
# ---------------------------------------------------------------------------


class UnguardedGlobalWriteRule(ConcRule):
    """CONC004 — no ``global`` rebinding from worker-reachable code.

    A ``global`` statement followed by a store is the bluntest shared
    write: every shard sees (and overwrites) the same binding, and the
    final value depends on worker completion order.  Module-local
    helpers may still do this behind a lock at import time; anything the
    campaign scheduler can reach may not.
    """

    code = "CONC004"
    name = "unguarded-global-write"
    rationale = ("a global rebind from worker-reachable code makes the "
                 "final value depend on shard completion order")

    def check_project(self, model: "ProjectModel", config: RuleConfig,
                      effects: EffectAnalysis) -> list[Finding]:
        findings: list[Finding] = []
        for path, fact, site in _worker_sites(
                model, effects, frozenset({"global-write"})):
            findings.append(Finding(
                path=path, line=site.line, col=site.col, rule=self.code,
                message=(
                    f"{fact.qualname}() rebinds global {site.target!r} and "
                    "is reachable from campaign/core worker entry points; "
                    "the surviving value depends on shard completion "
                    "order — return the value or hold it on an object"
                ),
            ))
        return findings


# ---------------------------------------------------------------------------
# CONC005 — hidden-io
# ---------------------------------------------------------------------------


class HiddenIoRule(ConcRule):
    """CONC005 — worker-reachable functions must not take hidden inputs.

    The campaign engine treats worker compute as replayable: same
    inputs, same outputs, so a shard can be re-run for verification or
    recovery.  Wall-clock reads, filesystem access and ``os.environ``
    break that silently — the replay takes a different branch and the
    certificate's determinism claim is void.  Fires on the *direct* io
    site (the propagated effect lattice still classifies transitive
    callers as ``performs-io`` in the certificate, but one finding per
    concrete site beats one per caller).
    """

    code = "CONC005"
    name = "hidden-io"
    rationale = ("clock/filesystem/environ reads inside replayable "
                 "worker code desync replays from the recorded run")

    def check_project(self, model: "ProjectModel", config: RuleConfig,
                      effects: EffectAnalysis) -> list[Finding]:
        findings: list[Finding] = []
        for path, fact, site in _worker_sites(
                model, effects, frozenset({"io"})):
            findings.append(Finding(
                path=path, line=site.line, col=site.col, rule=self.code,
                message=(
                    f"{fact.qualname}() performs io ({site.target}: "
                    f"{site.detail}) and is reachable from campaign/core "
                    "worker entry points; hidden inputs break shard "
                    "replay — inject the value through parameters"
                ),
            ))
        return findings


def default_conc_rules() -> list[ConcRule]:
    """Fresh instances of the CONC rule family, in catalogue order."""
    return [
        SharedMutableReachableRule(),
        RngStreamEscapeRule(),
        NondeterministicIterationRule(),
        UnguardedGlobalWriteRule(),
        HiddenIoRule(),
    ]
