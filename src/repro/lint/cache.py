"""Content-hash incremental cache for the whole-program lint pass.

Phase 2 needs every file's symbol table, so a naive implementation
re-parses the whole tree on every run — painful for the self-lint gate
and ``repro.precheck``, which run on each PR.  The cache keeps, per
file, everything phase 1 produces (findings, suppressed findings,
symbols, noqa markers) keyed by the file's SHA-256 **content hash**, so
an unchanged file costs one hash instead of a parse + two AST walks.

Invalidation is deliberately coarse and safe:

* per file — any content change flips the SHA-256;
* whole cache — the top-level ``key`` combines the rule-set version
  (:data:`repro.lint.rules.RULESET_VERSION`, bumped whenever rule
  behaviour changes), the exact set of active rule codes, and a digest
  of the effective :class:`~repro.lint.config.RuleConfig`.  A mismatch
  discards everything rather than guessing which entries survive.

The on-disk format is a single sorted-keys JSON document
(``.repro-lint-cache.json`` by default, git-ignored), written
atomically via rename so a crashed run cannot leave a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.df_rules import MutationFact
from repro.lint.effects import ModuleEffects
from repro.lint.engine import Finding
from repro.lint.symbols import ModuleSymbols

#: Bumped when the on-disk cache layout itself changes.
#: 2: per-file dataflow facts (``df_facts``) joined the entry layout.
#: 3: per-file effect facts (``effect_facts``) joined the entry layout.
CACHE_FORMAT = 3


def interpreter_tag() -> str:
    """``py3.11``-style tag of the running interpreter.

    Part of the whole-cache key: AST node shapes differ across minor
    versions, so a cache written under 3.11 must not be replayed under
    3.12 (CI runs both, and a shared workspace would otherwise
    ping-pong between them).
    """
    return f"py{sys.version_info[0]}.{sys.version_info[1]}"


def content_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class CachedFile:
    """Phase-1 output for one file, as stored in / restored from cache."""

    sha: str
    findings: list[Finding]
    suppressed: list[Finding]
    symbols: ModuleSymbols | None
    noqa: dict[int, frozenset[str] | None]
    #: DF rule code -> per-file dataflow facts (phase 3); today only
    #: DF003's :class:`~repro.lint.df_rules.MutationFact` list.
    df_facts: dict[str, list] = field(default_factory=dict)
    #: Phase-4 effect facts (:class:`~repro.lint.effects.ModuleEffects`);
    #: ``None`` for unparseable files.
    effect_facts: ModuleEffects | None = None

    def to_dict(self) -> dict:
        return {
            "sha": self.sha,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "symbols": self.symbols.to_dict() if self.symbols else None,
            "noqa": {
                str(line): (None if codes is None else sorted(codes))
                for line, codes in self.noqa.items()
            },
            "df_facts": {
                code: [fact.to_dict() for fact in facts]
                for code, facts in sorted(self.df_facts.items())
            },
            "effect_facts": (self.effect_facts.to_dict()
                             if self.effect_facts is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CachedFile":
        return cls(
            sha=data["sha"],
            findings=[Finding(**f) for f in data["findings"]],
            suppressed=[Finding(**f) for f in data["suppressed"]],
            symbols=(ModuleSymbols.from_dict(data["symbols"])
                     if data["symbols"] else None),
            noqa={
                int(line): (None if codes is None else frozenset(codes))
                for line, codes in data["noqa"].items()
            },
            df_facts={
                code: [MutationFact.from_dict(fact) for fact in facts]
                for code, facts in data["df_facts"].items()
            },
            effect_facts=(ModuleEffects.from_dict(data["effect_facts"])
                          if data.get("effect_facts") is not None else None),
        )


@dataclass
class CacheStats:
    """Hit/miss accounting surfaced in the ``--format json`` report."""

    enabled: bool = False
    files: int = 0
    hits: int = 0
    misses: int = 0

    def to_dict(self) -> dict:
        return {"enabled": self.enabled, "files": self.files,
                "hits": self.hits, "misses": self.misses}


class LintCache:
    """Load/store per-file phase-1 results under one invalidation key."""

    def __init__(self, path: str | Path, key: str) -> None:
        self.path = Path(path)
        self.key = f"{interpreter_tag()}|{key}"
        self.entries: dict[str, CachedFile] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(document, dict):
            return
        if document.get("format") != CACHE_FORMAT or document.get("key") != self.key:
            self._dirty = True  # stale cache: rewrite on save
            return
        try:
            self.entries = {
                path: CachedFile.from_dict(entry)
                for path, entry in document.get("files", {}).items()
            }
        except (KeyError, TypeError, ValueError):
            self.entries = {}
            self._dirty = True

    def get(self, path: str, sha: str) -> CachedFile | None:
        entry = self.entries.get(path)
        if entry is not None and entry.sha == sha:
            return entry
        return None

    def put(self, path: str, entry: CachedFile) -> None:
        self.entries[path] = entry
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        document = {
            "format": CACHE_FORMAT,
            "key": self.key,
            "files": {path: entry.to_dict()
                      for path, entry in sorted(self.entries.items())},
        }
        text = json.dumps(document, indent=1, sort_keys=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            return  # caching is best-effort; never fail the lint over it
        self._dirty = False
