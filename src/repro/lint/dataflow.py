"""Generic forward dataflow over :mod:`repro.lint.cfg` graphs: phase 3.

The solver (:func:`solve_forward`) runs a pluggable analysis to a
fixpoint with a deterministic worklist.  An analysis supplies three
things — the entry fact, a join, and a per-statement transfer — and the
solver returns the fact *entering* and *leaving* every reachable block.
Two instantiations ship here:

* :class:`ReachingDefinitions` — which ``(name, line)`` assignments can
  reach each point; the substrate for dead-store detection (DF004).
* :class:`TaintAnalysis` — which names currently hold a value produced
  by a configurable source expression, propagated through plain
  aliasing assignments; the substrate for the unseeded-RNG rule
  (DF001).

Facts are immutable (``frozenset``) so the fixpoint check is plain
equality and no analysis can accidentally share state across blocks.

Because blocks store *compound statement headers* (see
:mod:`repro.lint.cfg`), transfer functions must not ``ast.walk`` a raw
block statement — that would re-visit body statements that live in
other blocks.  :func:`header_exprs`, :func:`stmt_defs` and
:func:`stmt_uses` encapsulate the header-only view:

* ``header_exprs`` — the expressions evaluated *in this block* for a
  statement (the ``if`` test, the ``for`` iterator, a ``with``'s
  context expressions, the whole statement for simple ones, nothing
  for ``try``);
* ``stmt_defs`` — the ``(name, line)`` bindings the header creates
  (assignment targets, loop targets, ``with ... as`` names, handler
  names, imports, walrus targets, ``def``/``class`` names);
* ``stmt_uses`` — the names the header reads.  Nested function and
  class definitions conservatively count *every* name loaded anywhere
  in their body as used at the definition site (closure capture).
"""

from __future__ import annotations

import ast
import heapq
from typing import Iterable

from repro.lint.cfg import CFG, ENTRY

# ---------------------------------------------------------------------------
# Header-only statement views
# ---------------------------------------------------------------------------


def header_exprs(stmt: ast.AST) -> list[ast.AST]:
    """Expressions a block evaluates for ``stmt`` (header-only view)."""
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Decorators and default values are evaluated at the definition
        # site; the body is a separate scope with its own CFG.
        exprs: list[ast.AST] = list(stmt.decorator_list)
        if isinstance(stmt, ast.ClassDef):
            exprs.extend(stmt.bases)
            exprs.extend(kw.value for kw in stmt.keywords)
        else:
            args = stmt.args
            exprs.extend(d for d in args.defaults)
            exprs.extend(d for d in args.kw_defaults if d is not None)
        return exprs
    return [stmt]


def _target_names(target: ast.AST) -> list[tuple[str, int]]:
    """Plain names bound by an assignment target (nested tuples ok)."""
    if isinstance(target, ast.Name):
        return [(target.id, target.lineno)]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[tuple[str, int]] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # attribute / subscript stores bind no local name


def _walrus_defs(exprs: Iterable[ast.AST]) -> list[tuple[str, int]]:
    defs: list[tuple[str, int]] = []
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                defs.append((node.target.id, node.target.lineno))
    return defs


def stmt_defs(stmt: ast.AST) -> list[tuple[str, int]]:
    """``(name, line)`` bindings created by the statement's header."""
    defs: list[tuple[str, int]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            defs.extend(_target_names(target))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            defs.extend(_target_names(stmt.target))
    elif isinstance(stmt, ast.AugAssign):
        defs.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        defs.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                defs.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            defs.append((stmt.name, stmt.lineno))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        defs.append((stmt.name, stmt.lineno))
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            name = alias.asname or alias.name.split(".")[0]
            defs.append((name, stmt.lineno))
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            if alias.name != "*":
                defs.append((alias.asname or alias.name, stmt.lineno))
    defs.extend(_walrus_defs(header_exprs(stmt)))
    return defs


def stmt_uses(stmt: ast.AST) -> set[str]:
    """Names the statement's header reads (closure-conservative)."""
    uses: set[str] = set()
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                uses.add(node.id)
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        uses.add(stmt.target.id)  # x += 1 reads the old value of x
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        # Value expression plus subscript/attribute target bases.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                uses.add(node.id)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Closure capture: any name the nested scope loads counts as a
        # use at the definition site.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                uses.add(node.id)
    return uses


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------


class ForwardAnalysis:
    """A pluggable lattice for :func:`solve_forward`.

    Facts must be immutable and support ``==``; ``frozenset`` is the
    usual choice.  ``transfer`` is applied statement-by-statement within
    a block; ``join`` merges facts at control-flow merges (must be
    commutative, associative and monotone for termination).
    """

    def initial(self) -> object:
        """Fact entering the virtual entry block."""
        return frozenset()

    def join(self, left: object, right: object) -> object:
        return left | right  # type: ignore[operator]

    def transfer(self, fact: object, stmt: ast.AST) -> object:
        raise NotImplementedError


def solve_forward(
    cfg: CFG, analysis: ForwardAnalysis
) -> tuple[dict[int, object], dict[int, object]]:
    """Worklist iteration to fixpoint; returns ``(in_facts, out_facts)``.

    Only blocks reachable from the entry appear in the result maps.
    The worklist is a min-heap of block indices, so iteration order —
    and therefore any floating-point-free analysis result — is fully
    deterministic.
    """
    in_facts: dict[int, object] = {ENTRY: analysis.initial()}
    out_facts: dict[int, object] = {}
    heap: list[int] = [ENTRY]
    queued = {ENTRY}
    while heap:
        index = heapq.heappop(heap)
        queued.discard(index)
        fact = in_facts[index]
        for stmt in cfg.blocks[index].stmts:
            fact = analysis.transfer(fact, stmt)
        if out_facts.get(index, _MISSING) == fact:
            continue  # nothing changed downstream
        out_facts[index] = fact
        for succ in cfg.blocks[index].succs:
            merged = (analysis.join(in_facts[succ], fact)
                      if succ in in_facts else fact)
            if in_facts.get(succ, _MISSING) != merged:
                in_facts[succ] = merged
                if succ not in queued:
                    heapq.heappush(heap, succ)
                    queued.add(succ)
    return in_facts, out_facts


class _Missing:
    """Sentinel distinct from every analysis fact."""


_MISSING = _Missing()


# ---------------------------------------------------------------------------
# Instantiations
# ---------------------------------------------------------------------------


class ReachingDefinitions(ForwardAnalysis):
    """Classic reaching definitions: facts are ``frozenset[(name, line)]``.

    A definition of ``name`` kills every earlier definition of the same
    name on that path; joins union the surviving sets.
    """

    def transfer(self, fact: frozenset, stmt: ast.AST) -> frozenset:
        defs = stmt_defs(stmt)
        if not defs:
            return fact
        killed = {name for name, _ in defs}
        return frozenset(
            {d for d in fact if d[0] not in killed} | set(defs)
        )


class TaintAnalysis(ForwardAnalysis):
    """Name-level taint: facts are ``frozenset[(name, source_line)]``.

    ``is_source(expr)`` decides whether an assigned expression
    introduces taint; plain aliasing (``b = a``) propagates it; any
    other rebinding clears it.  Subclass or pass ``source`` at
    construction.
    """

    def __init__(self, is_source=None) -> None:
        if is_source is not None:
            self.is_source = is_source  # type: ignore[method-assign]

    def is_source(self, expr: ast.AST) -> bool:  # pragma: no cover
        raise NotImplementedError

    def transfer(self, fact: frozenset, stmt: ast.AST) -> frozenset:
        tainted = {name for name, _ in fact}
        result = set(fact)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            result = {d for d in result if d[0] != target}
            if self.is_source(stmt.value):
                result.add((target, stmt.value.lineno))
            elif isinstance(stmt.value, ast.Name) and \
                    stmt.value.id in tainted:
                line = next(l for n, l in fact if n == stmt.value.id)
                result.add((target, line))
            return frozenset(result)
        killed = {name for name, _ in stmt_defs(stmt)}
        if killed:
            result = {d for d in result if d[0] not in killed}
        return frozenset(result)
