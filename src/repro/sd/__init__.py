"""Statistics-dataset (SD) content: generation and detection.

The paper's Table 7 manually samples 280 retrieved targets and counts
how many contain at least one statistics table ("SD yield") and the mean
number of SDs per target.  Offline we substitute: target file *content*
is generated deterministically per URL (with per-site yield parameters
mirroring Table 7), and a table detector re-measures the yield from the
generated content — exercising the full inspect-the-file code path.
"""

from repro.sd.content import TargetContentGenerator, SD_PROFILES
from repro.sd.detector import count_statistic_tables, detect_tables

__all__ = [
    "TargetContentGenerator",
    "SD_PROFILES",
    "count_statistic_tables",
    "detect_tables",
]
