"""Deterministic target-file content generation.

Every target URL maps (via a seeded RNG) to a file body in a format
matching its MIME type: CSV/TSV as delimited numeric tables, JSON as
record arrays, spreadsheets as multi-sheet CSV-like blocks, PDFs as text
pages with embedded fixed-width tables, archives as file listings whose
members are themselves generated documents.

Whether a target contains statistics tables — and how many — follows
per-site parameters (``SD_PROFILES``) mirroring the paper's Table 7:
e.g. on *be* 82 % of sampled targets contained at least one SD, 9.1 on
average; on *wh* only 40 % with 1.4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.utils.rng import derive_rng

#: Table 7 of the paper: SD yield (%) and mean #SDs per SD-bearing target.
#: Sites absent from Table 7 get the DEFAULT profile.
SD_PROFILES: dict[str, tuple[float, float]] = {
    "be": (82.0, 9.1),
    "ed": (35.0, 2.8),
    "is": (93.0, 2.9),
    "in": (40.0, 2.1),
    "nc": (83.0, 2.1),
    "oe": (60.0, 4.9),
    "wh": (40.0, 1.4),
}

DEFAULT_SD_PROFILE: tuple[float, float] = (60.0, 2.5)

_DIMENSIONS = (
    "year", "region", "age_group", "sector", "category", "country",
    "quarter", "gender", "education_level", "industry",
)
_MEASURES = (
    "population", "employment", "expenditure", "births", "deaths",
    "enrolment", "production", "exports", "imports", "cases",
)


@dataclass
class GeneratedTarget:
    """Content of one target file plus its ground-truth SD count."""

    url: str
    mime_type: str
    body: str
    n_tables: int


class TargetContentGenerator:
    """Generates file bodies for target URLs, deterministic per URL."""

    def __init__(self, site_name: str, seed: int = 0) -> None:
        self.site_name = site_name
        self.seed = seed
        yield_pct, mean_sds = SD_PROFILES.get(site_name, DEFAULT_SD_PROFILE)
        self.sd_yield = yield_pct / 100.0
        self.mean_sds = mean_sds

    # -- table construction --------------------------------------------------

    @staticmethod
    def _numeric_table(rng: random.Random, delimiter: str = ",") -> str:
        """One statistics table: a header and mostly-numeric rows."""
        n_cols = rng.randint(3, 6)
        n_rows = rng.randint(4, 15)
        dimension = rng.choice(_DIMENSIONS)
        measures = rng.sample(_MEASURES, n_cols - 1)
        lines = [delimiter.join([dimension] + measures)]
        base_year = rng.randint(1990, 2020)
        for row in range(n_rows):
            cells = [str(base_year + row)]
            cells += [f"{rng.uniform(10, 99999):.1f}" for _ in measures]
            lines.append(delimiter.join(cells))
        return "\n".join(lines)

    @staticmethod
    def _prose(rng: random.Random, n_sentences: int = 4) -> str:
        fragments = (
            "This report presents the findings of the annual survey.",
            "Methodological notes are provided in the appendix.",
            "Data were collected by the national statistical office.",
            "Revisions to previous releases are documented below.",
            "Coverage includes all administrative regions.",
            "Users should cite the source when reproducing figures.",
        )
        return " ".join(rng.choice(fragments) for _ in range(n_sentences))

    def _sample_n_tables(self, rng: random.Random) -> int:
        """0 with probability (1 - yield); otherwise ≥ 1 with the profile mean."""
        if rng.random() >= self.sd_yield:
            return 0
        # Geometric-like count with mean ``mean_sds`` conditioned on ≥ 1.
        mean = max(self.mean_sds, 1.0)
        p = 1.0 / mean
        count = 1
        while rng.random() > p and count < 60:
            count += 1
        return count

    # -- per-format rendering ---------------------------------------------

    def generate(self, url: str, mime_type: str) -> GeneratedTarget:
        rng = derive_rng(self.seed, "target-content", self.site_name, url)
        n_tables = self._sample_n_tables(rng)
        mime = mime_type.split(";")[0].strip().lower()
        if "csv" in mime or "comma-separated" in mime:
            body = self._render_csv(rng, n_tables, ",")
        elif "spreadsheet" in mime or "ms-excel" in mime or "opendocument" in mime:
            body = self._render_spreadsheet(rng, n_tables)
        elif "json" in mime:
            body = self._render_json(rng, n_tables)
        elif "pdf" in mime or "msword" in mime:
            body = self._render_document(rng, n_tables)
        elif "zip" in mime or "tar" in mime or "gzip" in mime or "rar" in mime:
            body = self._render_archive(rng, n_tables)
        else:
            body = self._render_document(rng, n_tables)
        return GeneratedTarget(url=url, mime_type=mime, body=body, n_tables=n_tables)

    def _render_csv(self, rng: random.Random, n_tables: int, delimiter: str) -> str:
        if n_tables == 0:
            # A CSV that is not a statistics table: a contact/address list.
            rows = ["name,email,office"]
            for i in range(rng.randint(3, 10)):
                rows.append(f"person{i},person{i}@example.org,room {i}")
            return "\n".join(rows)
        blocks = [self._numeric_table(rng, delimiter) for _ in range(n_tables)]
        return "\n\n".join(blocks)

    def _render_spreadsheet(self, rng: random.Random, n_tables: int) -> str:
        sheets = []
        for index in range(max(n_tables, 1)):
            header = f"### sheet:{index + 1}"
            if index < n_tables:
                sheets.append(header + "\n" + self._numeric_table(rng))
            else:
                sheets.append(header + "\n" + self._prose(rng))
        return "\n\n".join(sheets)

    def _render_json(self, rng: random.Random, n_tables: int) -> str:
        import json

        if n_tables == 0:
            return json.dumps({"title": "metadata", "notes": self._prose(rng, 2)})
        datasets = []
        for _ in range(n_tables):
            n_rows = rng.randint(4, 12)
            dimension = rng.choice(_DIMENSIONS)
            measure = rng.choice(_MEASURES)
            records = [
                {dimension: 1990 + i, measure: round(rng.uniform(1, 9999), 1)}
                for i in range(n_rows)
            ]
            datasets.append({"dimension": dimension, "records": records})
        return json.dumps({"datasets": datasets})

    def _render_document(self, rng: random.Random, n_tables: int) -> str:
        """PDF-like document: prose pages with embedded aligned tables."""
        parts = [self._prose(rng)]
        for _ in range(n_tables):
            parts.append("[TABLE]\n" + self._numeric_table(rng, delimiter="  "))
            parts.append(self._prose(rng, 2))
        return "\n\n".join(parts)

    def _render_archive(self, rng: random.Random, n_tables: int) -> str:
        """Archive as a member listing with inlined member contents."""
        members = []
        remaining = n_tables
        n_members = max(1, min(5, n_tables + rng.randint(0, 2)))
        for index in range(n_members):
            take = min(remaining, rng.randint(0, 3)) if remaining else 0
            remaining -= take
            body = self._render_csv(rng, take, ",")
            members.append(f"--- member:{index}.csv ---\n{body}")
        if remaining > 0:
            members.append(
                f"--- member:extra.csv ---\n"
                + self._render_csv(rng, remaining, ",")
            )
        return "\n\n".join(members)
