"""Statistics-table detection in heterogeneous target files.

A lightweight stand-in for the table-extraction systems the paper cites
(≈1 s/page PDF extractors): detects rectangular, mostly-numeric tables
in delimited text, fixed-width document blocks, JSON record arrays,
spreadsheet sheets and archive members.  A block counts as a statistics
table when it has at least 3 data rows and 2 columns with a majority of
numeric body cells — the same operational definition the generator uses,
so generator → detector consistency is testable.
"""

from __future__ import annotations

import json
import re

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")
_MIN_ROWS = 3
_MIN_COLS = 2


def _is_numeric(cell: str) -> bool:
    return bool(_NUMBER_RE.match(cell.strip()))


def _looks_like_table(rows: list[list[str]]) -> bool:
    """Rectangular, ≥3 data rows × ≥2 columns, majority numeric cells."""
    if len(rows) < _MIN_ROWS + 1:  # header + data rows
        return False
    width = len(rows[0])
    if width < _MIN_COLS:
        return False
    if any(len(row) != width for row in rows):
        return False
    body = rows[1:]
    cells = [cell for row in body for cell in row]
    if not cells:
        return False
    numeric = sum(1 for cell in cells if _is_numeric(cell))
    return numeric / len(cells) > 0.5


def _split_blocks(text: str) -> list[str]:
    return [block for block in re.split(r"\n\s*\n", text) if block.strip()]


def _detect_delimited(block: str, delimiter: str) -> bool:
    rows = [line.split(delimiter) for line in block.strip().splitlines()]
    return _looks_like_table(rows)


def _detect_fixed_width(block: str) -> bool:
    rows = [re.split(r"\s{2,}", line.strip()) for line in block.strip().splitlines()]
    return _looks_like_table(rows)


def _count_in_json(text: str) -> int:
    try:
        data = json.loads(text)
    except (ValueError, TypeError):
        return 0
    count = 0

    def walk(node: object) -> None:
        nonlocal count
        if isinstance(node, list):
            if _json_records_are_table(node):
                count += 1
            else:
                for item in node:
                    walk(item)
        elif isinstance(node, dict):
            for value in node.values():
                walk(value)

    walk(data)
    return count


def _json_records_are_table(records: list) -> bool:
    if len(records) < _MIN_ROWS:
        return False
    if not all(isinstance(r, dict) for r in records):
        return False
    keys = set(records[0].keys()) if records else set()
    if len(keys) < _MIN_COLS:
        return False
    if any(set(r.keys()) != keys for r in records):
        return False
    numeric = sum(
        1
        for record in records
        for value in record.values()
        if isinstance(value, (int, float))
    )
    total = len(records) * len(keys)
    return total > 0 and numeric / total > 0.5


def detect_tables(body: str, mime_type: str) -> list[str]:
    """Return the blocks of ``body`` recognised as statistics tables."""
    mime = mime_type.split(";")[0].strip().lower()
    if "json" in mime:
        return ["<json-table>"] * _count_in_json(body)
    tables: list[str] = []
    for block in _split_blocks(body):
        cleaned = block
        # Strip generator/member/sheet headers before structure detection.
        lines = [
            line
            for line in cleaned.splitlines()
            if not line.startswith(("###", "---", "[TABLE]"))
        ]
        cleaned = "\n".join(lines)
        if not cleaned.strip():
            continue
        if "\t" in cleaned and _detect_delimited(cleaned, "\t"):
            tables.append(block)
        elif "," in cleaned and _detect_delimited(cleaned, ","):
            tables.append(block)
        elif _detect_fixed_width(cleaned):
            tables.append(block)
    return tables


def count_statistic_tables(body: str, mime_type: str) -> int:
    """Number of statistics tables detected in a target file."""
    return len(detect_tables(body, mime_type))
