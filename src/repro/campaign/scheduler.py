"""Discrete-event scheduling of multi-site crawl campaigns.

Model: a campaign has W workers and one request queue per website.
Each request occupies a worker for ``service_time`` seconds (parsing,
I/O) and each *site* enforces ``politeness_delay`` seconds between the
starts of its consecutive requests.  Workers always take the runnable
request whose site has been waiting longest; when every site is inside
its politeness window, workers idle until the earliest one opens.

The headline output is the campaign *makespan* versus crawling the
sites one after another — the speedup a data-acquisition team gets from
cross-site interleaving without ever violating per-site politeness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@runtime_checkable
class TraceLike(Protocol):
    """What :meth:`SiteWorkload.from_trace` needs from a trace.

    Structurally satisfied by :class:`repro.analysis.trace.CrawlTrace`
    (attributes or properties both work) and by any recorded-trace
    stand-in a campaign replay might supply.
    """

    @property
    def site(self) -> str: ...

    @property
    def n_requests(self) -> int: ...

    @property
    def total_bytes(self) -> int: ...


@dataclass(frozen=True)
class SiteWorkload:
    """One site's crawl, reduced to what scheduling needs."""

    site: str
    n_requests: int
    #: bytes transferred (affects service time via bandwidth)
    total_bytes: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError(
                f"site {self.site!r}: n_requests cannot be negative "
                f"({self.n_requests})"
            )
        if self.total_bytes < 0:
            raise ValueError(
                f"site {self.site!r}: total_bytes cannot be negative "
                f"({self.total_bytes})"
            )

    @staticmethod
    def from_trace(trace: TraceLike) -> "SiteWorkload":
        return SiteWorkload(
            site=trace.site,
            n_requests=trace.n_requests,
            total_bytes=trace.total_bytes,
        )


@dataclass
class CampaignReport:
    """Outcome of a campaign simulation."""

    n_workers: int
    politeness_delay: float
    makespan_seconds: float
    sequential_seconds: float
    per_site_finish: dict[str, float] = field(default_factory=dict)
    worker_busy_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        if self.makespan_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.makespan_seconds

    @property
    def utilisation(self) -> float:
        total_capacity = self.n_workers * self.makespan_seconds
        if total_capacity <= 0:
            return 0.0
        return self.worker_busy_seconds / total_capacity

    def render(self) -> str:
        hours = self.makespan_seconds / 3600
        seq_hours = self.sequential_seconds / 3600
        return (
            f"campaign: {len(self.per_site_finish)} sites, "
            f"{self.n_workers} workers -> {hours:.1f} h "
            f"(sequential {seq_hours:.1f} h, speedup {self.speedup:.2f}x, "
            f"worker utilisation {100 * self.utilisation:.0f}%)"
        )


def schedule_campaign(
    workloads: list[SiteWorkload],
    n_workers: int = 4,
    politeness_delay: float = 1.0,
    service_time: float = 0.05,
    bandwidth_bps: float = 10e6,
) -> CampaignReport:
    """Simulate the campaign; returns makespan and per-site finish times.

    The simulation is exact for this model: per site, request k may
    start no earlier than k·politeness_delay after the site's first
    start; a worker is busy for ``service_time + bytes/bandwidth``.
    """
    if n_workers <= 0:
        raise ValueError("need at least one worker")
    if not workloads:
        return CampaignReport(
            n_workers=n_workers,
            politeness_delay=politeness_delay,
            makespan_seconds=0.0,
            sequential_seconds=0.0,
        )

    per_request_service = {
        w.site: service_time
        + (w.total_bytes / max(w.n_requests, 1)) / bandwidth_bps
        for w in workloads
    }
    remaining = {w.site: w.n_requests for w in workloads}
    #: earliest time each site may start its next request
    site_ready = {w.site: 0.0 for w in workloads}
    #: min-heap of worker availability times
    workers = [0.0] * n_workers
    heapq.heapify(workers)
    finish: dict[str, float] = {}
    busy = 0.0

    active = [w.site for w in workloads if w.n_requests > 0]
    for site in [w.site for w in workloads if w.n_requests == 0]:
        finish[site] = 0.0

    while active:
        worker_free = heapq.heappop(workers)
        # Pick the runnable site that has been ready the longest; the
        # site name is the last key so ties cannot fall back to input
        # order — the schedule is a pure function of the workload *set*.
        site = min(active, key=lambda s: (max(site_ready[s], worker_free),
                                          site_ready[s], s))
        start = max(site_ready[site], worker_free)
        duration = per_request_service[site]
        end = start + duration
        busy += duration
        site_ready[site] = start + politeness_delay
        remaining[site] -= 1
        if remaining[site] == 0:
            finish[site] = end
            active.remove(site)
        heapq.heappush(workers, end)

    makespan = max(finish.values()) if finish else 0.0
    # Summation in sorted-site order: float addition is not associative,
    # so input-order summation would let permuted workload lists produce
    # reports differing in the last ulp.
    sequential = sum(
        max(
            w.n_requests * politeness_delay,
            w.n_requests * per_request_service[w.site],
        )
        for w in sorted(workloads, key=lambda w: w.site)
    )
    return CampaignReport(
        n_workers=n_workers,
        politeness_delay=politeness_delay,
        makespan_seconds=makespan,
        sequential_seconds=sequential,
        per_site_finish=finish,
        worker_busy_seconds=busy,
    )
