"""Merging per-shard outputs into one canonical campaign report.

The merge step is where the engine's determinism contract is settled:
everything order- or backend-sensitive is normalised here, *after* all
shards are collected, by one algorithm both backends share —

* per-site rows sort by site name, per-shard rows by shard id;
* the campaign :class:`~repro.http.ledger.CostLedger` folds site
  ledgers in sorted-site order, the campaign
  :class:`~repro.obs.metrics.MetricsRegistry` folds shard registries in
  sorted-shard order (float addition is not associative, so the fold
  order is pinned);
* virtual shard start/finish times come from a post-hoc heap simulation
  (:func:`assign_virtual_times`) over the engine's seeded dispatch
  order — a pure function of (durations, order, n_workers), never of
  which OS process crawled what when.

The result is a :class:`CampaignRunReport` whose canonical JSON (sorted
keys, compact separators, no backend identity anywhere) hashes to the
SHA-256 ``digest`` that the backend-equivalence gate compares.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Any

from repro.campaign.partitions import Partition
from repro.campaign.scheduler import schedule_campaign
from repro.campaign.workers import ShardOutcome
from repro.http.ledger import CostLedger
from repro.obs.metrics import MetricsRegistry

#: canonical-report schema version (bump on any payload shape change)
SCHEMA_VERSION = 1


def assign_virtual_times(
    dispatch_order: list[int],
    durations: dict[int, float],
    n_workers: int,
) -> dict[int, tuple[float, float]]:
    """Map each shard to (start, finish) on the virtual politeness clock.

    Greedy list scheduling: shards are taken in dispatch order and each
    lands on the earliest-free of ``n_workers`` virtual slots (slot
    index breaks ties, so the assignment is deterministic).  This is
    the same clock both backends report — wall-clock never enters.
    """
    if n_workers <= 0:
        raise ValueError("need at least one worker")
    slots = [(0.0, index) for index in range(n_workers)]
    heapq.heapify(slots)
    times: dict[int, tuple[float, float]] = {}
    for shard_id in dispatch_order:
        free, index = heapq.heappop(slots)
        finish = free + durations[shard_id]
        times[shard_id] = (free, finish)
        heapq.heappush(slots, (finish, index))
    return times


@dataclass
class CampaignRunReport:
    """The merged outcome of one campaign run.

    ``to_dict`` is the canonical payload: key order is fixed by
    ``json.dumps(sort_keys=True)``, row order by the sorts above, and
    the executing backend's name appears nowhere — so the digest is a
    pure function of (sites, crawler, seed, scale, budget, sharding,
    n_workers, politeness_delay).
    """

    config: dict[str, Any]
    partitions: list[Partition]
    site_rows: list[dict[str, Any]]
    shard_rows: list[dict[str, Any]]
    ledger: CostLedger
    metrics: MetricsRegistry
    makespan_seconds: float
    sequential_seconds: float
    partial: bool = False
    #: dispatch order of shard ids (the seeded interleaving) — recorded
    #: for replay, and covered by the digest
    dispatch_order: list[int] = field(default_factory=list)

    @property
    def n_sites(self) -> int:
        return len(self.site_rows)

    @property
    def n_shards(self) -> int:
        return len(self.shard_rows)

    @property
    def n_requests(self) -> int:
        return self.ledger.n_requests

    @property
    def n_targets(self) -> int:
        return sum(row["n_targets"] for row in self.site_rows)

    @property
    def speedup(self) -> float:
        if self.makespan_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.makespan_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "config": self.config,
            "dispatch_order": list(self.dispatch_order),
            "partitions": [
                {"shard_id": p.shard_id, "sites": list(p.sites)}
                for p in self.partitions
            ],
            "sites": self.site_rows,
            "shards": self.shard_rows,
            "ledger": {
                "n_get": self.ledger.n_get,
                "n_head": self.ledger.n_head,
                "bytes_total": self.ledger.bytes_total,
                "bytes_target": self.ledger.bytes_target,
                "bytes_non_target": self.ledger.bytes_non_target,
                "n_retries": self.ledger.n_retries,
                "wait_seconds": self.ledger.wait_seconds,
            },
            "metrics": self.metrics.as_dict(),
            "schedule": {
                "makespan_seconds": self.makespan_seconds,
                "sequential_seconds": self.sequential_seconds,
                "speedup": self.speedup,
            },
            "partial": self.partial,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators — the exact
        bytes the digest covers."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the backend-equivalence
        witness (docs/campaign.md, "Determinism guarantee")."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Deterministic text summary for the CLI."""
        hours = self.makespan_seconds / 3600
        lines = [
            f"campaign: {self.n_sites} sites in {self.n_shards} shards, "
            f"{self.config['n_workers']} workers"
            + (" [PARTIAL]" if self.partial else ""),
            f"  requests {self.n_requests}, targets {self.n_targets}, "
            f"bytes {self.ledger.bytes_total}",
            f"  virtual makespan {hours:.2f} h "
            f"(speedup {self.speedup:.2f}x over sequential)",
        ]
        for row in self.shard_rows:
            tag = "" if row["status"] == "completed" else f" [{row['status'].upper()}]"
            lines.append(
                f"  shard {row['shard_id']}: {row['n_sites']} sites, "
                f"{row['n_requests']} requests, {row['n_targets']} targets, "
                f"t={row['virtual_start']:.0f}..{row['virtual_finish']:.0f}s"
                + tag
            )
        lines.append(f"  digest {self.digest[:16]}…")
        return "\n".join(lines)


def merge_outcomes(
    outcomes: list[ShardOutcome],
    partitions: list[Partition],
    dispatch_order: list[int],
    config: dict[str, Any],
    n_workers: int,
    politeness_delay: float = 1.0,
) -> CampaignRunReport:
    """Fold shard outcomes into one :class:`CampaignRunReport`.

    Pure and order-insensitive in ``outcomes`` (they are re-keyed by
    shard id), so serial and multiprocessing collections merge to the
    same bytes.
    """
    by_shard = {o.shard_id: o for o in outcomes}
    if set(by_shard) != {p.shard_id for p in partitions}:
        raise ValueError(
            "shard outcomes do not match partitions: "
            f"{sorted(by_shard)} vs {sorted(p.shard_id for p in partitions)}"
        )
    partial = any(o.status != "completed" for o in outcomes)

    site_rows: list[dict[str, Any]] = []
    site_ledgers: list[tuple[str, CostLedger]] = []
    for partition in sorted(partitions, key=lambda p: p.shard_id):
        outcome = by_shard[partition.shard_id]
        for site in outcome.sites:
            site_rows.append({
                "site": site.site,
                "shard_id": partition.shard_id,
                "seed": site.seed,
                "n_requests": site.n_requests,
                "n_targets": site.n_targets,
                "total_bytes": site.total_bytes,
                "target_bytes": site.target_bytes,
                "stopped_early": site.stopped_early,
                "n_dead_letters": site.n_dead_letters,
                "trace_digest": site.trace_digest,
            })
            site_ledgers.append((site.site, site.ledger))
    site_rows.sort(key=lambda row: row["site"])

    # Fold ledgers in sorted-site order: wait_seconds is a float sum.
    ledger = CostLedger()
    for _, site_ledger in sorted(site_ledgers, key=lambda pair: pair[0]):
        ledger.merge(site_ledger)

    # Fold metrics in sorted-shard order (same reason).
    metrics = MetricsRegistry()
    for shard_id in sorted(by_shard):
        metrics.merge(by_shard[shard_id].metrics)

    # Virtual clock: each shard's duration is its single-worker makespan
    # (one worker drives one shard — politeness is shard-local), shards
    # then pack onto n_workers virtual slots in dispatch order.
    durations = {}
    for partition in partitions:
        outcome = by_shard[partition.shard_id]
        workloads = [s.workload for s in outcome.sites]
        durations[partition.shard_id] = schedule_campaign(
            workloads, n_workers=1, politeness_delay=politeness_delay
        ).makespan_seconds
    times = assign_virtual_times(dispatch_order, durations, n_workers)

    shard_rows = []
    for partition in sorted(partitions, key=lambda p: p.shard_id):
        outcome = by_shard[partition.shard_id]
        start, finish = times[partition.shard_id]
        shard_rows.append({
            "shard_id": partition.shard_id,
            "status": outcome.status,
            "n_sites": partition.n_sites,
            "n_requests": outcome.n_requests,
            "n_targets": outcome.n_targets,
            "virtual_start": start,
            "virtual_finish": finish,
        })

    makespan = max((row["virtual_finish"] for row in shard_rows), default=0.0)
    sequential = sum(durations[shard_id] for shard_id in sorted(durations))
    return CampaignRunReport(
        config=config,
        partitions=sorted(partitions, key=lambda p: p.shard_id),
        site_rows=site_rows,
        shard_rows=shard_rows,
        ledger=ledger,
        metrics=metrics,
        makespan_seconds=makespan,
        sequential_seconds=sequential,
        partial=partial,
        dispatch_order=list(dispatch_order),
    )
