"""Sharding a campaign's sites into per-domain partitions.

Parallel crawlers shard work *by host* so per-host politeness is a
local concern: every site lives wholly inside one shard, one worker
drives one shard at a time, and no two workers can ever alternate
requests against the same host (Cho & Garcia-Molina 2002; UbiCrawler's
host-hash assignment).  This module computes that assignment
deterministically: given site names and optional cost weights, LPT
(longest-processing-time-first) greedy packing balances expected load
across shards while keeping the result a pure function of the input
*set* — permuting the input order changes nothing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(frozen=True)
class Partition:
    """One shard's slice of the campaign: a set of whole sites."""

    shard_id: int
    #: site names, sorted — a shard never splits a site, so per-host
    #: politeness needs no cross-worker coordination
    sites: tuple[str, ...]

    @property
    def n_sites(self) -> int:
        return len(self.sites)


def partition_sites(
    sites: list[str] | tuple[str, ...],
    n_shards: int,
    weights: dict[str, float] | None = None,
) -> list[Partition]:
    """Assign each site to exactly one of ``n_shards`` partitions.

    LPT greedy: sites descend by estimated cost (``weights``, default
    1.0 each) and each lands on the currently lightest shard.  Ties
    break by site name and then shard id, so the plan is deterministic
    and permutation-invariant.  Shards left empty (more shards than
    sites) are dropped; the survivors are re-numbered densely.

    Raises ``ValueError`` on an empty/duplicated site list, a
    non-positive shard count, or a negative weight.
    """
    if n_shards <= 0:
        raise ValueError("need at least one shard")
    ordered = sorted(sites)
    if not ordered:
        raise ValueError("cannot partition an empty campaign")
    if len(set(ordered)) != len(ordered):
        duplicates = sorted({s for s in ordered if ordered.count(s) > 1})
        raise ValueError(f"duplicate sites in campaign: {duplicates}")
    weights = weights or {}
    for site in ordered:
        if weights.get(site, 1.0) < 0:
            raise ValueError(f"site {site!r}: negative weight")

    # Heaviest first; name tie-break keeps equal-weight orders stable.
    by_cost = sorted(ordered, key=lambda s: (-weights.get(s, 1.0), s))
    #: min-heap of (load, shard_index) — lightest shard wins, index
    #: tie-break keeps equal loads deterministic.
    loads = [(0.0, index) for index in range(n_shards)]
    heapq.heapify(loads)
    assigned: dict[int, list[str]] = {index: [] for index in range(n_shards)}
    for site in by_cost:
        load, index = heapq.heappop(loads)
        assigned[index].append(site)
        heapq.heappush(loads, (load + weights.get(site, 1.0), index))

    partitions = []
    for index in range(n_shards):
        if assigned[index]:
            partitions.append(
                Partition(shard_id=len(partitions),
                          sites=tuple(sorted(assigned[index])))
            )
    return partitions
