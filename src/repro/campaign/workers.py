"""The worker pool: shard tasks, shard outcomes, and the two backends.

A :class:`ShardTask` is everything one worker needs to crawl its shard
— site names, crawler, seed, scale, budget — and a
:class:`ShardOutcome` is everything the merge step needs back:
per-site summaries with ledgers and trace digests, plus the shard's
folded metrics registry.  Both are plain picklable dataclasses, so the
same :func:`run_shard` function serves both backends:

* :class:`SerialBackend` — the deterministic reference.  Executes
  tasks one at a time in the engine's seeded dispatch order (the
  virtual-politeness-clock interleaving computed in
  ``repro.campaign.engine``), in-process;
* :class:`MultiprocessingBackend` — the opt-in real pool.  ``spawn``
  context (fork-safety is not assumed anywhere in the tree), workers
  ignore SIGINT so Ctrl-C lands only in the parent, and an interrupt
  terminates the pool gracefully: already-collected shards survive,
  uncollected ones come back as ``"interrupted"`` placeholders, and no
  child outlives the call.

Because every crawl is a pure function of ``(site, crawler, seed,
scale, budget)`` — the property the shard-safety certificate
(bench_results/shard_safety.json) proves for all worker-reachable code
— both backends produce identical outcome sets, which is what makes
the merged campaign report byte-identical across backends.
"""

from __future__ import annotations

import hashlib
import json
import signal
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.analysis.trace import CrawlTrace
from repro.campaign.scheduler import SiteWorkload
from repro.checkpoint.controller import CrawlInterrupted
from repro.http.ledger import CostLedger
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order — picklable, spawn-safe."""

    shard_id: int
    sites: tuple[str, ...]
    crawler: str = "SB-CLASSIFIER"
    seed: int = 1
    scale: float = 0.5
    budget: float | None = None
    #: directory for per-site JSONL event traces (None = no tracing)
    trace_dir: str | None = None
    #: campaign checkpoint directory (None = checkpointing off)
    checkpoint_dir: str | None = None
    #: crawl steps between periodic mid-site checkpoints (0 = only on
    #: shutdown)
    checkpoint_every: int = 0
    #: resume from the shard's on-disk progress instead of starting fresh
    resume: bool = False


@dataclass(frozen=True)
class SiteOutcome:
    """One site's crawl, reduced to what merging needs — picklable."""

    site: str
    crawler: str
    seed: int
    n_requests: int
    n_targets: int
    total_bytes: int
    target_bytes: int
    stopped_early: bool
    n_dead_letters: int
    #: SHA-256 over the canonical request trace — the per-site witness
    #: behind the campaign report's digest
    trace_digest: str
    ledger: CostLedger
    workload: SiteWorkload


@dataclass
class ShardOutcome:
    """What one worker hands back for one shard."""

    shard_id: int
    #: "completed" | "interrupted" (graceful-shutdown placeholder)
    status: str = "completed"
    sites: list[SiteOutcome] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def n_requests(self) -> int:
        return sum(s.n_requests for s in self.sites)

    @property
    def n_targets(self) -> int:
        return sum(s.n_targets for s in self.sites)


def trace_digest(trace: CrawlTrace) -> str:
    """SHA-256 over the canonical JSON form of a request trace."""
    payload = [
        [r.method, r.url, r.status, r.size, r.is_target]
        for r in trace.records
    ]
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _ledger_from_trace(trace: CrawlTrace) -> CostLedger:
    """Reconstruct request/volume counters for a crawler that did not
    surface its client ledger (retry counters are unrecoverable)."""
    ledger = CostLedger()
    for record in trace.records:
        ledger.record(record.method, record.size, record.is_target)
    return ledger


def site_seed(campaign_seed: int, site: str) -> int:
    """The per-site crawl seed: derived, so sites are decorrelated and
    the assignment of sites to shards cannot change any crawl."""
    return derive_seed(campaign_seed, "campaign", site)


def make_crawler(name: str, seed: int):
    """Instantiate a crawler by its table name.

    Local to the campaign layer on purpose: the experiments package
    (which has its own factory for the paper tables) sits *above*
    campaign in the layer diagram, so workers cannot reach into it
    without inverting the architecture — and without dragging the
    whole experiment runner into the shard-safety surface.
    """
    from repro.baselines import (
        BFSCrawler,
        DFSCrawler,
        FocusedCrawler,
        OmniscientCrawler,
        RandomCrawler,
        TPOffCrawler,
        TresCrawler,
    )
    from repro.core.crawler import SBConfig, SBCrawler

    if name == "SB-ORACLE":
        return SBCrawler(SBConfig(use_oracle=True, seed=seed))
    if name == "SB-CLASSIFIER":
        return SBCrawler(SBConfig(use_oracle=False, seed=seed))
    if name == "FOCUSED":
        return FocusedCrawler(seed=seed)
    if name == "TP-OFF":
        return TPOffCrawler(bootstrap_pages=300, seed=seed)
    if name == "BFS":
        return BFSCrawler()
    if name == "DFS":
        return DFSCrawler()
    if name == "RANDOM":
        return RandomCrawler(seed=seed)
    if name == "OMNISCIENT":
        return OmniscientCrawler()
    if name == "TRES":
        return TresCrawler(seed=seed)
    raise ValueError(f"unknown crawler: {name!r}")


def _supports_checkpoint(crawler) -> bool:
    """Whether the crawler's ``crawl`` accepts a ``checkpoint`` kwarg
    (crawlers without one simply restart their in-flight site on
    resume; completed sites still come from the shard progress)."""
    import inspect

    return "checkpoint" in inspect.signature(crawler.crawl).parameters


def _crawl_site(task: ShardTask, site: str, seed: int,
                observer: MetricsObserver, checkpointer=None):
    """One site's crawl, with opt-in JSONL tracing and checkpointing."""
    from pathlib import Path

    from repro.http.environment import CrawlEnvironment
    from repro.obs.observer import MultiObserver
    from repro.obs.sinks import JsonlSink, truncate_events
    from repro.webgraph.sites import load_paper_site

    crawler = make_crawler(task.crawler, seed)
    kwargs: dict = {}
    if checkpointer is not None and _supports_checkpoint(crawler):
        kwargs["checkpoint"] = checkpointer

    if task.trace_dir is None:
        env = CrawlEnvironment(
            load_paper_site(site, scale=task.scale), observer=observer
        )
        return crawler.crawl(env, budget=task.budget, **kwargs)

    # The directory must already exist: creating it here would put
    # filesystem io on the worker surface the shard-safety certificate
    # keeps pure/reads-only, so the CLI (outside the worker-entry
    # packages) creates it before dispatch.
    directory = Path(task.trace_dir)
    trace_path = directory / f"{site}-{task.crawler}-s{task.seed}.jsonl"
    resume_sink = None
    if checkpointer is not None and checkpointer.resume_payload is not None:
        resume_sink = checkpointer.resume_payload.get("extras", {}).get("sink")
    if resume_sink is not None:
        # Rewind the trace to the snapshot's event count, then append:
        # the resumed run re-emits events from the checkpoint onward
        # without duplicating anything before it.
        truncate_events(trace_path, resume_sink["n_events"])
        sink = JsonlSink(trace_path, append=True)
    else:
        sink = JsonlSink(
            trace_path,
            meta={"crawler": task.crawler, "site": site,
                  "seed": task.seed, "scale": task.scale,
                  "shard": task.shard_id},
        )
    with sink:
        if checkpointer is not None:
            checkpointer.extras["sink"] = sink
        env = CrawlEnvironment(
            load_paper_site(site, scale=task.scale),
            observer=MultiObserver([observer, sink]),
        )
        return crawler.crawl(env, budget=task.budget, **kwargs)


def _site_outcome(task: ShardTask, site: str, seed: int, result) -> SiteOutcome:
    """Reduce one crawl result to its picklable site outcome."""
    ledger = result.info.get("ledger")
    if not isinstance(ledger, CostLedger):
        ledger = _ledger_from_trace(result.trace)
    return SiteOutcome(
        site=site,
        crawler=task.crawler,
        seed=seed,
        n_requests=result.n_requests,
        n_targets=result.n_targets,
        total_bytes=result.trace.total_bytes,
        target_bytes=result.trace.target_bytes,
        stopped_early=result.stopped_early,
        n_dead_letters=result.n_dead_letters,
        trace_digest=trace_digest(result.trace),
        ledger=ledger,
        workload=SiteWorkload.from_trace(result.trace),
    )


def run_shard(task: ShardTask, shutdown=None) -> ShardOutcome:
    """Crawl every site of one shard; the single worker entry point.

    Runs identically in-process (serial backend) and in a spawned
    worker (multiprocessing backend): all inputs arrive in ``task``,
    all outputs leave in the returned :class:`ShardOutcome`, and every
    random draw derives from ``(task.seed, site)`` — nothing depends on
    which process, or in what order, shards execute.

    With ``task.checkpoint_dir`` set the shard becomes durable: shard
    progress is persisted after every completed site, the in-flight
    site snapshots itself every ``task.checkpoint_every`` steps (and on
    ``shutdown``), and ``task.resume`` continues a partially-completed
    shard so the final outcome — and the merged report digest — is
    byte-identical to an uninterrupted run.
    """
    outcome = ShardOutcome(shard_id=task.shard_id)
    progress_store = None
    completed: list = []
    done_sites: set[str] = set()
    if task.checkpoint_dir is not None:
        from repro.campaign.checkpoint import (
            SHARD_PROGRESS_KIND,
            restore_shard_progress,
            shard_store,
        )

        progress_store = shard_store(task.checkpoint_dir, task.shard_id)
        if task.resume:
            loaded = progress_store.read_latest(kind=SHARD_PROGRESS_KIND)
            if loaded is not None:
                completed = restore_shard_progress(loaded.payload)
                for site_outcome, registry in completed:
                    outcome.sites.append(site_outcome)
                    outcome.metrics.merge(registry)
                    done_sites.add(site_outcome.site)

    def _write_progress() -> None:
        from repro.campaign.checkpoint import shard_progress_payload

        progress_store.write_checkpoint(
            shard_progress_payload(task.shard_id, completed),
            step=len(completed),
        )
        progress_store.prune_old(keep=2)

    for site in sorted(task.sites):
        if site in done_sites:
            continue
        if shutdown is not None and shutdown.is_set():
            outcome.status = "interrupted"
            if progress_store is not None:
                _write_progress()
            return outcome
        seed = site_seed(task.seed, site)
        observer = MetricsObserver()
        checkpointer = None
        if task.checkpoint_dir is not None:
            from repro.campaign.checkpoint import site_store
            from repro.checkpoint.controller import CrawlCheckpointer

            checkpointer = CrawlCheckpointer(
                site_store(task.checkpoint_dir, task.shard_id, site),
                every=task.checkpoint_every,
                flag=shutdown,
            )
            checkpointer.extras["observer"] = observer
            if task.resume:
                loaded_site = checkpointer.store.read_latest()
                if loaded_site is not None:
                    checkpointer.arm_resume(loaded_site)
                    observer.restore_state(
                        loaded_site.payload["extras"]["observer"]
                    )
        try:
            result = _crawl_site(task, site, seed, observer, checkpointer)
        except CrawlInterrupted:
            # The crawler already saved its final mid-site checkpoint;
            # persist the shard's completed-site progress and hand back
            # the graceful-shutdown placeholder.
            outcome.status = "interrupted"
            if progress_store is not None:
                _write_progress()
            return outcome
        outcome.sites.append(_site_outcome(task, site, seed, result))
        outcome.metrics.merge(observer.registry)
        completed.append((outcome.sites[-1], observer.registry))
        if progress_store is not None:
            _write_progress()
    return outcome


def interrupted_outcome(shard_id: int) -> ShardOutcome:
    """The placeholder for a shard the shutdown path never collected."""
    return ShardOutcome(shard_id=shard_id, status="interrupted")


class WorkerPool(Protocol):
    """Structural backend contract: run tasks, return one outcome per
    task (order-insensitive — the merge step sorts by shard id)."""

    name: str

    def run_tasks(self, tasks: list[ShardTask]) -> list[ShardOutcome]: ...


class SerialBackend:
    """Deterministic in-process execution in the given dispatch order.

    The reference backend: what it returns *defines* the campaign
    report the multiprocessing backend must reproduce byte for byte.
    A ``KeyboardInterrupt`` mid-campaign degrades gracefully — shards
    already crawled survive, the rest report ``"interrupted"``.
    """

    name = "serial"

    def __init__(self, shutdown=None) -> None:
        #: optional ShutdownFlag checked between (and, via the crawl
        #: checkpointer, inside) shards for graceful durable shutdown
        self.shutdown = shutdown

    def run_tasks(self, tasks: list[ShardTask]) -> list[ShardOutcome]:
        outcomes: list[ShardOutcome] = []
        pending = list(tasks)
        try:
            while pending:
                task = pending.pop(0)
                if self.shutdown is not None:
                    outcome = run_shard(task, shutdown=self.shutdown)
                else:
                    outcome = run_shard(task)
                outcomes.append(outcome)
                if outcome.status == "interrupted":
                    # Durable shutdown: the in-flight shard checkpointed
                    # itself; the rest were never started.
                    outcomes.extend(
                        interrupted_outcome(t.shard_id) for t in pending
                    )
                    break
        except KeyboardInterrupt:
            outcomes.append(interrupted_outcome(task.shard_id))
            outcomes.extend(interrupted_outcome(t.shard_id) for t in pending)
        return outcomes


def _worker_ignore_sigint() -> None:
    """Pool initializer: Ctrl-C must land in the parent only, so the
    shutdown sequence (terminate, join, partial report) stays in one
    place instead of racing eight interpreters."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class MultiprocessingBackend:
    """Opt-in real parallelism over a ``spawn`` process pool.

    Tasks are submitted in the engine's dispatch order and collected in
    that same order (a deterministic barrier), so the outcome list —
    and hence the merged report — is identical to the serial backend's.
    On ``KeyboardInterrupt`` the pool is terminated and joined before
    returning: collected shards survive, uncollected ones come back as
    ``"interrupted"``, and no child process is left behind.

    ``_collect_hook`` is a test seam: called after each collected
    outcome, it lets the SIGINT tests inject an interrupt at an exact
    point without racing a real signal against the pool.
    """

    name = "multiprocessing"

    def __init__(
        self,
        n_workers: int = 4,
        _collect_hook: Callable[[ShardOutcome], None] | None = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("need at least one worker process")
        self.n_workers = n_workers
        self._collect_hook = _collect_hook

    def run_tasks(self, tasks: list[ShardTask]) -> list[ShardOutcome]:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        outcomes: list[ShardOutcome] = []
        pool = context.Pool(
            processes=min(self.n_workers, max(len(tasks), 1)),
            initializer=_worker_ignore_sigint,
        )
        try:
            handles = [pool.apply_async(run_shard, (task,)) for task in tasks]
            try:
                for task, handle in zip(tasks, handles):
                    outcomes.append(handle.get())
                    if self._collect_hook is not None:
                        self._collect_hook(outcomes[-1])
                pool.close()
            except KeyboardInterrupt:
                pool.terminate()
                collected = {o.shard_id for o in outcomes}
                for t in tasks:
                    if t.shard_id in collected:
                        continue
                    if t.checkpoint_dir is not None:
                        # Durable interrupt: stamp the shard store so a
                        # resume knows this shard's on-disk progress
                        # (periodic mid-site snapshots plus per-site
                        # progress) is the authoritative restart point.
                        self._write_interrupt_marker(t)
                    outcomes.append(interrupted_outcome(t.shard_id))
        finally:
            pool.join()
        return outcomes

    @staticmethod
    def _write_interrupt_marker(task: ShardTask) -> None:
        from repro.campaign.checkpoint import (
            interrupted_marker_payload,
            shard_store,
        )

        shard_store(task.checkpoint_dir, task.shard_id).write_checkpoint(
            interrupted_marker_payload(task.shard_id)
        )
