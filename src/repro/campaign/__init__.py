"""Multi-site acquisition campaigns.

The paper's motivating application — populating a statistics-data lake
for fact-checking — needs *many* organisations crawled, each under its
own politeness constraint.  Parallel crawlers (Cho & Garcia-Molina 2002;
UbiCrawler) interleave requests across hosts so politeness waits on one
site are spent working on another.  This package simulates that: given
per-site crawl traces (from any crawler in this library) and a worker
pool, a discrete-event scheduler computes the campaign makespan under
per-host delays, quantifying the speedup of cross-site interleaving.
"""

from repro.campaign.scheduler import CampaignReport, SiteWorkload, schedule_campaign

__all__ = ["CampaignReport", "SiteWorkload", "schedule_campaign"]
