"""Multi-site acquisition campaigns: simulation and execution.

The paper's motivating application — populating a statistics-data lake
for fact-checking — needs *many* organisations crawled, each under its
own politeness constraint.  Parallel crawlers (Cho & Garcia-Molina 2002;
UbiCrawler) interleave requests across hosts so politeness waits on one
site are spent working on another.  This package provides both halves
of that story:

* **simulation** (``scheduler``) — given per-site crawl traces, a
  discrete-event scheduler computes the campaign makespan under
  per-host delays, quantifying the speedup of cross-site interleaving;
* **execution** (``partitions`` / ``workers`` / ``merge`` / ``engine``)
  — an engine that actually *runs* the campaign: sites shard into
  per-domain partitions, a worker pool (deterministic serial backend,
  or an opt-in multiprocessing backend) crawls each shard, and the
  outputs merge into one canonical report whose SHA-256 digest is
  byte-identical across backends (docs/campaign.md).
"""

from repro.campaign.engine import (
    CampaignSpec,
    dispatch_order,
    run_campaign,
    shard_tasks,
    site_weights,
)
from repro.campaign.merge import (
    CampaignRunReport,
    assign_virtual_times,
    merge_outcomes,
)
from repro.campaign.partitions import Partition, partition_sites
from repro.campaign.scheduler import (
    CampaignReport,
    SiteWorkload,
    TraceLike,
    schedule_campaign,
)
from repro.campaign.workers import (
    MultiprocessingBackend,
    SerialBackend,
    ShardOutcome,
    ShardTask,
    SiteOutcome,
    WorkerPool,
    run_shard,
    site_seed,
    trace_digest,
)

__all__ = [
    # simulation
    "CampaignReport",
    "SiteWorkload",
    "TraceLike",
    "schedule_campaign",
    # sharding
    "Partition",
    "partition_sites",
    # workers
    "ShardTask",
    "SiteOutcome",
    "ShardOutcome",
    "WorkerPool",
    "SerialBackend",
    "MultiprocessingBackend",
    "run_shard",
    "site_seed",
    "trace_digest",
    # merge
    "CampaignRunReport",
    "assign_virtual_times",
    "merge_outcomes",
    # engine
    "CampaignSpec",
    "run_campaign",
    "dispatch_order",
    "shard_tasks",
    "site_weights",
]
