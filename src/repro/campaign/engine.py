"""The campaign execution engine: shard, dispatch, collect, merge.

:func:`run_campaign` is the one entry point: it partitions a
:class:`CampaignSpec`'s sites into per-domain shards
(:mod:`repro.campaign.partitions`), derives a seeded dispatch order (a
``derive_rng(seed, "campaign", "interleave")`` shuffle — the virtual
interleaving a politeness-aware scheduler would explore), runs the
shards through a worker-pool backend (:mod:`repro.campaign.workers`),
and merges the outcomes into one canonical
:class:`~repro.campaign.merge.CampaignRunReport`.

Determinism guarantee (docs/campaign.md): for a fixed spec, the merged
report — and hence its SHA-256 digest — is byte-identical across the
serial and multiprocessing backends and across repeated runs.  The
engine earns this by construction rather than by luck:

* every per-site crawl seed derives from ``(seed, site)`` only, so the
  site-to-shard assignment cannot perturb any crawl;
* all ordering is normalised in the merge step, after collection;
* virtual shard times come from a post-hoc simulation shared by both
  backends — wall-clock never appears in the payload;
* campaign observability events (``shard_started`` /
  ``shard_finished`` / ``campaign_merged``) are *replayed* to the
  observer after collection, in dispatch order, so even the event
  stream is byte-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.merge import CampaignRunReport, merge_outcomes
from repro.campaign.partitions import Partition, partition_sites
from repro.campaign.workers import SerialBackend, ShardTask, WorkerPool
from repro.obs.events import CampaignMerged, ShardFinished, ShardStarted
from repro.obs.observer import Observer
from repro.utils.rng import derive_rng
from repro.webgraph.sites import PAPER_SITES


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that defines one campaign run (and its digest)."""

    sites: tuple[str, ...]
    crawler: str = "SB-CLASSIFIER"
    seed: int = 1
    scale: float = 0.5
    budget: float | None = None
    n_shards: int = 4
    n_workers: int = 4
    politeness_delay: float = 1.0
    #: directory for per-site JSONL event traces (None = no tracing)
    trace_dir: str | None = None

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("campaign needs at least one site")
        if self.n_workers <= 0:
            raise ValueError("need at least one worker")
        if self.politeness_delay < 0:
            raise ValueError("politeness delay cannot be negative")


def site_weights(sites: tuple[str, ...]) -> dict[str, float]:
    """LPT cost estimates: page counts from the paper-site profiles
    (unknown sites weigh 1.0 — partitioning still balances counts)."""
    return {
        site: float(PAPER_SITES[site].n_pages)
        for site in sites
        if site in PAPER_SITES
    }


def dispatch_order(spec: CampaignSpec, partitions: list[Partition]) -> list[int]:
    """The seeded shard interleaving: a deterministic shuffle of shard
    ids, shared verbatim by both backends (submission order there,
    virtual-slot packing order in the merge step)."""
    order = [p.shard_id for p in partitions]
    derive_rng(spec.seed, "campaign", "interleave").shuffle(order)
    return order


def shard_tasks(
    spec: CampaignSpec,
    partitions: list[Partition],
    order: list[int],
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> list[ShardTask]:
    """One picklable work order per shard, in dispatch order."""
    by_id = {p.shard_id: p for p in partitions}
    return [
        ShardTask(
            shard_id=shard_id,
            sites=by_id[shard_id].sites,
            crawler=spec.crawler,
            seed=spec.seed,
            scale=spec.scale,
            budget=spec.budget,
            trace_dir=spec.trace_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
        for shard_id in order
    ]


def run_campaign(
    spec: CampaignSpec,
    backend: WorkerPool | None = None,
    observer: Observer | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> CampaignRunReport:
    """Execute a campaign end to end and return the merged report.

    ``backend`` defaults to the deterministic :class:`SerialBackend`;
    pass a :class:`~repro.campaign.workers.MultiprocessingBackend` for
    real parallelism — the report is byte-identical either way.
    ``observer`` receives the replayed campaign event stream.

    With ``checkpoint_dir`` set the campaign is durable: every
    completed shard's outcome is persisted, workers write per-shard
    progress and mid-site snapshots, and ``resume=True`` continues an
    interrupted campaign — already-completed shards are loaded from
    disk instead of re-crawled, partially-completed shards resume
    mid-site, and the merged report (and digest) is byte-identical to
    an uninterrupted run.  Checkpoint parameters never enter the report
    ``config``, so checkpointed and plain runs share one digest.
    """
    pool = backend if backend is not None else SerialBackend()
    partitions = partition_sites(
        list(spec.sites), spec.n_shards, weights=site_weights(spec.sites)
    )
    order = dispatch_order(spec, partitions)
    tasks = shard_tasks(
        spec, partitions, order,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )

    restored: dict[int, object] = {}
    if checkpoint_dir is not None and resume:
        from repro.campaign.checkpoint import (
            SHARD_OUTCOME_KIND,
            campaign_store,
            payload_to_shard_outcome,
        )

        for loaded in campaign_store(checkpoint_dir).read_all(
            kind=SHARD_OUTCOME_KIND
        ):
            outcome = payload_to_shard_outcome(loaded.payload)
            restored[outcome.shard_id] = outcome  # latest write wins

    pending = [t for t in tasks if t.shard_id not in restored]
    fresh = pool.run_tasks(pending) if pending else []

    if checkpoint_dir is not None:
        from repro.campaign.checkpoint import (
            campaign_store,
            shard_outcome_to_payload,
        )

        store = campaign_store(checkpoint_dir)
        for outcome in fresh:
            if outcome.status == "completed":
                store.write_checkpoint(shard_outcome_to_payload(outcome))

    outcomes = list(restored.values()) + fresh

    report = merge_outcomes(
        outcomes,
        partitions,
        order,
        config={
            "sites": sorted(spec.sites),
            "crawler": spec.crawler,
            "seed": spec.seed,
            "scale": spec.scale,
            "budget": spec.budget,
            "n_shards": len(partitions),
            "n_workers": spec.n_workers,
            "politeness_delay": spec.politeness_delay,
        },
        n_workers=spec.n_workers,
        politeness_delay=spec.politeness_delay,
    )

    if observer is not None and observer.enabled:
        _replay_events(observer, report)
    return report


def _replay_events(observer: Observer, report: CampaignRunReport) -> None:
    """Emit the campaign event stream *after* collection, in dispatch
    order — a deterministic record, not a live feed, so both backends
    produce the same bytes (the shard_started docstring's contract)."""
    rows = {row["shard_id"]: row for row in report.shard_rows}
    sites = {p.shard_id: p.sites for p in report.partitions}
    for shard_id in report.dispatch_order:
        row = rows[shard_id]
        observer.on_event(ShardStarted(
            shard_id=shard_id,
            n_sites=row["n_sites"],
            sites=",".join(sites[shard_id]),
            virtual_start=row["virtual_start"],
        ))
        observer.on_event(ShardFinished(
            shard_id=shard_id,
            n_requests=row["n_requests"],
            n_targets=row["n_targets"],
            virtual_finish=row["virtual_finish"],
            status=row["status"],
        ))
    observer.on_event(CampaignMerged(
        n_shards=report.n_shards,
        n_sites=report.n_sites,
        n_requests=report.n_requests,
        n_targets=report.n_targets,
        makespan_seconds=report.makespan_seconds,
        digest=report.digest,
    ))
