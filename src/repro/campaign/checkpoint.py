"""Campaign-level checkpoint payloads and store layout.

The durable-state layout under a campaign checkpoint directory is::

    <dir>/campaign/                 shard-outcome payloads (one per
                                    completed shard, written by the
                                    engine after collection)
    <dir>/shard-000/                shard-progress payloads (completed
                                    sites of shard 0, written by the
                                    worker after every site) and
                                    shard-interrupted markers
    <dir>/shard-000/site-<name>/    mid-crawl snapshots of the site the
                                    worker was crawling when stopped

Everything stored here is a canonical-JSON payload (repro.checkpoint
codec discipline: no wall clock, no absolute paths, insertion-ordered
lists instead of int-keyed dicts), so checkpoint directories relocate
freely and resumed runs replay byte-identically.
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign.scheduler import SiteWorkload
from repro.checkpoint.store import CheckpointStore
from repro.http.ledger import CostLedger
from repro.obs.metrics import MetricsRegistry

#: payload kinds written by the campaign layer
SHARD_PROGRESS_KIND = "shard-progress"
SHARD_OUTCOME_KIND = "shard-outcome"
SHARD_INTERRUPTED_KIND = "shard-interrupted"


def shard_store(directory: str | Path, shard_id: int) -> CheckpointStore:
    """The store holding one shard's progress payloads."""
    return CheckpointStore(Path(directory) / f"shard-{shard_id:03d}")


def site_store(directory: str | Path, shard_id: int, site: str) -> CheckpointStore:
    """The store holding mid-crawl snapshots of one site of one shard."""
    return CheckpointStore(Path(directory) / f"shard-{shard_id:03d}" / f"site-{site}")


def campaign_store(directory: str | Path) -> CheckpointStore:
    """The store holding completed shard outcomes for engine resume."""
    return CheckpointStore(Path(directory) / "campaign")


# -- SiteOutcome codec ----------------------------------------------------


def site_outcome_to_payload(outcome) -> dict:
    """A ``SiteOutcome`` as a canonical-JSON-safe payload."""
    return {
        "site": outcome.site,
        "crawler": outcome.crawler,
        "seed": outcome.seed,
        "n_requests": outcome.n_requests,
        "n_targets": outcome.n_targets,
        "total_bytes": outcome.total_bytes,
        "target_bytes": outcome.target_bytes,
        "stopped_early": outcome.stopped_early,
        "n_dead_letters": outcome.n_dead_letters,
        "trace_digest": outcome.trace_digest,
        "ledger": outcome.ledger.snapshot_state(),
        "workload": {
            "site": outcome.workload.site,
            "n_requests": outcome.workload.n_requests,
            "total_bytes": outcome.workload.total_bytes,
        },
    }


def payload_to_site_outcome(payload: dict):
    """Inverse of :func:`site_outcome_to_payload`."""
    from repro.campaign.workers import SiteOutcome

    ledger = CostLedger()
    ledger.restore_state(payload["ledger"])
    workload = SiteWorkload(
        site=payload["workload"]["site"],
        n_requests=payload["workload"]["n_requests"],
        total_bytes=payload["workload"]["total_bytes"],
    )
    return SiteOutcome(
        site=payload["site"],
        crawler=payload["crawler"],
        seed=payload["seed"],
        n_requests=payload["n_requests"],
        n_targets=payload["n_targets"],
        total_bytes=payload["total_bytes"],
        target_bytes=payload["target_bytes"],
        stopped_early=payload["stopped_early"],
        n_dead_letters=payload["n_dead_letters"],
        trace_digest=payload["trace_digest"],
        ledger=ledger,
        workload=workload,
    )


# -- shard progress (worker side) -----------------------------------------


def shard_progress_payload(shard_id: int, completed: list) -> dict:
    """Completed sites of a shard, in crawl (sorted-site) order.

    ``completed`` is a list of ``(SiteOutcome, MetricsRegistry)`` pairs;
    the per-site registries are stored separately so a resumed worker
    re-merges them in the exact order the uninterrupted run would have
    (float summation order is part of byte-identity).
    """
    return {
        "kind": SHARD_PROGRESS_KIND,
        "shard_id": shard_id,
        "sites": [
            [outcome.site, {
                "outcome": site_outcome_to_payload(outcome),
                "metrics": registry.snapshot_state(),
            }]
            for outcome, registry in completed
        ],
    }


def restore_shard_progress(payload: dict) -> list:
    """``(SiteOutcome, MetricsRegistry)`` pairs from a progress payload."""
    completed = []
    for _site, entry in payload["sites"]:
        registry = MetricsRegistry()
        registry.restore_state(entry["metrics"])
        completed.append((payload_to_site_outcome(entry["outcome"]), registry))
    return completed


# -- shard outcomes (engine side) -----------------------------------------


def shard_outcome_to_payload(outcome) -> dict:
    """A completed ``ShardOutcome`` as a canonical-JSON-safe payload."""
    return {
        "kind": SHARD_OUTCOME_KIND,
        "shard_id": outcome.shard_id,
        "status": outcome.status,
        "sites": [site_outcome_to_payload(s) for s in outcome.sites],
        "metrics": outcome.metrics.snapshot_state(),
    }


def payload_to_shard_outcome(payload: dict):
    """Inverse of :func:`shard_outcome_to_payload`."""
    from repro.campaign.workers import ShardOutcome

    metrics = MetricsRegistry()
    metrics.restore_state(payload["metrics"])
    return ShardOutcome(
        shard_id=payload["shard_id"],
        status=payload["status"],
        sites=[payload_to_site_outcome(p) for p in payload["sites"]],
        metrics=metrics,
    )


def interrupted_marker_payload(shard_id: int) -> dict:
    """Marker the multiprocessing interrupt path writes for a shard it
    terminated before collection — records that the shard's on-disk
    progress is the authoritative resume point."""
    return {"kind": SHARD_INTERRUPTED_KIND, "shard_id": shard_id}
