"""Hashed character n-gram bag-of-words features.

The URL classifier (Sec. 3.3) encodes a URL as a bag of character
2-grams over "usual ASCII characters".  We hash n-grams into a fixed
dimension so the model's weight vector never needs resizing as new
n-grams appear — the standard hashing trick for online learning.
Vectors are sparse: parallel ``indices``/``values`` arrays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

#: Default feature dimension for hashed vectors.
DEFAULT_DIM = 1 << 14


@dataclass(frozen=True)
class HashedVector:
    """Sparse feature vector: sorted unique indices and their counts."""

    indices: np.ndarray  # int64, sorted, unique
    values: np.ndarray   # float64
    dim: int

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def l2_norm(self) -> float:
        return float(np.sqrt(np.dot(self.values, self.values)))

    def scale(self, factor: float) -> "HashedVector":
        return HashedVector(self.indices, self.values * factor, self.dim)


def char_ngrams(text: str, n: int = 2) -> list[str]:
    """Character n-grams of ``text`` (e.g. ``"abc"`` → ``["ab", "bc"]``)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(text) < n:
        return [text] if text else []
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def _hash_token(token: str, seed: int) -> int:
    # crc32 is fast, deterministic across processes, and good enough for
    # feature hashing.
    return zlib.crc32(f"{seed}:{token}".encode("utf-8"))


def hashed_bow(
    text: str, n: int = 2, dim: int = DEFAULT_DIM, seed: int = 0
) -> HashedVector:
    """Hash the character n-grams of ``text`` into a sparse count vector."""
    counts: dict[int, float] = {}
    for token in char_ngrams(text, n):
        index = _hash_token(token, seed) % dim
        counts[index] = counts.get(index, 0.0) + 1.0
    if not counts:
        return HashedVector(np.empty(0, dtype=np.int64), np.empty(0), dim)
    indices = np.fromiter(sorted(counts), dtype=np.int64, count=len(counts))
    values = np.array([counts[i] for i in indices], dtype=np.float64)
    return HashedVector(indices, values, dim)


def merge_vectors(vectors: list[HashedVector]) -> HashedVector:
    """Sum several sparse vectors (all must share the same dimension).

    Used by the URL_CONT feature set, which concatenates (sums, in
    hashed space) URL, anchor-text, DOM-path and surrounding-text bags.
    """
    if not vectors:
        raise ValueError("need at least one vector")
    dim = vectors[0].dim
    counts: dict[int, float] = {}
    for vector in vectors:
        if vector.dim != dim:
            raise ValueError("dimension mismatch")
        for index, value in zip(vector.indices.tolist(), vector.values.tolist()):
            counts[index] = counts.get(index, 0.0) + value
    indices = np.fromiter(sorted(counts), dtype=np.int64, count=len(counts))
    values = np.array([counts[i] for i in indices], dtype=np.float64)
    return HashedVector(indices, values, dim)
