"""Online linear classifiers on sparse hashed features.

All three models share the interface: ``partial_fit(batch, labels)``
for incremental mini-batch training and ``predict(vector)`` → 0/1.
Labels are binary (0 = "HTML", 1 = "Target" for the URL classifier).

* :class:`LogisticRegressionSGD` — the paper's default (Algorithm 2):
  log-loss SGD with a constant learning rate, mini-batch epochs.
* :class:`LinearSVMSGD` — hinge-loss SGD with L2 regularisation.
* :class:`PassiveAggressiveClassifier` — PA-I updates [Shalev-Shwartz
  et al. 2003], the "PA" variant of Table 5.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.ml.features import HashedVector


class _LinearModel:
    """Shared machinery: dense weight vector over the hashed space."""

    def __init__(self, dim: int, seed: int = 0) -> None:
        self.dim = dim
        self.weights = np.zeros(dim, dtype=np.float64)
        self.bias = 0.0
        self.n_updates = 0
        self._rng = random.Random(seed)

    def decision_function(self, x: HashedVector) -> float:
        if x.dim != self.dim:
            raise ValueError(f"feature dim {x.dim} != model dim {self.dim}")
        return float(self.weights[x.indices] @ x.values + self.bias)

    def predict(self, x: HashedVector) -> int:
        return 1 if self.decision_function(x) > 0.0 else 0

    def predict_many(self, xs: list[HashedVector]) -> list[int]:
        return [self.predict(x) for x in xs]

    def _shuffled_epochs(
        self, batch: list[HashedVector], labels: list[int], epochs: int
    ):
        indices = list(range(len(batch)))
        for _ in range(epochs):
            self._rng.shuffle(indices)
            for i in indices:
                yield batch[i], labels[i]

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        from repro.checkpoint.codec import encode_array, encode_rng_state

        return {
            "weights": encode_array(self.weights),
            "bias": self.bias,
            "n_updates": self.n_updates,
            "rng": encode_rng_state(self._rng),
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_array, decode_rng_state

        self.weights = decode_array(state["weights"])
        self.bias = state["bias"]
        self.n_updates = state["n_updates"]
        self._rng.setstate(decode_rng_state(state["rng"]))


class LogisticRegressionSGD(_LinearModel):
    """Binary logistic regression trained by mini-batch SGD (Algorithm 2)."""

    def __init__(
        self,
        dim: int,
        learning_rate: float = 0.1,
        l2: float = 1e-6,
        epochs: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, seed)
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs

    def predict_proba(self, x: HashedVector) -> float:
        z = self.decision_function(x)
        # Clamp to avoid overflow in exp for confident predictions.
        z = max(-30.0, min(30.0, z))
        return 1.0 / (1.0 + math.exp(-z))

    def partial_fit(self, batch: list[HashedVector], labels: list[int]) -> None:
        if len(batch) != len(labels):
            raise ValueError("batch and labels must have the same length")
        lr = self.learning_rate
        for x, y in self._shuffled_epochs(batch, labels, self.epochs):
            if x.nnz == 0:
                continue
            p = self.predict_proba(x)
            gradient = p - y
            self.weights[x.indices] -= lr * (
                gradient * x.values + self.l2 * self.weights[x.indices]
            )
            self.bias -= lr * gradient
            self.n_updates += 1


class LinearSVMSGD(_LinearModel):
    """Linear SVM trained by hinge-loss SGD (Pegasos-style constant rate)."""

    def __init__(
        self,
        dim: int,
        learning_rate: float = 0.1,
        l2: float = 1e-6,
        epochs: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, seed)
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs

    def partial_fit(self, batch: list[HashedVector], labels: list[int]) -> None:
        if len(batch) != len(labels):
            raise ValueError("batch and labels must have the same length")
        lr = self.learning_rate
        for x, y in self._shuffled_epochs(batch, labels, self.epochs):
            if x.nnz == 0:
                continue
            sign = 1.0 if y == 1 else -1.0
            margin = sign * self.decision_function(x)
            self.weights[x.indices] *= 1.0 - lr * self.l2
            if margin < 1.0:
                self.weights[x.indices] += lr * sign * x.values
                self.bias += lr * sign
            self.n_updates += 1


class PassiveAggressiveClassifier(_LinearModel):
    """PA-I classifier: aggressive margin updates bounded by ``C``."""

    def __init__(self, dim: int, C: float = 1.0, epochs: int = 1, seed: int = 0) -> None:
        super().__init__(dim, seed)
        self.C = C
        self.epochs = epochs

    def partial_fit(self, batch: list[HashedVector], labels: list[int]) -> None:
        if len(batch) != len(labels):
            raise ValueError("batch and labels must have the same length")
        for x, y in self._shuffled_epochs(batch, labels, self.epochs):
            if x.nnz == 0:
                continue
            sign = 1.0 if y == 1 else -1.0
            loss = max(0.0, 1.0 - sign * self.decision_function(x))
            # Exact zero is intended: hinge loss is literally max(0.0, ...).
            if loss == 0.0:  # repro: noqa[COR002]
                continue
            norm_sq = float(np.dot(x.values, x.values)) + 1.0  # +1 for bias
            tau = min(self.C, loss / norm_sq)
            self.weights[x.indices] += tau * sign * x.values
            self.bias += tau * sign
            self.n_updates += 1
