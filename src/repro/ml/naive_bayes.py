"""Incremental multinomial Naive Bayes over hashed count features.

The "NB" variant of the paper's Table 5 classifier study.  Class-
conditional token counts accumulate across ``partial_fit`` calls, so the
model is naturally online; Laplace smoothing keeps unseen features from
zeroing out the likelihood.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.features import HashedVector


class MultinomialNaiveBayes:
    """Binary multinomial NB with Laplace smoothing."""

    def __init__(self, dim: int, alpha: float = 1.0) -> None:
        self.dim = dim
        self.alpha = alpha
        self.feature_counts = np.zeros((2, dim), dtype=np.float64)
        self.class_counts = np.zeros(2, dtype=np.float64)
        self.total_counts = np.zeros(2, dtype=np.float64)
        self.n_updates = 0

    def partial_fit(self, batch: list[HashedVector], labels: list[int]) -> None:
        if len(batch) != len(labels):
            raise ValueError("batch and labels must have the same length")
        for x, y in zip(batch, labels):
            if y not in (0, 1):
                raise ValueError("labels must be 0 or 1")
            self.feature_counts[y, x.indices] += x.values
            self.total_counts[y] += float(x.values.sum())
            self.class_counts[y] += 1.0
            self.n_updates += 1

    def _log_likelihood(self, x: HashedVector, y: int) -> float:
        if self.class_counts.sum() == 0:
            return 0.0
        prior = (self.class_counts[y] + 1.0) / (self.class_counts.sum() + 2.0)
        denom = self.total_counts[y] + self.alpha * self.dim
        token_probs = (self.feature_counts[y, x.indices] + self.alpha) / denom
        return math.log(prior) + float(np.dot(x.values, np.log(token_probs)))

    def decision_function(self, x: HashedVector) -> float:
        return self._log_likelihood(x, 1) - self._log_likelihood(x, 0)

    def predict(self, x: HashedVector) -> int:
        return 1 if self.decision_function(x) > 0.0 else 0

    def predict_many(self, xs: list[HashedVector]) -> list[int]:
        return [self.predict(x) for x in xs]

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        from repro.checkpoint.codec import encode_array

        return {
            "feature_counts": encode_array(self.feature_counts),
            "class_counts": encode_array(self.class_counts),
            "total_counts": encode_array(self.total_counts),
            "n_updates": self.n_updates,
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_array

        self.feature_counts = decode_array(state["feature_counts"])
        self.class_counts = decode_array(state["class_counts"])
        self.total_counts = decode_array(state["total_counts"])
        self.n_updates = state["n_updates"]
