"""Online machine-learning substrate (no external ML dependencies).

Implements exactly the model family the paper evaluates for the URL
classifier (Sec. 4.6): logistic regression trained by SGD (the default),
a linear SVM (hinge loss), a multinomial Naive Bayes and a
passive-aggressive classifier — all operating on hashed character
n-gram bag-of-words features and supporting incremental ``partial_fit``.
"""

from repro.ml.features import HashedVector, char_ngrams, hashed_bow, merge_vectors
from repro.ml.linear import (
    LogisticRegressionSGD,
    LinearSVMSGD,
    PassiveAggressiveClassifier,
)
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.metrics import ConfusionMatrix

__all__ = [
    "HashedVector",
    "char_ngrams",
    "hashed_bow",
    "merge_vectors",
    "LogisticRegressionSGD",
    "LinearSVMSGD",
    "PassiveAggressiveClassifier",
    "MultinomialNaiveBayes",
    "ConfusionMatrix",
]
