"""Classification metrics: confusion matrices and misclassification rate.

Reproduces the evaluation machinery behind the paper's Tables 8–16
(per-variant confusion matrices, normalised to percentages over all
classified URLs) and the "MR" column of Table 5 (misclassification rate
on true-HTML and true-Target URLs — errors on "Neither" URLs are
excluded because the classifier never predicts that class).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ConfusionMatrix:
    """Counts of (true class, predicted class) pairs."""

    labels: tuple[str, ...] = ("HTML", "Target", "Neither")
    counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def update(self, true_label: str, predicted_label: str) -> None:
        if true_label not in self.labels or predicted_label not in self.labels:
            raise ValueError(f"unknown label: {true_label!r}/{predicted_label!r}")
        key = (true_label, predicted_label)
        self.counts[key] = self.counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, true_label: str, predicted_label: str) -> int:
        return self.counts.get((true_label, predicted_label), 0)

    def percentage(self, true_label: str, predicted_label: str) -> float:
        """Cell as a percentage of all classified URLs (Tables 8–16 style)."""
        total = self.total
        if total == 0:
            return 0.0
        return 100.0 * self.count(true_label, predicted_label) / total

    def misclassification_rate(self) -> float:
        """The paper's "MR": % of true-HTML/Target URLs predicted wrongly.

        "Neither" rows are excluded: the classifier by design never
        predicts "Neither" (Sec. 3.3), so those URLs are always "wrong".
        """
        relevant = 0
        wrong = 0
        for (true_label, predicted_label), count in self.counts.items():
            if true_label == "Neither":
                continue
            relevant += count
            if predicted_label != true_label:
                wrong += count
        if relevant == 0:
            return 0.0
        return 100.0 * wrong / relevant

    def merged(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        if self.labels != other.labels:
            raise ValueError("label sets differ")
        merged = ConfusionMatrix(labels=self.labels)
        for key, count in self.counts.items():
            merged.counts[key] = merged.counts.get(key, 0) + count
        for key, count in other.counts.items():
            merged.counts[key] = merged.counts.get(key, 0) + count
        return merged

    def as_rows(self) -> list[list[float]]:
        """Matrix of percentages in label order (row = true class)."""
        return [
            [self.percentage(t, p) for p in self.labels] for t in self.labels
        ]

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """Cells as (true, predicted, count) triples in first-observation
        order, so iteration-order-sensitive folds survive restore."""
        return {
            "counts": [
                [true_label, predicted_label, count]
                for (true_label, predicted_label), count in self.counts.items()
            ],
        }

    def restore_state(self, state: dict) -> None:
        self.counts = {
            (true_label, predicted_label): count
            for true_label, predicted_label, count in state["counts"]
        }
