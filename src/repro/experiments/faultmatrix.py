"""Fault matrix: recall and cost versus injected fault rate.

Runs one crawler over the same site profile at increasing fault-
injection rates (``repro.http.faults``) with the retry policy enabled,
and tabulates how recall degrades and how much extra cost (requests,
retries, abandoned URLs) the fault/recovery stack introduces.  The
rate-0 column is the control: the identical stack with the injector
disarmed.

Unlike the paper tables this is a robustness artefact, not a paper
reproduction — it validates the fault-model contract of
docs/architecture.md: graceful degradation (recall falls smoothly, the
crawl never crashes) and bounded cost (retries are budgeted, abandoned
URLs are dead-lettered, not retried forever).

Every run is deterministic: the fault schedule derives from
``derive_seed(seed, "fault-matrix", site, rate)`` and retry jitter from
the policy seed, so the whole table is reproducible byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import ResultCache, crawler_factory
from repro.http.client import RetryPolicy
from repro.http.environment import CrawlEnvironment
from repro.http.faults import FaultPlan, FaultSpec
from repro.obs.metrics import MetricsObserver
from repro.utils.rng import derive_seed
from repro.webgraph.sites import load_paper_site

#: Default injected fault rates (fraction of requests tampered with).
DEFAULT_FAULT_RATES: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)


@dataclass
class FaultMatrixResult:
    """Per-rate robustness numbers for one (crawler, site) pair."""

    crawler: str
    site: str
    rates: list[float]
    recall_pct: list[float]
    requests: list[float]
    retries: list[float]
    abandoned: list[float]
    dead_letters: list[float]
    faults_injected: list[float]

    def render(self) -> str:
        columns = [f"rate={rate:g}" for rate in self.rates]
        return render_table(
            f"Fault matrix: {self.crawler} on '{self.site}'",
            columns,
            [
                ("Recall (% targets)", list(self.recall_pct)),
                ("Requests", list(self.requests)),
                ("Retries", list(self.retries)),
                ("Abandoned", list(self.abandoned)),
                ("Dead letters", list(self.dead_letters)),
                ("Faults injected", list(self.faults_injected)),
            ],
        )


def _metric(observer: MetricsObserver, name: str) -> float:
    instrument = observer.registry.get(name)
    return float(instrument.value) if instrument is not None else 0.0


def compute_fault_matrix(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    *,
    site: str = "cl",
    crawler: str = "BFS",
    rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    seed: int = 1,
) -> FaultMatrixResult:
    """Crawl ``site`` once per fault rate and tabulate recall vs cost.

    ``cache`` is accepted for driver uniformity but unused: fault
    injection changes server behaviour, so every cell needs a fresh
    environment rather than a memoised clean run.
    """
    config = config or ExperimentConfig()
    del cache  # each rate mutates server behaviour; nothing is reusable
    recall_pct: list[float] = []
    requests: list[float] = []
    retries: list[float] = []
    abandoned: list[float] = []
    dead_letters: list[float] = []
    faults_injected: list[float] = []

    for rate in rates:
        graph = load_paper_site(site, scale=config.scale)
        observer = MetricsObserver()
        fault_plan = None
        if rate > 0:
            fault_plan = FaultPlan(
                FaultSpec(rate=rate),
                seed=derive_seed(seed, "fault-matrix", site, f"{rate:g}"),
            )
        env = CrawlEnvironment(
            graph,
            observer=observer,
            fault_plan=fault_plan,
            retry_policy=RetryPolicy(seed=seed),
        )
        result = crawler_factory(crawler, seed=seed).crawl(env)
        total = env.total_targets() or 1
        recall_pct.append(100.0 * result.n_targets / total)
        requests.append(float(result.n_requests))
        retries.append(_metric(observer, "retries_total"))
        abandoned.append(_metric(observer, "requests_abandoned"))
        dead_letters.append(float(result.n_dead_letters))
        faults_injected.append(_metric(observer, "faults_injected"))

    return FaultMatrixResult(
        crawler=crawler,
        site=site,
        rates=list(rates),
        recall_pct=recall_pct,
        requests=requests,
        retries=retries,
        abandoned=abandoned,
        dead_letters=dead_letters,
        faults_injected=faults_injected,
    )
