"""Table 3: fraction of non-target volume retrieved before reaching 90 %
of total target volume, per crawler/site."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import non_target_volume_fraction, site_non_target_bytes
import repro.experiments.paperdata as paperdata
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import (
    CRAWLER_ORDER,
    ResultCache,
    average_metric,
    default_cache,
)


@dataclass
class Table3Result:
    sites: list[str]
    measured: dict[str, list[float]]

    def render(self) -> str:
        rows: list[tuple[str, list[float | None]]] = []
        for crawler in CRAWLER_ORDER:
            rows.append((crawler, list(self.measured[crawler])))
            paper = paperdata.TABLE3_VOLUME.get(crawler)
            if paper is not None:
                paper_row = [
                    paper[paperdata.SITE_ORDER.index(site)] for site in self.sites
                ]
                rows.append((f"  (paper {crawler})", paper_row))
        return render_table(
            "Table 3: % of non-target volume before 90% of target volume",
            self.sites,
            rows,
        )


def compute_table3(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
) -> Table3Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    sites = list(config.sites or cache.sites())
    measured: dict[str, list[float]] = {name: [] for name in CRAWLER_ORDER}

    for site in sites:
        env = cache.env(site)
        total_target_bytes = env.total_target_bytes()
        total_non_target = site_non_target_bytes(env.graph)
        for crawler in CRAWLER_ORDER:
            results = cache.run_seeds(site, crawler, config.run_seeds())
            value = average_metric(
                results,
                lambda r: non_target_volume_fraction(
                    r.trace, total_target_bytes, total_non_target
                ),
            )
            measured[crawler].append(value)

    return Table3Result(sites=sites, measured=measured)
