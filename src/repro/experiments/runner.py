"""Crawl-run orchestration with caching.

Building a site environment and running a crawler on it are both
deterministic given (site, scale, crawler-key, seed), so the runner
memoises them: Table 2, Table 3, Table 6 and the figures all reuse the
same default-configuration runs, like the paper's local-replication
methodology reuses one stored crawl database across analyses.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable

from repro.baselines import (
    BFSCrawler,
    DFSCrawler,
    FocusedCrawler,
    OmniscientCrawler,
    RandomCrawler,
    TPOffCrawler,
    TresCrawler,
)
from repro.core.base import Crawler, CrawlResult
from repro.core.crawler import SBConfig, SBCrawler
from repro.http.environment import CrawlEnvironment
from repro.obs.sinks import JsonlSink
from repro.webgraph.sites import PAPER_SITES, load_paper_site

#: Row order of the comparison tables (paper's Tables 2–3).
CRAWLER_ORDER: tuple[str, ...] = (
    "SB-ORACLE",
    "SB-CLASSIFIER",
    "FOCUSED",
    "TP-OFF",
    "BFS",
    "DFS",
    "RANDOM",
)


def crawler_factory(name: str, seed: int = 1,
                    sb_config: SBConfig | None = None) -> Crawler:
    """Instantiate a crawler by its table name."""
    base = sb_config or SBConfig()
    if name == "SB-ORACLE":
        return SBCrawler(replace(base, use_oracle=True, seed=seed))
    if name == "SB-CLASSIFIER":
        return SBCrawler(replace(base, use_oracle=False, seed=seed))
    if name == "FOCUSED":
        return FocusedCrawler(seed=seed)
    if name == "TP-OFF":
        return TPOffCrawler(bootstrap_pages=300, seed=seed)
    if name == "BFS":
        return BFSCrawler()
    if name == "DFS":
        return DFSCrawler()
    if name == "RANDOM":
        return RandomCrawler(seed=seed)
    if name == "OMNISCIENT":
        return OmniscientCrawler()
    if name == "TRES":
        return TresCrawler(seed=seed)
    raise ValueError(f"unknown crawler: {name!r}")


class ResultCache:
    """Memoises environments and crawl results for one process.

    With ``trace_dir`` set, every *fresh* crawl (cache hits are replays,
    not runs) records its full event stream to
    ``<trace_dir>/<site>-<crawler>-s<seed>.jsonl`` — the file
    ``python -m repro.obs report`` consumes (docs/observability.md).
    """

    def __init__(
        self, scale: float = 1.0, trace_dir: str | Path | None = None
    ) -> None:
        self.scale = scale
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._envs: dict[str, CrawlEnvironment] = {}
        self._results: dict[tuple, CrawlResult] = {}

    # -- environments ------------------------------------------------------

    def env(self, site: str) -> CrawlEnvironment:
        cached = self._envs.get(site)
        if cached is None:
            cached = CrawlEnvironment(load_paper_site(site, scale=self.scale))
            self._envs[site] = cached
        return cached

    def sites(self) -> list[str]:
        return sorted(PAPER_SITES)

    # -- runs ------------------------------------------------------------

    def run(
        self,
        site: str,
        crawler_name: str,
        seed: int = 1,
        sb_config: SBConfig | None = None,
        budget: float | None = None,
        config_key: str = "default",
    ) -> CrawlResult:
        key = (site, crawler_name, seed, config_key, budget)
        cached = self._results.get(key)
        if cached is None:
            crawler = crawler_factory(crawler_name, seed=seed, sb_config=sb_config)
            env = self.env(site)
            if self.trace_dir is None:
                cached = crawler.crawl(env, budget=budget)
            else:
                cached = self._run_traced(
                    env, crawler, site, crawler_name, seed, budget
                )
            self._results[key] = cached
        return cached

    def _run_traced(
        self,
        env: CrawlEnvironment,
        crawler: Crawler,
        site: str,
        crawler_name: str,
        seed: int,
        budget: float | None,
    ) -> CrawlResult:
        """One crawl with a JSONL event sink as the environment observer
        (instruments every crawler's fetch stream, baselines included)."""
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        path = self.trace_dir / f"{site}-{crawler_name}-s{seed}.jsonl"
        meta = {"crawler": crawler_name, "site": site, "seed": seed,
                "scale": self.scale}
        previous = env.observer
        with JsonlSink(path, meta=meta) as sink:
            env.observer = sink
            try:
                return crawler.crawl(env, budget=budget)
            finally:
                env.observer = previous

    def run_seeds(
        self,
        site: str,
        crawler_name: str,
        seeds: tuple[int, ...],
        sb_config: SBConfig | None = None,
        config_key: str = "default",
    ) -> list[CrawlResult]:
        """One run per seed for stochastic crawlers, one total otherwise."""
        if crawler_name in ("BFS", "DFS", "TP-OFF", "OMNISCIENT", "FOCUSED"):
            seeds = seeds[:1]  # deterministic crawlers: one run suffices
        return [
            self.run(site, crawler_name, seed=s, sb_config=sb_config,
                     config_key=config_key)
            for s in seeds
        ]


_DEFAULT_CACHES: dict[float, ResultCache] = {}


def default_cache(scale: float = 1.0) -> ResultCache:
    """Process-wide cache shared by tables/figures at the same scale."""
    cache = _DEFAULT_CACHES.get(scale)
    if cache is None:
        cache = ResultCache(scale=scale)
        _DEFAULT_CACHES[scale] = cache
    return cache


def average_metric(
    results: list[CrawlResult],
    metric: Callable[[CrawlResult], float],
) -> float:
    """Mean of a metric over runs; ∞ if any run never reaches it (the
    paper reports +∞ in that case)."""
    values = [metric(r) for r in results]
    if any(v == float("inf") for v in values):
        return float("inf")
    return sum(values) / len(values)
