"""Table 7: SD retrieval precision across sampled targets.

The paper manually inspected 40 random targets on each of 7 sites.  We
sample the same number of retrieved targets from an SB-CLASSIFIER crawl,
generate their file contents (:mod:`repro.sd.content`) and run the table
detector (:mod:`repro.sd.detector`) — measuring "SD yield" (% of targets
with ≥ 1 statistics table) and the mean number of SDs per SD-bearing
target, next to the paper's values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import repro.experiments.paperdata as paperdata
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import ResultCache, default_cache
from repro.sd.content import TargetContentGenerator
from repro.sd.detector import count_statistic_tables

#: The 7 sites the paper sampled, 40 targets each.
TABLE7_SITES: tuple[str, ...] = ("be", "ed", "is", "in", "nc", "oe", "wh")
SAMPLE_SIZE = 40


@dataclass
class Table7Result:
    sites: list[str]
    yields_pct: list[float]
    mean_sds: list[float]

    def render(self) -> str:
        paper_yield = [paperdata.TABLE7[s][0] for s in self.sites]
        paper_mean = [paperdata.TABLE7[s][1] for s in self.sites]
        return render_table(
            "Table 7: SD retrieval across sampled targets",
            self.sites,
            [
                ("SD Yield (%)", list(self.yields_pct)),
                ("  (paper)", paper_yield),
                ("Mean #SDs/Target", list(self.mean_sds)),
                ("  (paper)", paper_mean),
            ],
        )


def compute_table7(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    sites: tuple[str, ...] = TABLE7_SITES,
    sample_size: int = SAMPLE_SIZE,
) -> Table7Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    yields_pct: list[float] = []
    mean_sds: list[float] = []
    for site in sites:
        env = cache.env(site)
        result = cache.run(site, "SB-CLASSIFIER", seed=config.run_seeds()[0])
        retrieved = sorted(result.targets)
        rng = random.Random(42)
        sample = (
            # The paper's Table 7 audits a *fixed* 50-URL sample per
            # site; the stream is pinned by protocol, not by accident.
            rng.sample(retrieved, sample_size)  # repro: noqa[DF001] fixed audit-sample stream mirrors the paper's protocol
            if len(retrieved) > sample_size
            else retrieved
        )
        generator = TargetContentGenerator(site, seed=0)
        counts: list[int] = []
        for url in sample:
            page = env.graph.get(url)
            mime = page.mime_type if page is not None else "application/pdf"
            generated = generator.generate(url, mime or "application/pdf")
            counts.append(count_statistic_tables(generated.body, generated.mime_type))
        with_tables = [c for c in counts if c > 0]
        yields_pct.append(100.0 * len(with_tables) / len(counts) if counts else 0.0)
        mean_sds.append(
            sum(with_tables) / len(with_tables) if with_tables else 0.0
        )
    return Table7Result(sites=list(sites), yields_pct=yields_pct, mean_sds=mean_sds)
