"""Figures 4/7, 5 and 15: curve data and text rendering.

* Figure 4/7: per crawler and site, the targets-vs-requests curve and
  the target-volume-vs-non-target-volume curve (both panels).
* Figure 5: mean rewards of the top-10 tag-path groups per site.
* Figure 15: target-discovery curve with the early-stopping cut line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import targets_vs_requests_curve, volume_curve
from repro.core.crawler import SBConfig
from repro.experiments.config import ExperimentConfig, scaled_early_stopping
from repro.experiments.report import ascii_curve
from repro.experiments.runner import CRAWLER_ORDER, ResultCache, default_cache
from repro.webgraph.sites import FIGURE4_SITES


def _downsample(xs: np.ndarray, ys: np.ndarray, n_points: int = 120
                ) -> tuple[list[float], list[float]]:
    if len(xs) <= n_points:
        return xs.tolist(), ys.tolist()
    idx = np.linspace(0, len(xs) - 1, n_points).astype(int)
    return xs[idx].tolist(), ys[idx].tolist()


@dataclass
class CrawlerCurves:
    crawler: str
    requests: list[float]
    targets: list[float]
    non_target_bytes: list[float]
    target_bytes: list[float]


@dataclass
class Figure4Site:
    site: str
    curves: list[CrawlerCurves] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"Figure 4 — site {self.site}"]
        for curve in self.curves:
            final_targets = curve.targets[-1] if curve.targets else 0
            lines.append(
                ascii_curve(
                    curve.requests,
                    curve.targets,
                    title=f"[{curve.crawler}] targets vs requests "
                          f"(final {final_targets:.0f})",
                    height=8,
                )
            )
        return "\n".join(lines)

    def to_svg(self) -> tuple[str, str]:
        """Both Figure 4 panels as SVG text (left: targets vs requests,
        right: target volume vs non-target volume)."""
        from repro.analysis.svg import LineChart

        left = LineChart(
            title=f"{self.site}: crawled targets vs requests",
            x_label="requests (GET+HEAD)",
            y_label="targets retrieved",
        )
        right = LineChart(
            title=f"{self.site}: target vs non-target volume",
            x_label="non-target volume (bytes)",
            y_label="target volume (bytes)",
        )
        for curve in self.curves:
            left.add_series(curve.crawler, curve.requests, curve.targets)
            right.add_series(
                curve.crawler, curve.non_target_bytes, curve.target_bytes
            )
        return left.to_svg(), right.to_svg()


@dataclass
class Figure4Result:
    sites: list[Figure4Site]

    def render(self) -> str:
        return "\n\n".join(site.render() for site in self.sites)

    def final_targets(self, site: str, crawler: str) -> float:
        for entry in self.sites:
            if entry.site == site:
                for curve in entry.curves:
                    if curve.crawler == crawler:
                        return curve.targets[-1] if curve.targets else 0.0
        raise KeyError((site, crawler))


def compute_figure4(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    sites: tuple[str, ...] = FIGURE4_SITES,
    crawlers: tuple[str, ...] = CRAWLER_ORDER,
) -> Figure4Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    out: list[Figure4Site] = []
    for site in sites:
        entry = Figure4Site(site=site)
        for crawler in crawlers:
            result = cache.run(site, crawler, seed=config.run_seeds()[0])
            requests, targets = targets_vs_requests_curve(result.trace)
            non_target, target = volume_curve(result.trace)
            req_x, tgt_y = _downsample(requests, targets)
            ntv_x, tv_y = _downsample(non_target, target)
            entry.curves.append(
                CrawlerCurves(
                    crawler=crawler,
                    requests=req_x,
                    targets=tgt_y,
                    non_target_bytes=ntv_x,
                    target_bytes=tv_y,
                )
            )
        out.append(entry)
    return Figure4Result(sites=out)


@dataclass
class Figure5Result:
    sites: list[str]
    #: per site, the top-10 mean rewards (descending)
    top_rewards: dict[str, list[float]]

    def render(self) -> str:
        lines = ["Figure 5: mean rewards of the top-10 tag-path groups"]
        for site in self.sites:
            values = " ".join(f"{v:8.2f}" for v in self.top_rewards[site])
            lines.append(f"  {site:3}: {values}")
        best = [self.top_rewards[s][0] for s in self.sites if self.top_rewards[s]]
        if best:
            lines.append(
                f"  cross-site best-group average: {sum(best) / len(best):.1f} "
                f"(paper: 258 on its million-page sites)"
            )
        return "\n".join(lines)

    def to_svg(self) -> str:
        """Figure 5 as a log-scale SVG: one line of top-10 rewards per site."""
        from repro.analysis.svg import LineChart

        chart = LineChart(
            title="Mean rewards of the top-10 tag-path groups",
            x_label="group rank",
            y_label="mean reward (log)",
            log_y=True,
        )
        ranks = list(range(1, 11))
        for site in self.sites:
            rewards = [max(r, 1e-3) for r in self.top_rewards[site][:10]]
            chart.add_series(site, ranks[: len(rewards)], rewards)
        return chart.to_svg()


def compute_figure5(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    sites: tuple[str, ...] = FIGURE4_SITES,
) -> Figure5Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    top: dict[str, list[float]] = {}
    for site in sites:
        result = cache.run(site, "SB-CLASSIFIER", seed=config.run_seeds()[0])
        top[site] = list(result.info["top10_rewards"])
    return Figure5Result(sites=list(sites), top_rewards=top)


@dataclass
class Figure15Result:
    site: str
    requests: list[float]
    targets: list[float]
    stop_at: int | None

    def render(self) -> str:
        title = f"Figure 15 — early stopping on {self.site}"
        plot = ascii_curve(self.requests, self.targets, title=title)
        stop = (
            f"stop fired at request {self.stop_at}"
            if self.stop_at is not None
            else "stop never fired"
        )
        return plot + "\n" + stop

    def to_svg(self) -> str:
        from repro.analysis.svg import LineChart

        chart = LineChart(
            title=f"Early stopping on {self.site}",
            x_label="requests",
            y_label="targets retrieved",
            marker_x=float(self.stop_at) if self.stop_at is not None else None,
        )
        chart.add_series("targets", self.requests, self.targets)
        return chart.to_svg()


def compute_figure15(
    site: str = "in",
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
) -> Figure15Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    env = cache.env(site)
    es_config = SBConfig(
        seed=config.run_seeds()[0],
        early_stopping=True,
        **scaled_early_stopping(env.n_available()),
    )
    result = cache.run(
        site, "SB-CLASSIFIER", seed=es_config.seed,
        sb_config=es_config, config_key="early-stopping",
    )
    requests, targets = targets_vs_requests_curve(result.trace)
    req_x, tgt_y = _downsample(requests, targets)
    return Figure15Result(
        site=site,
        requests=req_x,
        targets=tgt_y,
        stop_at=result.trace.stopped_early_at,
    )
