"""The paper's published numbers, for paper-vs-measured reporting.

Values transcribed from the paper (EDBT 2026, extended version).  Cells
the source renders illegibly are ``None``; ``INF`` encodes the paper's
"+∞" (the crawler never reached the 90 % threshold).  Site order
everywhere: ab as be ce cl cn ed il in is jp ju nc oe ok qa wh wo.
"""

from __future__ import annotations

import math

INF = math.inf

SITE_ORDER: tuple[str, ...] = (
    "ab", "as", "be", "ce", "cl", "cn", "ed", "il", "in",
    "is", "jp", "ju", "nc", "oe", "ok", "qa", "wh", "wo",
)

#: Table 2 (top): % of requests to retrieve 90 % of targets.
TABLE2_REQUESTS: dict[str, tuple[float | None, ...]] = {
    "SB-ORACLE": (None, None, 72.6, None, 70.7, 70.3, 48.0, None, 12.8,
                  73.8, None, 34.1, 50.8, 55.8, 13.8, 47.3, None, None),
    "SB-CLASSIFIER": (31.2, 35.1, 75.7, 23.3, 74.4, 70.9, 51.5, 14.2, 11.9,
                      70.0, 37.7, 33.0, 51.0, 50.2, 15.5, 57.7, 19.7, 18.6),
    "FOCUSED": (68.2, INF, 87.8, 36.0, 88.9, 82.7, 86.7, INF, 62.8,
                86.9, 42.0, 91.1, 92.8, 84.9, 51.8, 71.0, INF, INF),
    "TP-OFF": (96.4, 50.3, 86.2, 34.7, 81.8, 88.2, 95.6, INF, 99.7,
               88.0, INF, 74.4, 93.0, 88.7, 76.2, 88.6, INF, INF),
    "BFS": (97.4, 90.8, 89.1, 73.5, 87.5, 80.0, 94.6, 33.2, 99.3,
            92.7, 45.2, 80.8, 81.8, 96.5, 66.8, 70.6, 79.0, 92.0),
    "DFS": (83.7, INF, 85.2, 74.9, 70.6, 84.6, 90.5, INF, 99.7,
            87.7, 45.6, 80.2, 93.7, 88.7, 80.5, 74.4, INF, INF),
    "RANDOM": (INF, 98.2, 92.4, 44.5, 89.2, 85.1, 95.0, INF, 99.0,
               92.7, INF, 83.2, 87.9, 96.8, 85.0, 77.8, 71.0, INF),
}

#: Table 2 (bottom): early stopping — saved requests % / lost targets %.
TABLE2_SAVED_REQUESTS: tuple[float, ...] = (
    34.4, 0.0, 0.0, 0.0, 0.0, 0.0, 27.4, 0.0, 82.6,
    2.2, 39.0, 18.8, 20.4, 0.0, 73.1, 0.0, 0.0, 0.0,
)
TABLE2_LOST_TARGETS: tuple[float, ...] = (
    13.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.0, 0.0,
    0.0, 2.5, 0.4, 0.1, 0.0, 2.0, 0.0, 0.0, 0.0,
)

#: Table 3: % of non-target volume before 90 % of target volume.
TABLE3_VOLUME: dict[str, tuple[float | None, ...]] = {
    "SB-ORACLE": (None, None, 24.2, None, None, 24.6, None, None, 12.5,
                  None, None, 22.9, 29.5, 48.0, 33.2, 30.2, None, None),
    "SB-CLASSIFIER": (20.4, 21.4, 29.5, 29.1, None, 29.0, None, None, 23.6,
                      None, 18.6, 23.1, 34.5, 49.5, 34.9, 33.2, None, None),
    "FOCUSED": (INF, INF, 85.2, 97.0, 76.3, 74.7, 86.4, INF, 67.3,
                73.8, None, 72.2, 84.9, 72.7, 49.8, 80.3, INF, INF),
    "TP-OFF": (INF, INF, 92.3, 64.4, 65.0, 94.7, 92.9, INF, 98.8,
               89.7, None, 72.3, 89.2, 89.0, 73.6, 46.9, INF, INF),
    "BFS": (81.8, 75.7, 66.5, 98.5, 80.8, 50.4, 93.2, 3.6, 99.0,
            93.8, None, None, 84.5, 97.5, 63.3, 87.3, 91.5, 98.3),
    "DFS": (98.6, INF, 64.2, 97.0, 45.0, 82.4, 90.8, INF, 98.1,
            85.0, None, None, 96.1, 90.5, 97.0, 75.0, INF, INF),
    "RANDOM": (71.6, INF, 83.4, INF, 89.3, 82.7, 92.9, INF, 95.8,
               98.3, None, None, 88.2, 98.1, 86.6, 77.8, INF, INF),
}

#: The 11 fully-crawled sites of Tables 4–5.
FULLY_CRAWLED_ORDER: tuple[str, ...] = (
    "be", "cl", "cn", "ed", "in", "is", "ju", "nc", "oe", "ok", "qa",
)

#: Table 4: hyper-parameter study (requests % | volume %) with SB-ORACLE.
TABLE4: dict[str, dict[str, tuple[tuple[float | None, float | None], ...]]] = {
    "alpha": {
        "0.1": ((86.3, 26.2), (75.9, 42.3), (74.3, 35.5), (53.7, 54.1),
                (9.8, 10.2), (77.1, 66.2), (37.1, 35.0), (51.6, 26.2),
                (55.6, 34.4), (14.3, 33.2), (67.7, 32.1)),
        "2sqrt2": ((84.7, 24.2), (76.4, 56.3), (71.8, 24.6), (53.0, 49.2),
                   (11.1, 11.0), (74.2, 58.9), (35.0, 22.9), (51.4, 29.5),
                   (59.2, 48.0), (10.3, 19.0), (68.9, 33.9)),
        "30": ((83.8, 36.7), (79.6, 58.9), (75.3, 32.4), (66.2, 41.5),
               (11.6, 11.8), (80.9, 66.4), (43.3, 28.8), (67.3, 29.5),
               (68.8, 72.9), (36.7, 71.3), (71.8, 30.4)),
    },
    "n": {
        "1": ((84.5, 27.1), (77.2, 48.5), (78.6, 56.3), (57.3, 55.1),
              (9.9, 10.7), (78.2, 69.6), (35.7, 17.6), (54.8, 33.5),
              (52.6, 28.1), (13.6, 27.2), (68.9, 34.7)),
        "2": ((84.7, 24.2), (76.4, 56.3), (71.8, 24.6), (53.0, 49.2),
              (11.1, 11.0), (74.2, 58.9), (35.0, 22.9), (51.4, 29.5),
              (59.2, 48.0), (10.3, 19.0), (68.3, 33.9)),
        "3": ((84.1, 32.8), (78.2, 51.2), (71.3, 25.7), (57.0, 53.1),
              (10.7, 10.5), (71.3, 49.2), (37.0, 26.9), (51.2, 27.0),
              (79.6, 79.0), (6.0, 8.8), (70.0, 34.9)),
    },
    "theta": {
        "0.55": ((81.2, 42.0), (76.8, 50.5), (76.6, 41.9), (56.5, 53.1),
                 (8.2, 9.4), (78.7, 65.5), (80.6, 65.4), (56.1, 35.5),
                 (52.4, 30.9), (12.5, 25.7), (67.8, 26.0)),
        "0.75": ((84.7, 24.2), (76.4, 56.3), (71.8, 24.6), (53.0, 49.2),
                 (11.1, 11.0), (74.2, 58.9), (35.0, 22.9), (51.4, 29.5),
                 (59.2, 48.0), (10.3, 18.7), (68.9, 33.9)),
        "0.95": ((82.4, 47.7), (84.3, 72.1), (73.1, 44.7), (None, None),
                 (9.8, 11.0), (71.0, 54.9), (73.3, 66.5), (57.3, 33.2),
                 (90.2, 87.2), (12.4, 19.0), (68.3, 25.9)),
    },
}

#: Table 5: URL-classifier variants (requests-% per fully-crawled site + MR).
TABLE5: dict[str, tuple[tuple[float, ...], float]] = {
    "URL_ONLY-LR": ((82.1, 75.1, 71.3, 53.2, 11.7, 76.1, 36.5, 52.6, 60.7,
                     15.9, 62.3), 2.62),
    "URL_ONLY-SVM": ((82.7, 75.7, 71.8, 63.6, 11.3, 76.0, 37.4, 52.2, 63.5,
                      16.7, 61.5), 2.99),
    "URL_ONLY-NB": ((82.9, 75.2, 72.1, 53.7, 11.4, 76.3, 35.8, 52.7, 59.7,
                     18.0, 63.1), 2.92),
    "URL_ONLY-PA": ((82.3, 74.4, 71.7, 53.3, 11.1, 75.8, 36.7, 51.6, 60.5,
                     15.9, 60.9), 2.56),
    "URL_CONT-LR": ((82.2, 74.4, 71.9, 54.3, 11.3, 76.4, 37.8, 52.9, 64.7,
                     16.8, 60.0), 5.93),
    "URL_CONT-SVM": ((82.6, 75.0, 71.8, 52.8, 11.6, 76.4, 38.8, 53.1, 61.1,
                      18.7, 60.1), 6.36),
    "URL_CONT-NB": ((84.1, 74.7, 71.9, 53.6, 11.4, 75.7, 35.5, 52.3, 59.9,
                     19.1, 60.4), 7.15),
    "URL_CONT-PA": ((82.5, 75.1, 71.9, 53.6, 11.6, 76.2, 38.4, 52.1, 62.6,
                     16.1, 60.6), 4.12),
}

#: Table 6: mean / STD of non-zero mean rewards per site.
TABLE6_MEAN: tuple[float, ...] = (
    1.7, 1.5, 4.5, 30.2, 12.4, 4.2, 2.5, 3.1, 1.6,
    3.5, 3.5, 5.4, 2.0, 2.5, 5.5, 15.4, 3.0, 2.1,
)
TABLE6_STD: tuple[float, ...] = (
    16.8, 5.35, 20.9, 290.3, 2.8, 8.9, 7.1, 53.9, 4.2,
    11.1, 17.4, 10.5, 8.7, 9.3, 13.9, 18.8, 22.0, 43.5,
)

#: Table 7: SD yield % and mean #SDs per target, for 7 sampled sites.
TABLE7: dict[str, tuple[float, float]] = {
    "be": (82.0, 9.1),
    "ed": (35.0, 2.8),
    "is": (93.0, 2.9),
    "in": (40.0, 2.1),
    "nc": (83.0, 2.1),
    "oe": (60.0, 4.9),
    "wh": (40.0, 1.4),
}

#: Table 16: confusion matrix of the URL classifier (row-major %, classes
#: HTML / Target / Neither), averaged over the 11 fully-crawled sites.
TABLE16_CONFUSION: tuple[tuple[float, float, float], ...] = (
    (58.04, 1.37, 0.00),
    (0.75, 32.19, 0.00),
    (5.34, 2.41, 0.00),
)

#: Figure 5: the paper's cross-site averages of top-group mean rewards
#: ("the best group averages 258, followed by 89, 74, 67, and 41 for the
#: 10th").
FIGURE5_TOP_GROUP_AVG = 258.0
FIGURE5_TENTH_GROUP_AVG = 41.0
