"""Experiment configuration: paper defaults and scale adaptations."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: The paper's default hyper-parameters (Sec. 4.5).
PAPER_DEFAULTS = {
    "n": 2,
    "theta": 0.75,
    "alpha": 2.0 * math.sqrt(2.0),
    "m": 12,
    "w": 15,
    "b": 10,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``scale`` multiplies the (already laptop-scale) site sizes; tests use
    small scales, the benchmark harness uses 1.0.  ``sb_runs`` is the
    number of seeds SB-CLASSIFIER results are averaged over (the paper
    averages 15 runs; 3 keeps the benchmark suite tractable).
    """

    scale: float = 1.0
    sb_runs: int = 3
    seeds: tuple[int, ...] = field(default=(1, 2, 3))
    #: sites to evaluate (None = the paper's 18)
    sites: tuple[str, ...] | None = None

    def run_seeds(self) -> tuple[int, ...]:
        return self.seeds[: self.sb_runs]


def scaled_early_stopping(n_available: int) -> dict[str, float | int]:
    """Early-stopping parameters scaled to site size.

    The paper's ν = 1000 / κ = 15 assume million-page budgets; on sites
    of a few thousand pages the slope window scales with the site so the
    κ·ν warm-up does not exceed the whole crawl (the paper itself notes
    that small sites finish before κ·ν iterations, Sec. 4.8).
    """
    window = max(30, n_available // 40)
    return {
        "es_window": window,
        "es_threshold": 0.2,
        # The paper's γ = 0.05 suits ν = 1000 windows on million-page
        # crawls; with windows scaled ~25× smaller the EMA must also
        # forget ~25× faster to represent the same crawl fraction.
        "es_decay": 0.3,
        "es_patience": 6,
    }
