"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

import math


def fmt_cell(value: float | None, width: int = 6, digits: int = 1) -> str:
    """Format a metric cell: numbers, '+inf', 'NA' for missing."""
    if value is None:
        return "NA".rjust(width)
    if isinstance(value, float) and math.isinf(value):
        return "+inf".rjust(width)
    return f"{value:.{digits}f}".rjust(width)


def render_table(
    title: str,
    columns: list[str],
    rows: list[tuple[str, list[float | None]]],
    digits: int = 1,
    label_width: int = 22,
) -> str:
    """Render a labelled matrix as fixed-width text."""
    width = max(6, max((len(c) for c in columns), default=6) + 1)
    lines = [title, "=" * len(title)]
    header = " " * label_width + "".join(c.rjust(width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows:
        cells = "".join(fmt_cell(v, width, digits) for v in values)
        lines.append(label.ljust(label_width)[:label_width] + cells)
    return "\n".join(lines)


def render_pairs_table(
    title: str,
    columns: list[str],
    rows: list[tuple[str, list[tuple[float | None, float | None]]]],
    label_width: int = 16,
) -> str:
    """Render cells of the form ``req|vol`` (the paper's Table 4 style)."""
    width = 14
    lines = [title, "=" * len(title)]
    header = " " * label_width + "".join(c.rjust(width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows:
        cells = ""
        for left, right in values:
            cell = f"{fmt_cell(left, 5)}|{fmt_cell(right, 5)}"
            cells += cell.rjust(width)
        lines.append(label.ljust(label_width)[:label_width] + cells)
    return "\n".join(lines)


def ascii_curve(
    xs: list[float],
    ys: list[float],
    width: int = 64,
    height: int = 14,
    title: str = "",
) -> str:
    """Tiny ASCII line plot (used by the example scripts and figures)."""
    if not xs or not ys or len(xs) != len(ys):
        return f"{title} (no data)"
    x_max = max(xs) or 1.0
    y_max = max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [title] if title else []
    lines.append(f"y_max={y_max:.3g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"  x_max={x_max:.3g}")
    return "\n".join(lines)
