"""Table 4: hyper-parameter study on α, n and θ (SB-ORACLE, 11 sites).

For each hyper-parameter value, reports the pair
(requests-% to 90 % targets | non-target-volume-% to 90 % target volume)
on the fully-crawled websites, like the paper's Table 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.metrics import (
    non_target_volume_fraction,
    requests_to_fraction,
    site_non_target_bytes,
)
from repro.core.crawler import SBConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_pairs_table
from repro.experiments.runner import ResultCache, default_cache
from repro.webgraph.sites import FULLY_CRAWLED_SITES

#: The studied values (paper Sec. 4.6).
ALPHA_VALUES: tuple[tuple[str, float], ...] = (
    ("0.1", 0.1),
    ("2sqrt2", 2.0 * math.sqrt(2.0)),
    ("30", 30.0),
)
N_VALUES: tuple[int, ...] = (1, 2, 3)
THETA_VALUES: tuple[float, ...] = (0.55, 0.75, 0.95)


@dataclass
class Table4Result:
    sites: list[str]
    #: row label -> per-site (requests %, volume %) pairs
    rows: dict[str, list[tuple[float, float]]]

    def render(self) -> str:
        return render_pairs_table(
            "Table 4: hyper-parameter study (requests% | non-target volume%), "
            "SB-ORACLE",
            self.sites,
            [(label, values) for label, values in self.rows.items()],
        )


def _run_config(
    cache: ResultCache, site: str, sb_config: SBConfig, config_key: str
) -> tuple[float, float]:
    env = cache.env(site)
    result = cache.run(
        site, "SB-ORACLE", seed=sb_config.seed,
        sb_config=sb_config, config_key=config_key,
    )
    req = requests_to_fraction(result.trace, env.total_targets(), env.n_available())
    vol = non_target_volume_fraction(
        result.trace, env.total_target_bytes(), site_non_target_bytes(env.graph)
    )
    return req, vol


def compute_table4(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    sites: tuple[str, ...] | None = None,
) -> Table4Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    site_list = list(sites or config.sites or FULLY_CRAWLED_SITES)
    seed = config.run_seeds()[0]
    rows: dict[str, list[tuple[float, float]]] = {}

    for label, alpha in ALPHA_VALUES:
        sb_config = SBConfig(alpha=alpha, seed=seed)
        rows[f"alpha={label}"] = [
            _run_config(cache, site, sb_config, f"alpha={label}")
            for site in site_list
        ]
    for n in N_VALUES:
        sb_config = SBConfig(ngram_n=n, seed=seed)
        rows[f"n={n}"] = [
            _run_config(cache, site, sb_config, f"n={n}") for site in site_list
        ]
    for theta in THETA_VALUES:
        sb_config = SBConfig(theta=theta, seed=seed)
        rows[f"theta={theta}"] = [
            _run_config(cache, site, sb_config, f"theta={theta}")
            for site in site_list
        ]
    return Table4Result(sites=site_list, rows=rows)
