"""Table 5 (+ Tables 8–16): URL-classifier model/feature study.

Evaluates the eight classifier variants (LR, SVM, NB, PA × URL_ONLY,
URL_CONT) with SB-CLASSIFIER on the fully-crawled sites: the
requests-to-90 % metric per site, the inter-site misclassification rate
("MR"), and the averaged confusion matrices of the appendix tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import requests_to_fraction
from repro.core.crawler import SBConfig
import repro.experiments.paperdata as paperdata
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import fmt_cell, render_table
from repro.experiments.runner import ResultCache, default_cache
from repro.ml.metrics import ConfusionMatrix
from repro.webgraph.sites import FULLY_CRAWLED_SITES

MODELS: tuple[str, ...] = ("LR", "SVM", "NB", "PA")
FEATURE_SETS: tuple[str, ...] = ("URL_ONLY", "URL_CONT")


@dataclass
class Table5Result:
    sites: list[str]
    #: variant -> per-site requests-% metric
    measured: dict[str, list[float]]
    #: variant -> inter-site misclassification rate
    mr: dict[str, float]
    #: variant -> averaged confusion matrix (Tables 8–15)
    confusions: dict[str, ConfusionMatrix]

    def render(self) -> str:
        rows: list[tuple[str, list[float | None]]] = []
        for variant, values in self.measured.items():
            rows.append((variant, list(values) + [self.mr[variant]]))
            paper = paperdata.TABLE5.get(variant)
            if paper is not None:
                per_site, paper_mr = paper
                paper_row = [
                    per_site[paperdata.FULLY_CRAWLED_ORDER.index(site)]
                    if site in paperdata.FULLY_CRAWLED_ORDER
                    else None
                    for site in self.sites
                ]
                rows.append((f"  (paper)", paper_row + [paper_mr]))
        table = render_table(
            "Table 5: URL-classifier variants (requests-% per site, MR)",
            self.sites + ["MR"],
            rows,
            label_width=16,
        )
        matrices = [table, "", "Confusion matrices (Tables 8-15 style, %):"]
        for variant, matrix in self.confusions.items():
            matrices.append(f"-- {variant}")
            for true_label in matrix.labels:
                cells = " ".join(
                    fmt_cell(matrix.percentage(true_label, p), 7, 2)
                    for p in matrix.labels
                )
                matrices.append(f"   true {true_label:8}: {cells}")
        return "\n".join(matrices)


def compute_table5(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    sites: tuple[str, ...] | None = None,
) -> Table5Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    site_list = list(sites or config.sites or FULLY_CRAWLED_SITES)
    seed = config.run_seeds()[0]

    measured: dict[str, list[float]] = {}
    mr: dict[str, float] = {}
    confusions: dict[str, ConfusionMatrix] = {}

    for feature_set in FEATURE_SETS:
        for model in MODELS:
            variant = f"{feature_set}-{model}"
            sb_config = SBConfig(
                classifier_model=model, feature_set=feature_set, seed=seed
            )
            per_site: list[float] = []
            merged = ConfusionMatrix()
            for site in site_list:
                env = cache.env(site)
                result = cache.run(
                    site, "SB-CLASSIFIER", seed=seed,
                    sb_config=sb_config, config_key=variant,
                )
                per_site.append(
                    requests_to_fraction(
                        result.trace, env.total_targets(), env.n_available()
                    )
                )
                merged = merged.merged(result.info["confusion"])
            measured[variant] = per_site
            mr[variant] = merged.misclassification_rate()
            confusions[variant] = merged
    return Table5Result(
        sites=site_list, measured=measured, mr=mr, confusions=confusions
    )
