"""Table 1: main characteristics of the 18 websites.

The paper's Table 1 is the census of the evaluation corpus.  Our
reproduction generates each synthetic replica, measures the same
statistics from the graph (by exhaustive traversal, like the paper's
full crawls) and prints them next to the paper's published values so
the scale substitution is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ResultCache, default_cache
from repro.webgraph.sites import PAPER_STATS


@dataclass
class Table1Row:
    site: str
    start_url: str
    multilingual: bool
    fully_crawled: bool
    n_available: int
    n_targets: int
    target_density_pct: float
    html_to_target_pct: float
    size_mean_mb: float
    size_std_mb: float
    depth_mean: float
    depth_std: float
    # paper reference (counts in thousands)
    paper_available_k: float
    paper_targets_k: float
    paper_html_to_target_pct: float
    paper_depth_mean: float


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def render(self) -> str:
        lines = [
            "Table 1: website characteristics (measured on synthetic replicas; "
            "paper values in parentheses)",
            f"{'site':4} {'Mlg':3} {'F.C.':4} {'#Avail':>8} {'#Target':>8} "
            f"{'Dens%':>6} {'HTML to T.%':>16} {'Size MB':>14} {'Depth':>18}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.site:4} {'y' if r.multilingual else 'n':3} "
                f"{'y' if r.fully_crawled else 'n':4} "
                f"{r.n_available:8d} {r.n_targets:8d} "
                f"{r.target_density_pct:6.1f} "
                f"{r.html_to_target_pct:6.2f} ({r.paper_html_to_target_pct:5.2f}) "
                f"{r.size_mean_mb:5.2f}±{r.size_std_mb:<7.2f} "
                f"{r.depth_mean:5.1f}±{r.depth_std:<4.1f} "
                f"(paper depth {r.paper_depth_mean:.1f})"
            )
        return "\n".join(lines)


def compute_table1(cache: ResultCache | None = None,
                   sites: tuple[str, ...] | None = None) -> Table1Result:
    cache = cache or default_cache()
    rows: list[Table1Row] = []
    for site in sites or sorted(PAPER_STATS):
        paper = PAPER_STATS[site]
        stats = cache.env(site).graph.statistics()
        rows.append(
            Table1Row(
                site=site,
                start_url=paper.start_url,
                multilingual=paper.multilingual,
                fully_crawled=paper.fully_crawled,
                n_available=stats.n_available,
                n_targets=stats.n_targets,
                target_density_pct=100.0 * stats.target_density,
                html_to_target_pct=stats.html_to_target_pct,
                size_mean_mb=stats.target_size_mean / 1e6,
                size_std_mb=stats.target_size_std / 1e6,
                depth_mean=stats.target_depth_mean,
                depth_std=stats.target_depth_std,
                paper_available_k=paper.available_k,
                paper_targets_k=paper.targets_k,
                paper_html_to_target_pct=paper.html_to_target_pct,
                paper_depth_mean=paper.depth_mean,
            )
        )
    return Table1Result(rows=rows)
