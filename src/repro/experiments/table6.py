"""Table 6: mean and STD of the non-zero action rewards per site.

The paper uses this table to show rewards are heavy-tailed across tag
path groups (STD far above the mean on most sites), which motivates the
pragmatic α = 2√2 choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.experiments.paperdata as paperdata
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import ResultCache, default_cache


@dataclass
class Table6Result:
    sites: list[str]
    means: list[float]
    stds: list[float]

    def render(self) -> str:
        paper_means = [
            paperdata.TABLE6_MEAN[paperdata.SITE_ORDER.index(s)] for s in self.sites
        ]
        paper_stds = [
            paperdata.TABLE6_STD[paperdata.SITE_ORDER.index(s)] for s in self.sites
        ]
        return render_table(
            "Table 6: mean/STD of non-zero action rewards",
            self.sites,
            [
                ("Mean", list(self.means)),
                ("  (paper mean)", paper_means),
                ("Std", list(self.stds)),
                ("  (paper std)", paper_stds),
            ],
        )

    def heavy_tail_sites(self) -> list[str]:
        """Sites where reward STD exceeds the mean (the paper's argument
        that rewards are not normally distributed)."""
        return [
            site
            for site, mean, std in zip(self.sites, self.means, self.stds)
            if std > mean > 0
        ]


def compute_table6(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
) -> Table6Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    sites = list(config.sites or cache.sites())
    means: list[float] = []
    stds: list[float] = []
    for site in sites:
        result = cache.run(site, "SB-CLASSIFIER", seed=config.run_seeds()[0])
        means.append(result.info["reward_mean_nonzero"])
        stds.append(result.info["reward_std_nonzero"])
    return Table6Result(sites=sites, means=means, stds=stds)
