"""Experiment harness: regenerates every table and figure of the paper.

Each ``tableN`` / ``figures`` module exposes a ``compute_*`` function
returning a structured result with a ``render()`` method that prints the
same rows/series the paper reports (paper values side by side where the
source provides them).  ``runner`` caches crawl runs so tables that
share runs (2, 3, 6, figures) do not recompute them.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    CRAWLER_ORDER,
    ResultCache,
    crawler_factory,
    default_cache,
)
from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3
from repro.experiments.table4 import compute_table4
from repro.experiments.table5 import compute_table5
from repro.experiments.table6 import compute_table6
from repro.experiments.table7 import compute_table7
from repro.experiments.faultmatrix import compute_fault_matrix
from repro.experiments.figures import (
    compute_figure4,
    compute_figure5,
    compute_figure15,
)

__all__ = [
    "ExperimentConfig",
    "CRAWLER_ORDER",
    "ResultCache",
    "crawler_factory",
    "default_cache",
    "compute_table1",
    "compute_table2",
    "compute_table3",
    "compute_table4",
    "compute_table5",
    "compute_table6",
    "compute_table7",
    "compute_fault_matrix",
    "compute_figure4",
    "compute_figure5",
    "compute_figure15",
]
