"""Campaign matrix: makespan and wall-clock speedup versus worker count.

Exercises the sharded campaign engine (``repro.campaign.engine``) the
way a data-acquisition team would size a crawl cluster:

* **virtual makespan** — for each crawler, the campaign's shards are
  crawled once (serial backend) and then re-merged under increasing
  worker counts; the virtual politeness clock yields the makespan and
  interleaving speedup each pool size would deliver.  Re-merging is
  cheap because the virtual times are a post-hoc simulation
  (:func:`repro.campaign.merge.assign_virtual_times`) — no re-crawling;
* **wall-clock speedup** — one crawler (the cheapest deterministic one)
  is additionally re-run under the real multiprocessing backend and the
  measured serial/parallel elapsed ratio is reported.  This number is
  *measured, never asserted*: on a single-core box it sits near (or
  below) 1.0 while multi-core CI shows the real speedup — and the
  report digests stay byte-identical either way, which is the engine's
  actual contract.

Everything except the two elapsed-seconds cells is deterministic; the
digest column lets readers check cross-backend equivalence at a glance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.campaign.engine import (
    CampaignSpec,
    dispatch_order,
    shard_tasks,
    site_weights,
)
from repro.campaign.merge import merge_outcomes
from repro.campaign.partitions import partition_sites
from repro.campaign.workers import MultiprocessingBackend, SerialBackend
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import ResultCache

#: Default campaign: the four smallest paper sites — big enough to
#: interleave meaningfully, small enough for one CLI invocation.
DEFAULT_CAMPAIGN_SITES: tuple[str, ...] = ("be", "cl", "cn", "qa")
#: Worker-pool sizes swept by the virtual-makespan table.
DEFAULT_WORKER_COUNTS: tuple[int, ...] = (1, 2, 4, 8)
#: Crawlers compared (paper crawler vs cheap baselines).
DEFAULT_CRAWLERS: tuple[str, ...] = ("SB-CLASSIFIER", "BFS", "RANDOM")


@dataclass
class CampaignMatrixResult:
    """Makespan/speedup grid plus one measured wall-clock data point."""

    sites: tuple[str, ...]
    worker_counts: tuple[int, ...]
    #: crawler -> makespan hours per worker count
    makespan_hours: dict[str, list[float]]
    #: crawler -> interleaving speedup per worker count
    speedups: dict[str, list[float]]
    #: crawler -> report digest at the largest worker count (digests
    #: cover n_workers, so each column has its own; one suffices here)
    digests: dict[str, str]
    #: measured elapsed seconds: serial vs multiprocessing backend
    wall_serial_seconds: float
    wall_mp_seconds: float
    wall_mp_workers: int
    wall_crawler: str

    @property
    def wall_speedup(self) -> float:
        if self.wall_mp_seconds <= 0:
            return 1.0
        return self.wall_serial_seconds / self.wall_mp_seconds

    def render(self) -> str:
        columns = [f"W={count}" for count in self.worker_counts]
        rows: list[tuple[str, list[float | None]]] = []
        for crawler in self.makespan_hours:
            rows.append(
                (f"{crawler} makespan (h)", list(self.makespan_hours[crawler]))
            )
            rows.append(
                (f"{crawler} speedup", list(self.speedups[crawler]))
            )
        table = render_table(
            f"Campaign matrix: {len(self.sites)} sites "
            f"({', '.join(self.sites)})",
            columns,
            rows,
            digits=2,
        )
        digest_lines = [
            f"  {crawler} digest {digest[:16]}…"
            for crawler, digest in self.digests.items()
        ]
        wall = (
            f"  wall-clock [{self.wall_crawler}]: serial "
            f"{self.wall_serial_seconds:.1f} s vs {self.wall_mp_workers}-proc "
            f"{self.wall_mp_seconds:.1f} s -> {self.wall_speedup:.2f}x "
            f"(machine-dependent; digests above are not)"
        )
        return "\n".join([table, *digest_lines, wall])


def compute_campaign_matrix(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
    *,
    sites: tuple[str, ...] = DEFAULT_CAMPAIGN_SITES,
    crawlers: tuple[str, ...] = DEFAULT_CRAWLERS,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    seed: int = 1,
    wall_crawler: str = "BFS",
) -> CampaignMatrixResult:
    """Crawl each crawler's campaign once, sweep worker counts by
    re-merging, and measure one real serial-vs-multiprocessing ratio.

    ``cache`` is accepted for driver uniformity but unused: campaign
    crawls run inside the engine's worker pool, not the shared
    result cache.
    """
    config = config or ExperimentConfig()
    del cache  # campaign runs happen inside the engine's worker pool
    n_shards = max(worker_counts)

    makespan_hours: dict[str, list[float]] = {}
    speedups: dict[str, list[float]] = {}
    digests: dict[str, str] = {}
    wall_serial = 0.0

    for crawler in crawlers:
        spec = CampaignSpec(
            sites=sites, crawler=crawler, seed=seed, scale=config.scale,
            n_shards=n_shards, n_workers=max(worker_counts),
        )
        partitions = partition_sites(
            list(spec.sites), spec.n_shards, weights=site_weights(spec.sites)
        )
        order = dispatch_order(spec, partitions)
        tasks = shard_tasks(spec, partitions, order)
        started = time.perf_counter()
        outcomes = SerialBackend().run_tasks(tasks)
        elapsed = time.perf_counter() - started
        if crawler == wall_crawler:
            wall_serial = elapsed

        makespan_hours[crawler] = []
        speedups[crawler] = []
        for count in worker_counts:
            report = merge_outcomes(
                outcomes, partitions, order,
                config={
                    "sites": sorted(spec.sites),
                    "crawler": crawler,
                    "seed": seed,
                    "scale": config.scale,
                    "budget": None,
                    "n_shards": len(partitions),
                    "n_workers": count,
                    "politeness_delay": spec.politeness_delay,
                },
                n_workers=count,
                politeness_delay=spec.politeness_delay,
            )
            makespan_hours[crawler].append(report.makespan_seconds / 3600)
            speedups[crawler].append(report.speedup)
        digests[crawler] = report.digest

    # The one machine-dependent measurement: same spec, real processes.
    mp_workers = max(worker_counts)
    mp_spec = CampaignSpec(
        sites=sites, crawler=wall_crawler, seed=seed, scale=config.scale,
        n_shards=n_shards, n_workers=mp_workers,
    )
    mp_partitions = partition_sites(
        list(mp_spec.sites), mp_spec.n_shards,
        weights=site_weights(mp_spec.sites),
    )
    mp_order = dispatch_order(mp_spec, mp_partitions)
    mp_tasks = shard_tasks(mp_spec, mp_partitions, mp_order)
    started = time.perf_counter()
    MultiprocessingBackend(n_workers=mp_workers).run_tasks(mp_tasks)
    wall_mp = time.perf_counter() - started

    return CampaignMatrixResult(
        sites=sites,
        worker_counts=worker_counts,
        makespan_hours=makespan_hours,
        speedups=speedups,
        digests=digests,
        wall_serial_seconds=wall_serial,
        wall_mp_seconds=wall_mp,
        wall_mp_workers=mp_workers,
        wall_crawler=wall_crawler,
    )
