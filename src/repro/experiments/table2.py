"""Table 2: % of requests to retrieve 90 % of targets, per crawler/site,
plus the early-stopping rows (saved requests % / lost targets %)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import requests_to_fraction
from repro.core.crawler import SBConfig
import repro.experiments.paperdata as paperdata
from repro.experiments.config import ExperimentConfig, scaled_early_stopping
from repro.experiments.report import render_table
from repro.experiments.runner import (
    CRAWLER_ORDER,
    ResultCache,
    average_metric,
    default_cache,
)


@dataclass
class Table2Result:
    sites: list[str]
    #: crawler -> per-site measured metric
    measured: dict[str, list[float]]
    saved_requests: list[float]
    lost_targets: list[float]

    def render(self) -> str:
        rows: list[tuple[str, list[float | None]]] = []
        for crawler in CRAWLER_ORDER:
            rows.append((crawler, list(self.measured[crawler])))
            paper = paperdata.TABLE2_REQUESTS.get(crawler)
            if paper is not None:
                paper_row = [
                    paper[paperdata.SITE_ORDER.index(site)] for site in self.sites
                ]
                rows.append((f"  (paper {crawler})", paper_row))
        rows.append(("Saved req. (ES)", list(self.saved_requests)))
        rows.append(("Lost targets (ES)", list(self.lost_targets)))
        return render_table(
            "Table 2: % requests to retrieve 90% of targets "
            "(+ early-stopping savings)",
            self.sites,
            rows,
        )


def compute_table2(
    config: ExperimentConfig | None = None,
    cache: ResultCache | None = None,
) -> Table2Result:
    config = config or ExperimentConfig()
    cache = cache or default_cache(config.scale)
    sites = list(config.sites or cache.sites())
    measured: dict[str, list[float]] = {name: [] for name in CRAWLER_ORDER}
    saved_requests: list[float] = []
    lost_targets: list[float] = []

    for site in sites:
        env = cache.env(site)
        total = env.total_targets()
        avail = env.n_available()
        for crawler in CRAWLER_ORDER:
            results = cache.run_seeds(site, crawler, config.run_seeds())
            value = average_metric(
                results,
                lambda r: requests_to_fraction(r.trace, total, avail),
            )
            measured[crawler].append(value)

        # Early stopping: SB-CLASSIFIER with the monitor vs without.
        base_run = cache.run(site, "SB-CLASSIFIER", seed=config.run_seeds()[0])
        es_config = SBConfig(
            seed=config.run_seeds()[0],
            early_stopping=True,
            **scaled_early_stopping(avail),
        )
        es_run = cache.run(
            site, "SB-CLASSIFIER", seed=config.run_seeds()[0],
            sb_config=es_config, config_key="early-stopping",
        )
        if base_run.n_requests > 0:
            saved = 100.0 * max(
                0, base_run.n_requests - es_run.n_requests
            ) / base_run.n_requests
        else:
            saved = 0.0
        if base_run.n_targets > 0:
            lost = 100.0 * max(
                0, base_run.n_targets - es_run.n_targets
            ) / base_run.n_targets
        else:
            lost = 0.0
        saved_requests.append(saved)
        lost_targets.append(lost)

    return Table2Result(
        sites=sites,
        measured=measured,
        saved_requests=saved_requests,
        lost_targets=lost_targets,
    )
