"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table2 --scale 0.3 --runs 1
    python -m repro figure5
    python -m repro all --scale 0.2
    python -m repro bench --seed 7 --report
    python -m repro campaign --sites be,cl,qa --backend both --scale 0.1

``bench`` delegates to :mod:`repro.bench` (its own argument set — see
``python -m repro bench --help`` and docs/performance.md); ``campaign``
runs the sharded campaign engine (docs/campaign.md) with its own
argument set below.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    compute_figure4,
    compute_figure5,
    compute_figure15,
)
from repro.experiments.faultmatrix import compute_fault_matrix
from repro.experiments.runner import ResultCache
from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3
from repro.experiments.table4 import compute_table4
from repro.experiments.table5 import compute_table5
from repro.experiments.table6 import compute_table6
from repro.experiments.table7 import compute_table7
from repro.webgraph.sites import FIGURE4_SITES, PAPER_SITES


def _figure7(config: ExperimentConfig, cache: ResultCache):
    remaining = tuple(sorted(set(PAPER_SITES) - set(FIGURE4_SITES)))
    return compute_figure4(config, cache, sites=remaining)


def _campaignmatrix(config: ExperimentConfig, cache: ResultCache):
    from repro.experiments.campaignmatrix import compute_campaign_matrix
    from repro.webgraph.sites import PAPER_SITES

    # The CLI verb runs the paper's full 18-site campaign (the
    # acquisition workload the engine exists for); library callers and
    # tests pass their own smaller site sets.
    return compute_campaign_matrix(
        config, cache, sites=tuple(sorted(PAPER_SITES))
    )


EXPERIMENTS = {
    "table1": lambda config, cache: compute_table1(cache=cache),
    "table2": compute_table2,
    "table3": compute_table3,
    "table4": compute_table4,
    "table5": compute_table5,
    "table6": compute_table6,
    "table7": compute_table7,
    "figure4": lambda config, cache: compute_figure4(config, cache),
    "figure5": lambda config, cache: compute_figure5(config, cache),
    "figure7": _figure7,
    "figure15": lambda config, cache: compute_figure15("in", config, cache),
    "faultmatrix": compute_fault_matrix,
    "campaignmatrix": _campaignmatrix,
}


def _campaign_main(argv: list[str]) -> int:
    """The ``python -m repro campaign`` verb: run the sharded campaign
    engine end to end (docs/campaign.md).

    ``--backend both`` runs serial then multiprocessing and fails (exit
    1) unless the two reports are byte-identical — the digest-
    equivalence check CI's campaign-smoke job relies on.
    """
    from repro.campaign import (
        CampaignSpec,
        MultiprocessingBackend,
        SerialBackend,
        run_campaign,
    )
    from repro.webgraph.sites import PAPER_SITES

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a sharded multi-site crawl campaign.",
    )
    parser.add_argument(
        "--sites", default=None, metavar="A,B,C",
        help="comma-separated site names (default: all 18 paper sites)",
    )
    parser.add_argument("--crawler", default="SB-CLASSIFIER",
                        help="crawler to run on every site")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="site scale factor (default 0.5)")
    parser.add_argument("--budget", type=float, default=None,
                        help="per-site request budget (default: none)")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of per-domain shards (default 4)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker-pool size (default 4)")
    parser.add_argument(
        "--backend", choices=("serial", "multiprocessing", "both"),
        default="serial",
        help="'both' runs serial + multiprocessing and verifies the "
             "merged reports are byte-identical",
    )
    parser.add_argument("--politeness", type=float, default=1.0,
                        help="per-site politeness delay, seconds")
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="record per-site JSONL event traces under DIR",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="write durable crawl-state checkpoints under DIR so an "
             "interrupted campaign (SIGINT/SIGTERM) can be resumed "
             "byte-identically (docs/checkpoint.md)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="N",
        help="crawl steps between periodic mid-site snapshots "
             "(default 25; 0 = snapshot only on shutdown)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from --checkpoint DIR",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the canonical campaign report as JSON",
    )
    args = parser.parse_args(argv)

    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint DIR")
    sites = (
        tuple(s for s in args.sites.split(",") if s)
        if args.sites is not None
        else tuple(sorted(PAPER_SITES))
    )
    if args.trace_dir is not None:
        from pathlib import Path

        # Workers only open trace files (the directory must exist):
        # creating it here keeps filesystem setup out of the
        # shard-safe worker surface (docs/campaign.md).
        Path(args.trace_dir).mkdir(parents=True, exist_ok=True)
    shutdown = None
    if args.checkpoint is not None:
        from pathlib import Path

        from repro.checkpoint import ShutdownFlag, install_signal_handlers

        checkpoint_dir = Path(args.checkpoint)
        if not args.resume and checkpoint_dir.is_dir() and any(
            checkpoint_dir.iterdir()
        ):
            print(f"ERROR: checkpoint dir {checkpoint_dir} is not empty; "
                  "pass --resume to continue it or choose a fresh dir")
            return 2
        # Same rationale as --trace-dir: directory setup happens in the
        # CLI, outside the shard-safe worker surface.
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
        shutdown = ShutdownFlag()
        # Serial runs drain gracefully via the flag (the in-flight
        # crawl saves a final snapshot); the multiprocessing pool needs
        # the KeyboardInterrupt path to terminate its children.
        install_signal_handlers(
            shutdown, raise_keyboard_interrupt=(args.backend != "serial")
        )
    spec = CampaignSpec(
        sites=sites, crawler=args.crawler, seed=args.seed, scale=args.scale,
        budget=args.budget, n_shards=args.shards, n_workers=args.workers,
        politeness_delay=args.politeness, trace_dir=args.trace_dir,
    )
    backends = {
        "serial": [SerialBackend(shutdown=shutdown)],
        "multiprocessing": [MultiprocessingBackend(n_workers=args.workers)],
        "both": [SerialBackend(shutdown=shutdown),
                 MultiprocessingBackend(n_workers=args.workers)],
    }[args.backend]

    reports = []
    for backend in backends:
        started = time.time()  # repro: noqa[DET002] CLI progress display only
        report = run_campaign(
            spec, backend=backend,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
        elapsed = time.time() - started  # repro: noqa[DET002] display only
        reports.append(report)
        print(f"[{backend.name} backend: {elapsed:.1f} s]")
        print(report.render())

    if args.backend == "both":
        serial_json, mp_json = reports[0].to_json(), reports[1].to_json()
        if serial_json != mp_json:
            print("FAIL: serial and multiprocessing reports differ")
            return 1
        print(f"OK: backends byte-identical (digest {reports[0].digest})")

    if args.json is not None:
        from pathlib import Path

        Path(args.json).write_text(reports[0].to_json() + "\n")
        print(f"[report written to {args.json}]")
    return 1 if reports[0].partial else 0


def _compare(config: ExperimentConfig, cache: ResultCache):
    """Statistical crawler comparison: SB-CLASSIFIER vs every baseline,
    paired over all sites, with bootstrap CIs and Wilcoxon tests."""
    from repro.analysis.metrics import requests_to_fraction
    from repro.analysis.stats import compare_paired
    from repro.experiments.runner import CRAWLER_ORDER

    sites = sorted(PAPER_SITES)
    metrics: dict[str, list[float]] = {}
    for crawler in CRAWLER_ORDER:
        values = []
        for site in sites:
            env = cache.env(site)
            result = cache.run(site, crawler, seed=config.run_seeds()[0])
            values.append(
                requests_to_fraction(
                    result.trace, env.total_targets(), env.n_available()
                )
            )
        metrics[crawler] = values

    class _Report:
        def render(self) -> str:
            lines = ["Paired comparison (requests-% to 90% targets, 18 sites)"]
            for baseline in CRAWLER_ORDER:
                if baseline == "SB-CLASSIFIER":
                    continue
                comparison = compare_paired(
                    metrics["SB-CLASSIFIER"], metrics[baseline]
                )
                lines.append(
                    "  " + comparison.render("SB-CLASSIFIER", baseline)
                )
            return "\n".join(lines)

    return _Report()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The benchmark CLI has its own argument set; hand over before
        # argparse sees (and rejects) it.
        from repro.bench.__main__ import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "campaign":
        # Same pattern: the campaign verb owns its argument set.
        return _campaign_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a table or figure of the paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "compare"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="site scale factor (default 0.5; 1.0 = full laptop scale)",
    )
    parser.add_argument(
        "--runs", type=int, default=1,
        help="number of seeds to average stochastic crawlers over",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="record every crawl's event stream as JSONL under DIR "
             "(replay with python -m repro.obs report; see "
             "docs/observability.md)",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        scale=args.scale, sb_runs=args.runs,
        seeds=tuple(range(1, args.runs + 1)),
    )
    cache = ResultCache(scale=args.scale, trace_dir=args.trace_dir)
    if args.experiment == "compare":
        names = ["compare"]
        runners = {"compare": _compare}
    elif args.experiment == "all":
        names = sorted(EXPERIMENTS)
        runners = EXPERIMENTS
    else:
        names = [args.experiment]
        runners = EXPERIMENTS
    for name in names:
        started = time.time()  # repro: noqa[DET002] CLI progress display only
        result = runners[name](config, cache)
        print(result.render())
        elapsed = time.time() - started  # repro: noqa[DET002] display only
        print(f"[{name} computed in {elapsed:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
