"""SB-CLASSIFIER with GET-form enumeration."""

from __future__ import annotations

from repro.core.crawler import SBConfig, SBCrawler

#: Synthetic tag path under which form submissions are grouped: one
#: bandit action per form-bearing layout, learned like any link group.
_FORM_TAG_PATH = "html body div#main form.deep-search select option"


class DeepWebSBCrawler(SBCrawler):
    """SB crawler that also enumerates GET search forms.

    ``max_submissions_per_form`` bounds the enumeration — real form
    spaces can be huge; the cap keeps the crawl budget-safe, and the
    sleeping bandit stops drawing from the form action as soon as its
    observed reward lags behind navigation actions.
    """

    def __init__(
        self,
        config: SBConfig | None = None,
        max_submissions_per_form: int = 64,
        name: str | None = None,
    ) -> None:
        super().__init__(config, name=name or "SB-DEEPWEB")
        self.max_submissions_per_form = max_submissions_per_form

    def _process_forms(self, state, parsed) -> None:
        for form in getattr(parsed, "forms", []):
            submissions = form.submission_urls()[: self.max_submissions_per_form]
            for url in submissions:
                if url in state.seen:
                    continue
                if not state.env.in_site(url):
                    continue
                if not state.robots.allowed(url):
                    state.seen.add(url)
                    continue
                state.seen.add(url)
                # Submissions resolve to result *pages*: queue as HTML
                # under the form's own action group.
                action_id = state.actions.assign(_FORM_TAG_PATH)
                state.bandit.ensure_arm(action_id)
                state.frontier.add(url, action_id)


def deep_web_sb_classifier(
    config: SBConfig | None = None,
    max_submissions_per_form: int = 64,
) -> DeepWebSBCrawler:
    """Factory mirroring :func:`repro.core.crawler.sb_classifier`."""
    return DeepWebSBCrawler(
        config or SBConfig(), max_submissions_per_form=max_submissions_per_form
    )
