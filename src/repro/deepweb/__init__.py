"""Deep-web crawling (the paper's second future-work direction).

Statistics portals often hide datasets behind search forms; a
link-following crawler never reaches them.  The paper's conclusion
names "integrating deep-Web crawling techniques ... to access data
behind forms" as future work.  This package provides
:class:`DeepWebSBCrawler`: SB-CLASSIFIER extended with bounded GET-form
enumeration — every form found on a crawled page contributes its value
combinations to the frontier under a dedicated tag-path action, so the
bandit learns whether *form submissions* on this site are worth the
requests, with the same machinery it uses for links.
"""

from repro.deepweb.crawler import DeepWebSBCrawler, deep_web_sb_classifier

__all__ = ["DeepWebSBCrawler", "deep_web_sb_classifier"]
