"""repro — reproduction of "Efficient Crawling for Scalable Web Data
Acquisition" (EDBT 2026).

A focused-crawling library built around SB-CLASSIFIER, a sleeping-bandit
crawler that learns which DOM tag paths lead to pages rich in data-file
targets, plus every substrate the paper's evaluation needs: a synthetic
web (18 site profiles mirroring the paper's Table 1), a simulated HTTP
layer with request/volume cost accounting, from-scratch online learning
models and an HNSW index, the six baseline crawlers, and an experiment
harness regenerating every table and figure.

Quickstart::

    from repro import CrawlEnvironment, SBConfig, sb_classifier, load_paper_site

    env = CrawlEnvironment(load_paper_site("ju", scale=0.3))
    result = sb_classifier(SBConfig(seed=1)).crawl(env, budget=1000)
    print(result.n_targets, "targets in", result.n_requests, "requests")
"""

from repro.core.base import Crawler, CrawlResult
from repro.core.crawler import SBConfig, SBCrawler, sb_classifier, sb_oracle
from repro.http.environment import CrawlEnvironment
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsObserver,
    MetricsRegistry,
    MultiObserver,
    Observer,
    crawl_report,
)
from repro.webgraph.generator import SiteProfile, generate_site
from repro.webgraph.sites import (
    FULLY_CRAWLED_SITES,
    PAPER_SITES,
    load_paper_site,
    paper_site_profiles,
)

__version__ = "1.0.0"

__all__ = [
    "Crawler",
    "CrawlResult",
    "SBConfig",
    "SBCrawler",
    "sb_classifier",
    "sb_oracle",
    "CrawlEnvironment",
    "Observer",
    "MultiObserver",
    "MemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsObserver",
    "crawl_report",
    "SiteProfile",
    "generate_site",
    "FULLY_CRAWLED_SITES",
    "PAPER_SITES",
    "load_paper_site",
    "paper_site_profiles",
    "__version__",
]
