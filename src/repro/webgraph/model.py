"""Website graph model (Definition 1 of the paper).

A website is a rooted, node-weighted, edge-labelled directed graph: nodes
are resources (HTML pages, data-file targets, error URLs), edges are
hyperlinks, and each edge carries a *tag path* label — the DOM path from
the HTML root to the anchor element in the page containing the link.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator
from urllib.parse import urlsplit

from repro.webgraph.mime import HTML_MIME, is_target_mime


class PageKind(Enum):
    """Resource categories of the crawl environment."""

    HTML = "html"
    TARGET = "target"
    ERROR = "error"
    REDIRECT = "redirect"
    OTHER = "other"  # reachable, 2xx, but neither HTML nor target (e.g. image)


@dataclass(frozen=True)
class Link:
    """A hyperlink: destination URL, DOM tag path, and anchor text.

    ``tag_path`` is the canonical space-separated string form, e.g.
    ``"html body div#main ul.datasets li a"`` where ``#`` prefixes the
    element id and ``.`` a class (Sec. 2.2, Fig. 2).
    """

    url: str
    tag_path: str
    anchor: str = ""


@dataclass(frozen=True)
class Form:
    """A GET search form (deep-web extension).

    ``fields`` maps each select name to its finite option values;
    submitting a value combination requests
    ``action?name1=v1&name2=v2`` (names in field order).
    ``result_urls`` is the ground-truth set of result pages, used only
    for graph analyses (reachability) — crawlers must *enumerate*, they
    never see this attribute.
    """

    action: str
    fields: tuple[tuple[str, tuple[str, ...]], ...]
    result_urls: tuple[str, ...] = ()

    def submission_urls(self) -> list[str]:
        """All submission URLs (cartesian product of option values)."""
        import itertools

        names = [name for name, _ in self.fields]
        value_lists = [values for _, values in self.fields]
        urls = []
        for combo in itertools.product(*value_lists):
            query = "&".join(f"{n}={v}" for n, v in zip(names, combo))
            urls.append(f"{self.action}?{query}")
        return urls


@dataclass
class Page:
    """One node of the website graph.

    Pages also model error URLs (kind == ERROR, status 4xx/5xx) and
    redirects (kind == REDIRECT, status 3xx with a ``redirect_to``);
    the paper's crawler must cope with all of these.
    """

    url: str
    kind: PageKind
    mime_type: str | None = HTML_MIME
    status: int = 200
    size: int = 0
    redirect_to: str | None = None
    links: list[Link] = field(default_factory=list)
    #: GET search forms on this page (deep-web extension)
    forms: list[Form] = field(default_factory=list)
    #: section identifier assigned by the generator (used in analyses only)
    section: str = ""

    @property
    def is_target(self) -> bool:
        return self.kind is PageKind.TARGET

    @property
    def is_html(self) -> bool:
        return self.kind is PageKind.HTML


@dataclass
class SiteStatistics:
    """Table 1-style site characteristics computed from the graph."""

    n_available: int
    n_targets: int
    target_density: float
    html_to_target_pct: float
    target_size_mean: float
    target_size_std: float
    target_depth_mean: float
    target_depth_std: float

    def as_row(self) -> dict[str, float]:
        return {
            "#Available": self.n_available,
            "#Target": self.n_targets,
            "Density (%)": 100.0 * self.target_density,
            "HTML to T. (%)": self.html_to_target_pct,
            "Target Size Mean (MB)": self.target_size_mean / 1e6,
            "Target Size STD (MB)": self.target_size_std / 1e6,
            "Target Depth Mean": self.target_depth_mean,
            "Target Depth STD": self.target_depth_std,
        }


def registrable_host(url: str) -> str:
    """Return the hostname of ``url`` with any leading ``www.`` removed.

    The paper (Sec. 2.2) treats ``www.`` as an alias prefix when deciding
    website membership.
    """
    host = urlsplit(url).hostname or ""
    host = host.lower()
    if host.startswith("www."):
        host = host[4:]
    return host


def same_site(root_url: str, url: str) -> bool:
    """Website-boundary rule of Sec. 2.2.

    ``url`` belongs to the site of ``root_url`` iff its hostname (modulo a
    ``www.`` prefix) equals the root hostname or is a subdomain of it.
    """
    root_host = registrable_host(root_url)
    host = registrable_host(url)
    if not root_host or not host:
        return False
    return host == root_host or host.endswith("." + root_host)


class WebsiteGraph:
    """A complete synthetic website: pages indexed by URL, plus a root.

    The graph is the *ground truth* consumed by the simulated HTTP server;
    crawlers never see it directly — they observe only HTTP responses.
    """

    def __init__(self, root_url: str, name: str = "site") -> None:
        self.root_url = root_url
        self.name = name
        self._pages: dict[str, Page] = {}
        #: robots.txt body served at <root>/robots.txt (None = no file)
        self.robots_txt: str | None = None
        #: URLs listed in the site's sitemap.xml (empty = no sitemap)
        self.sitemap_urls: list[str] = []

    # -- construction -------------------------------------------------

    def add_page(self, page: Page) -> None:
        if page.url in self._pages:
            raise ValueError(f"duplicate URL: {page.url}")
        self._pages[page.url] = page

    # -- lookups ------------------------------------------------------

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def get(self, url: str) -> Page | None:
        return self._pages.get(url)

    def page(self, url: str) -> Page:
        return self._pages[url]

    def pages(self) -> Iterator[Page]:
        return iter(self._pages.values())

    def urls(self) -> Iterator[str]:
        return iter(self._pages.keys())

    @property
    def root(self) -> Page:
        return self._pages[self.root_url]

    # -- derived sets ---------------------------------------------------

    def html_pages(self) -> list[Page]:
        return [p for p in self._pages.values() if p.kind is PageKind.HTML]

    def target_pages(self) -> list[Page]:
        return [p for p in self._pages.values() if p.kind is PageKind.TARGET]

    def target_urls(self) -> set[str]:
        return {p.url for p in self._pages.values() if p.kind is PageKind.TARGET}

    def available_pages(self) -> list[Page]:
        """Pages that resolve with a 2xx (the paper's "#Available")."""
        return [
            p
            for p in self._pages.values()
            if p.kind in (PageKind.HTML, PageKind.TARGET, PageKind.OTHER)
        ]

    # -- analyses -------------------------------------------------------

    def depths(self) -> dict[str, int]:
        """Shortest link distance from the root for every reachable URL.

        Redirects are followed at zero depth cost (they are the same
        logical resource).
        """
        dist: dict[str, int] = {self.root_url: 0}
        queue: deque[str] = deque([self.root_url])
        while queue:
            url = queue.popleft()
            page = self._pages.get(url)
            if page is None:
                continue
            if page.redirect_to is not None and page.redirect_to not in dist:
                dist[page.redirect_to] = dist[url]
                queue.append(page.redirect_to)
            for link in page.links:
                if link.url not in dist:
                    dist[link.url] = dist[url] + 1
                    queue.append(link.url)
            for form in page.forms:
                # Form submissions are navigation steps of depth 1.
                for result_url in form.result_urls:
                    if result_url not in dist:
                        dist[result_url] = dist[url] + 1
                        queue.append(result_url)
        return dist

    def statistics(self) -> SiteStatistics:
        """Compute the Table 1 metrics for this site."""
        available = self.available_pages()
        targets = self.target_pages()
        html = [p for p in available if p.kind is PageKind.HTML]
        target_urls = {p.url for p in targets}
        linking = sum(
            1 for p in html if any(link.url in target_urls for link in p.links)
        )
        sizes = [float(p.size) for p in targets]
        depth_map = self.depths()
        depths = [float(depth_map[p.url]) for p in targets if p.url in depth_map]
        return SiteStatistics(
            n_available=len(available),
            n_targets=len(targets),
            target_density=(len(targets) / len(available)) if available else 0.0,
            html_to_target_pct=(100.0 * linking / len(html)) if html else 0.0,
            target_size_mean=_mean(sizes),
            target_size_std=_std(sizes),
            target_depth_mean=_mean(depths),
            target_depth_std=_std(depths),
        )

    def validate(self) -> list[str]:
        """Return a list of consistency problems (empty when sound)."""
        problems: list[str] = []
        if self.root_url not in self._pages:
            problems.append("root URL missing from graph")
        for page in self._pages.values():
            if page.kind is PageKind.REDIRECT and page.redirect_to is None:
                problems.append(f"redirect without destination: {page.url}")
            if page.kind is not PageKind.HTML and page.links:
                problems.append(f"non-HTML page with outlinks: {page.url}")
            if page.kind is PageKind.TARGET and not is_target_mime(page.mime_type):
                problems.append(f"target with non-target MIME: {page.url}")
            for link in page.links:
                if same_site(self.root_url, link.url) and link.url not in self._pages:
                    problems.append(f"dangling in-site link: {page.url} -> {link.url}")
        reachable = set(self.depths())
        for page in self.available_pages():
            if page.url not in reachable:
                problems.append(f"unreachable page: {page.url}")
        return problems


def _mean(xs: list[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def _std(xs: list[float]) -> float:
    if len(xs) < 2:
        return 0.0
    mu = _mean(xs)
    return (sum((x - mu) ** 2 for x in xs) / len(xs)) ** 0.5
