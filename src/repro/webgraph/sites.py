"""The 18 website profiles of the paper's evaluation (Table 1).

Each profile mirrors one of the paper's sites: target density, fraction
of HTML pages linking to targets, target size distribution, relative
depth profile, URL style, multilinguality and CSS idiosyncrasies (e.g.
the unique-id noise that broke θ = 0.95 on *ed*).  Page counts are
scaled down from the paper's (4 k – 1 M pages) to laptop scale while
preserving the *relative* size ordering; target depth statistics are
scaled with the site, preserving the shallow/deep contrast between e.g.
*ce* (4.2 ± 0.5) and *ju* (86.9 ± 86.3).

``PAPER_STATS`` keeps the paper's published Table 1 numbers so the
Table 1 experiment can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import derive_seed
from repro.webgraph.generator import SiteProfile, generate_site
from repro.webgraph.model import WebsiteGraph


@dataclass(frozen=True)
class PaperSiteStats:
    """The values the paper reports in Table 1 (sizes in thousands, MB)."""

    name: str
    start_url: str
    multilingual: bool
    fully_crawled: bool
    available_k: float
    targets_k: float
    html_to_target_pct: float
    size_mean_mb: float
    size_std_mb: float
    depth_mean: float
    depth_std: float


#: Table 1 of the paper, verbatim.
PAPER_STATS: dict[str, PaperSiteStats] = {
    s.name: s
    for s in [
        PaperSiteStats("ab", "https://www.abs.gov.au/", False, False,
                       952.26, 263.26, 8.86, 4.50, 56.04, 8.94, 2.56),
        PaperSiteStats("as", "https://www.assemblee-nationale.fr/", False, False,
                       949.42, 155.94, 4.34, 0.54, 6.38, 5.84, 1.07),
        PaperSiteStats("be", "https://www.bea.gov/", False, True,
                       31.23, 15.84, 32.19, 2.03, 6.99, 5.73, 3.21),
        PaperSiteStats("ce", "https://www.census.gov/", False, False,
                       988.37, 257.68, 3.47, 1.51, 15.77, 4.23, 0.48),
        PaperSiteStats("cl", "https://www.collectivites-locales.gouv.fr", False, True,
                       5.54, 3.70, 5.40, 1.15, 4.91, 2.80, 0.82),
        PaperSiteStats("cn", "https://www.cnis.fr/", False, True,
                       12.80, 7.49, 13.87, 0.43, 1.74, 4.26, 1.59),
        PaperSiteStats("ed", "https://www.education.gouv.fr/", False, True,
                       102.71, 10.47, 3.95, 1.00, 3.07, 11.89, 13.22),
        PaperSiteStats("il", "https://www.ilo.org/", True, False,
                       990.71, 81.01, 2.53, 13.40, 110.01, 4.26, 1.28),
        PaperSiteStats("in", "https://www.interieur.gouv.fr/", False, True,
                       922.46, 22.98, 1.54, 1.12, 3.06, 66.94, 39.43),
        PaperSiteStats("is", "https://www.insee.fr/", True, True,
                       285.55, 168.88, 41.34, 3.13, 21.43, 5.20, 1.81),
        PaperSiteStats("jp", "https://www.soumu.go.jp/", True, False,
                       993.87, 328.83, 6.30, 0.80, 4.49, 5.18, 1.29),
        PaperSiteStats("ju", "https://www.justice.gouv.fr/", False, True,
                       56.61, 14.85, 4.85, 0.48, 1.34, 86.91, 86.30),
        PaperSiteStats("nc", "https://nces.ed.gov/", False, True,
                       309.97, 84.94, 18.87, 1.10, 11.56, 3.63, 1.66),
        PaperSiteStats("oe", "https://www.oecd.org/", True, True,
                       222.58, 45.04, 15.61, 2.31, 23.37, 6.28, 5.65),
        PaperSiteStats("ok", "https://okfn.org/", True, True,
                       423.12, 12.95, 0.74, 0.04, 0.24, 2.64, 2.89),
        PaperSiteStats("qa", "https://www.psa.gov.qa/", True, True,
                       4.36, 2.45, 4.15, 2.97, 19.28, 3.03, 0.61),
        PaperSiteStats("wh", "https://www.who.int/", True, False,
                       351.86, 55.59, 14.19, 1.26, 11.14, 4.43, 0.62),
        PaperSiteStats("wo", "https://www.worldbank.org/", True, False,
                       223.67, 23.10, 2.38, 2.80, 27.16, 4.52, 0.69),
    ]
}

_MB = 1_000_000


def _profile(
    name: str,
    n_pages: int,
    depth_mean: float,
    depth_std: float,
    url_style: str,
    languages: tuple[str, ...],
    palette_index: int,
    unique_id_noise: float = 0.0,
    n_sections: int = 8,
) -> SiteProfile:
    stats = PAPER_STATS[name]
    return SiteProfile(
        name=name,
        base_url=stats.start_url.rstrip("/"),
        n_pages=n_pages,
        target_fraction=stats.targets_k / stats.available_k,
        html_to_target_pct=stats.html_to_target_pct,
        target_depth_mean=depth_mean,
        target_depth_std=depth_std,
        target_size_mean=stats.size_mean_mb * _MB,
        target_size_std=stats.size_std_mb * _MB,
        url_style=url_style,
        languages=languages,
        palette_index=palette_index,
        unique_id_noise=unique_id_noise,
        n_sections=n_sections,
        fully_crawled=stats.fully_crawled,
        seed=derive_seed(0, "paper-site", name),
    )


#: Scaled-down profiles for the 18 paper sites.  Page counts preserve the
#: paper's relative ordering (qa smallest … jp/ce/il/ab/as/in largest);
#: depths preserve the shallow/deep contrast (ju and in are the deep
#: pagination-portal sites; ce is extremely shallow).
PAPER_SITES: dict[str, SiteProfile] = {
    p.name: p
    for p in [
        _profile("ab", 6000, 8.9, 2.6, "extension", ("en",), 1),
        _profile("as", 6000, 5.8, 1.1, "path", ("fr",), 2),
        _profile("be", 2400, 5.7, 3.2, "extension", ("en",), 0),
        _profile("ce", 6200, 4.2, 0.5, "path", ("en",), 1, n_sections=10),
        _profile("cl", 1300, 2.8, 0.8, "extension", ("fr",), 2, n_sections=5),
        _profile("cn", 1800, 4.3, 1.6, "extension", ("fr",), 2, n_sections=6),
        _profile("ed", 3600, 9.5, 7.0, "path", ("fr",), 2, unique_id_noise=0.45),
        _profile("il", 6200, 4.3, 1.3, "node", ("en", "fr", "es"), 3, n_sections=9),
        _profile("in", 6000, 24.0, 12.0, "node", ("fr",), 2),
        _profile("is", 4500, 5.2, 1.8, "extension", ("fr", "en"), 0),
        _profile("jp", 6200, 5.2, 1.3, "path", ("ja", "en"), 1, n_sections=9),
        _profile("ju", 3000, 28.0, 22.0, "node", ("fr",), 2, n_sections=6),
        _profile("nc", 4600, 3.6, 1.7, "extension", ("en",), 0),
        _profile("oe", 4200, 6.3, 4.0, "path", ("en", "fr"), 3, unique_id_noise=0.15),
        _profile("ok", 5000, 2.6, 1.5, "path", ("en", "es"), 1, n_sections=9),
        _profile("qa", 1100, 3.0, 0.6, "path", ("ar", "en"), 0, n_sections=5),
        _profile("wh", 4800, 4.4, 0.7, "path", ("en", "fr", "es"), 3, n_sections=9),
        _profile("wo", 4200, 4.5, 0.7, "path", ("en", "es"), 3, n_sections=9),
    ]
}

#: The 11 sites the paper crawled completely (hyper-parameter studies and
#: classifier evaluations run only on these).
FULLY_CRAWLED_SITES: tuple[str, ...] = tuple(
    sorted(name for name, s in PAPER_STATS.items() if s.fully_crawled)
)

#: The 10 sites shown in Figure 4.
FIGURE4_SITES: tuple[str, ...] = ("as", "ce", "cl", "ed", "il", "in", "ju", "nc", "wh", "wo")


def paper_site_profiles() -> list[SiteProfile]:
    """All 18 profiles, in the paper's (alphabetical) order."""
    return [PAPER_SITES[name] for name in sorted(PAPER_SITES)]


def load_paper_site(name: str, scale: float = 1.0) -> WebsiteGraph:
    """Generate the synthetic replica of paper site ``name``.

    ``scale`` < 1 shrinks the site further (useful in tests); 1.0 is the
    default laptop-scale size used by the benchmark harness.
    """
    if name not in PAPER_SITES:
        raise KeyError(f"unknown paper site: {name!r}; pick one of {sorted(PAPER_SITES)}")
    profile = PAPER_SITES[name]
    if scale != 1.0:  # repro: noqa[COR002] sentinel default, never computed
        profile = profile.scaled(scale)
    return generate_site(profile)
