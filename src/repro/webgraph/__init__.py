"""Synthetic website substrate.

The paper evaluates on 18 live websites totalling 22.2 M pages.  Offline,
we substitute a deterministic synthetic-website generator whose 18 site
profiles mirror the Table 1 statistics (target density, fraction of HTML
pages linking to targets, target depth and size distributions, URL style,
multilinguality) at a reduced scale.  All crawler-visible signals —
hyperlink structure, DOM tag paths, URLs, MIME types, response sizes and
HTTP statuses — are produced for real, so every code path of the crawler
is exercised exactly as it would be on the live web.
"""

from repro.webgraph.mime import (
    BLOCKLISTED_EXTENSIONS,
    BLOCKLISTED_MIME_PREFIXES,
    HTML_MIME,
    TARGET_MIME_TYPES,
    is_blocklisted_extension,
    is_blocklisted_mime,
    is_target_mime,
)
from repro.webgraph.model import Link, Page, PageKind, SiteStatistics, WebsiteGraph
from repro.webgraph.generator import SiteProfile, generate_site
from repro.webgraph.sites import PAPER_SITES, load_paper_site, paper_site_profiles

__all__ = [
    "BLOCKLISTED_EXTENSIONS",
    "BLOCKLISTED_MIME_PREFIXES",
    "HTML_MIME",
    "TARGET_MIME_TYPES",
    "is_blocklisted_extension",
    "is_blocklisted_mime",
    "is_target_mime",
    "Link",
    "Page",
    "PageKind",
    "SiteStatistics",
    "WebsiteGraph",
    "SiteProfile",
    "generate_site",
    "PAPER_SITES",
    "load_paper_site",
    "paper_site_profiles",
]
