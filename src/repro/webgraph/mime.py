"""MIME type registry.

The paper defines *targets* as resources whose MIME type is in a
user-defined list; its Appendix A.2 gives the exact list of 38 types used
in the experiments, reproduced verbatim below.  Multimedia MIME types and
URL extensions are blocklisted during crawling (Appendix B.3) to avoid
downloading large irrelevant content.
"""

from __future__ import annotations

HTML_MIME = "text/html"

#: The 38 target MIME types from Appendix A.2 of the paper.
TARGET_MIME_TYPES: frozenset[str] = frozenset(
    {
        "application/csv",
        "application/json",
        "application/msword",
        "application/octet-stream",
        "application/pdf",
        "application/rdf+xml",
        "application/rss+xml",
        "application/vnd.ms-excel",
        "application/vnd.ms-excel.sheet.macroenabled.12",
        "application/vnd.oasis.opendocument.presentation",
        "application/vnd.oasis.opendocument.spreadsheet",
        "application/vnd.oasis.opendocument.text",
        "application/vnd.openxmlformats-officedocument.presentationml.presentation",
        "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet",
        "application/vnd.openxmlformats-officedocument.wordprocessingml.document",
        "application/vnd.openxmlformats-officedocument.wordprocessingml.template",
        "application/vnd.rar",
        "application/x-7z-compressed",
        "application/x-csv",
        "application/x-gtar",
        "application/x-gzip",
        "application/xml",
        "application/x-pdf",
        "application/x-rar-compressed",
        "application/x-tar",
        "application/x-yaml",
        "application/x-zip-compressed",
        "application/yaml",
        "application/zip",
        "application/zip-compressed",
        "text/comma-separated-values",
        "text/csv",
        "text/json",
        "text/plain",
        "text/x-comma-separated-values",
        "text/x-csv",
        "text/x-yaml",
        "text/yaml",
    }
)

#: MIME prefixes blocklisted during the crawl (multimedia; Sec. 3.4 / B.3).
BLOCKLISTED_MIME_PREFIXES: tuple[str, ...] = ("image/", "audio/", "video/")

#: URL extensions blocklisted before classification (subset of Appendix B.3
#: covering the formats our generator can emit; semantics are identical).
BLOCKLISTED_EXTENSIONS: frozenset[str] = frozenset(
    {
        ".png", ".jpg", ".jpeg", ".gif", ".svg", ".webp", ".bmp", ".ico",
        ".tif", ".tiff", ".avif", ".heic",
        ".mp3", ".wav", ".ogg", ".flac", ".aac", ".m4a", ".opus", ".wma",
        ".mp4", ".avi", ".mov", ".mkv", ".webm", ".mpeg", ".mpg", ".wmv",
        ".m4v", ".3gp", ".flv",
    }
)

#: Map from URL extension to MIME type, used by the URL synthesiser.
EXTENSION_TO_MIME: dict[str, str] = {
    ".html": HTML_MIME,
    ".php": HTML_MIME,
    ".asp": HTML_MIME,
    ".csv": "text/csv",
    ".tsv": "text/comma-separated-values",
    ".json": "application/json",
    ".xml": "application/xml",
    ".pdf": "application/pdf",
    ".xls": "application/vnd.ms-excel",
    ".xlsx": "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet",
    ".ods": "application/vnd.oasis.opendocument.spreadsheet",
    ".doc": "application/msword",
    ".docx": "application/vnd.openxmlformats-officedocument.wordprocessingml.document",
    ".zip": "application/zip",
    ".gz": "application/x-gzip",
    ".tar": "application/x-tar",
    ".7z": "application/x-7z-compressed",
    ".rar": "application/vnd.rar",
    ".yaml": "application/yaml",
    ".txt": "text/plain",
    ".png": "image/png",
    ".jpg": "image/jpeg",
    ".gif": "image/gif",
    ".mp3": "audio/mpeg",
    ".mp4": "video/mp4",
}

#: Target MIME types the generator draws from, with rough real-web weights.
GENERATOR_TARGET_MIMES: tuple[tuple[str, float], ...] = (
    ("application/pdf", 0.38),
    ("text/csv", 0.16),
    ("application/vnd.ms-excel", 0.10),
    ("application/vnd.openxmlformats-officedocument.spreadsheetml.sheet", 0.10),
    ("application/vnd.oasis.opendocument.spreadsheet", 0.05),
    ("application/zip", 0.07),
    ("application/json", 0.05),
    ("application/xml", 0.03),
    ("text/comma-separated-values", 0.03),
    ("application/msword", 0.02),
    ("application/x-gzip", 0.01),
)


def is_target_mime(mime: str | None, targets: frozenset[str] | None = None) -> bool:
    """Return True if ``mime`` identifies a crawl target (Sec. 2.2).

    ``targets`` overrides the default MIME list — the paper's target
    definition is deliberately *user-defined* (e.g. restrict a crawl to
    CSV files only).
    """
    if mime is None:
        return False
    cleaned = mime.split(";")[0].strip().lower()
    return cleaned in (targets if targets is not None else TARGET_MIME_TYPES)


def is_blocklisted_mime(mime: str | None) -> bool:
    """Return True if ``mime`` is multimedia and must not be downloaded."""
    if mime is None:
        return False
    cleaned = mime.split(";")[0].strip().lower()
    return cleaned.startswith(BLOCKLISTED_MIME_PREFIXES)


def is_blocklisted_extension(url: str) -> bool:
    """Return True if the URL path ends with a blocklisted extension."""
    path = url.split("?", 1)[0].split("#", 1)[0].lower()
    dot = path.rfind(".")
    slash = path.rfind("/")
    if dot <= slash:
        return False
    return path[dot:] in BLOCKLISTED_EXTENSIONS
