"""URL resolution and canonicalisation.

Real HTML rarely carries absolute URLs: hrefs are path-absolute
(``/data/file.csv``), relative (``../report``), or decorated with
fragments (``page#section``).  A crawler must resolve every href against
the page URL and canonicalise the result before frontier bookkeeping —
otherwise the same page appears under many URLs and "visit each page
once" breaks.

Canonical form: resolved absolute URL, scheme/host lowercased, default
ports dropped, fragment removed, empty path normalised to ``/``.
"""

from __future__ import annotations

from urllib.parse import urljoin, urlsplit, urlunsplit

_DEFAULT_PORTS = {"http": "80", "https": "443"}


def canonicalize_url(url: str) -> str:
    """Canonicalise an absolute URL (see module docstring)."""
    parts = urlsplit(url)
    scheme = parts.scheme.lower()
    host = (parts.hostname or "").lower()
    try:
        port = parts.port
    except ValueError:
        # Malformed netloc such as "//::" — urlsplit accepts it but
        # .port raises; treat it as having no usable port.
        port = None
    if port is not None and str(port) != _DEFAULT_PORTS.get(scheme):
        host = f"{host}:{port}"
    path = parts.path or "/"
    return urlunsplit((scheme, host, path, parts.query, ""))


def resolve_link(base_url: str, href: str) -> str:
    """Resolve one href against its page URL and canonicalise it."""
    return canonicalize_url(urljoin(base_url, href))
