"""Deterministic synthetic-website generator.

Produces a :class:`~repro.webgraph.model.WebsiteGraph` matching a
:class:`SiteProfile` — the Table 1 statistics of one of the paper's
websites (page count, target density, fraction of HTML pages linking to
targets, target depth/size distributions) plus structural knobs (URL
style, languages, CSS palette, unique-id noise, error/redirect rates).

Construction mirrors how real institutional CMS sites are organised:

* the root links to *section hubs* (depth 1);
* hubs list child pages through ``CONTENT_LIST`` slots; in *data
  sections* many children are *catalog* pages whose ``DOWNLOAD`` slots
  link the actual targets;
* deep sites chain catalogs with ``PAGINATION`` slots (multi-step
  navigation, like the paper's *ju* and *in* sites whose mean target
  depths are 87 and 67);
* navigation menus, footers, sidebars and inline article links create
  the non-tree edges that make BFS/DFS/RANDOM meaningful baselines;
* a controlled amount of error URLs (4xx/5xx), redirects (3xx),
  multimedia and off-site links exercises every branch of Algorithm 4.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.utils.rng import derive_rng
from repro.utils.sampling import (
    bounded_lognormal,
    clipped_normal_int,
    weighted_choice,
    zipf_weights,
)
from repro.webgraph.mime import GENERATOR_TARGET_MIMES
from repro.webgraph.model import Link, Page, PageKind, WebsiteGraph
from repro.webgraph.templates import SlotKind, TagPathBuilder
from repro.webgraph.urls import UrlFactory, section_slugs

_ERROR_STATUSES = (404, 404, 404, 410, 403, 500, 503)

_TARGET_ANCHOR_TEMPLATES = (
    "Download {fmt}",
    "{fmt} file",
    "Dataset ({fmt})",
    "Annual data [{fmt}]",
    "Full table, {fmt}",
    "Raw data {fmt}",
    "Export {fmt}",
)

_FORMAT_WORDS = {
    "application/pdf": "PDF",
    "text/csv": "CSV",
    "application/vnd.ms-excel": "XLS",
    "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet": "XLSX",
    "application/vnd.oasis.opendocument.spreadsheet": "ODS",
    "application/zip": "ZIP",
    "application/json": "JSON",
    "application/xml": "XML",
    "text/comma-separated-values": "TSV",
    "application/msword": "DOC",
    "application/x-gzip": "GZ",
}

_HTML_ANCHOR_WORDS = (
    "Read more", "Details", "Overview", "More information", "See also",
    "Next", "Archive", "Publications", "News item", "Article",
)


@dataclass
class SiteProfile:
    """All parameters needed to generate one synthetic website."""

    name: str
    base_url: str
    n_pages: int
    target_fraction: float
    html_to_target_pct: float
    target_depth_mean: float
    target_depth_std: float
    target_size_mean: float = 1.0e6  # bytes
    target_size_std: float = 4.0e6
    url_style: str = "path"
    languages: tuple[str, ...] = ("en",)
    palette_index: int = 0
    unique_id_noise: float = 0.0
    error_fraction: float = 0.08
    redirect_fraction: float = 0.02
    media_fraction: float = 0.03
    n_sections: int = 8
    data_section_fraction: float = 0.4
    #: probability that a link *into* a catalog page uses the dedicated
    #: dataset-listing widget (the structure-to-content signal SB learns)
    catalog_link_distinctiveness: float = 0.85
    #: length of a robots-disallowed spider-trap chain (0 = no trap);
    #: impolite crawlers waste budget there, polite ones skip it
    trap_pages: int = 0
    #: serve a robots.txt (Disallow /internal/, Crawl-delay, Sitemap)
    with_robots: bool = True
    #: fraction of HTML pages listed in sitemap.xml (plus all hubs)
    sitemap_fraction: float = 0.15
    #: number of deep-web search portals (0 = none); each portal hides
    #: targets behind a GET form that link-following crawlers never see
    deep_web_portals: int = 0
    html_size_mean: int = 24_000
    html_size_std: int = 9_000
    fully_crawled: bool = True
    seed: int = 0

    def scaled(self, factor: float) -> "SiteProfile":
        """Return a copy with the page count scaled by ``factor``.

        Depth statistics are damped with the square root of the factor so
        miniature sites stay crawlable while keeping their relative
        depth ordering.
        """
        import dataclasses

        damp = max(factor, 0.02) ** 0.5
        return dataclasses.replace(
            self,
            n_pages=max(40, int(self.n_pages * factor)),
            target_depth_mean=max(2.0, self.target_depth_mean * damp),
            target_depth_std=max(0.5, self.target_depth_std * damp),
        )


@dataclass
class _Section:
    name: str
    slug: str
    language: str
    is_data: bool
    hub_url: str = ""


@dataclass
class _PlannedPage:
    url: str
    depth: int
    section: _Section
    is_catalog: bool
    uid: int
    noisy: bool
    links: list[Link] = field(default_factory=list)
    targets_linked: int = 0


def generate_site(profile: SiteProfile) -> WebsiteGraph:
    """Generate the full website graph for ``profile`` (deterministic)."""
    builder = _SiteBuilder(profile)
    return builder.build()


class _SiteBuilder:
    """Stateful helper carrying everything needed during generation."""

    def __init__(self, profile: SiteProfile) -> None:
        self.profile = profile
        self.rng = derive_rng(profile.seed, "site", profile.name)
        self.urlf = UrlFactory(
            profile.base_url,
            style=profile.url_style,
            languages=profile.languages,
            seed=profile.seed,
        )
        self.paths = TagPathBuilder(
            palette_index=profile.palette_index,
            unique_id_noise=profile.unique_id_noise,
        )
        self.graph = WebsiteGraph(self.urlf.root(), name=profile.name)
        self._uid = 0
        #: planned depth of the catalog hosting each target (shortcut guard)
        self._target_host_depth: dict[str, int] = {}

    # -- small helpers --------------------------------------------------

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    def _target_anchor(self, mime: str) -> str:
        fmt = _FORMAT_WORDS.get(mime, "FILE")
        template = self.rng.choice(_TARGET_ANCHOR_TEMPLATES)
        return template.format(fmt=fmt)

    def _html_anchor(self) -> str:
        return self.rng.choice(_HTML_ANCHOR_WORDS)

    # -- main -------------------------------------------------------------

    def build(self) -> WebsiteGraph:
        profile = self.profile
        n_available = profile.n_pages
        n_targets = max(1, round(n_available * profile.target_fraction))
        n_html = max(profile.n_sections + 2, n_available - n_targets)
        n_catalog = max(1, round(n_html * profile.html_to_target_pct / 100.0))
        n_catalog = min(n_catalog, n_html - profile.n_sections - 1)

        sections = self._make_sections()
        target_depths = self._sample_target_depths(n_targets, n_html)
        catalog_plan = self._plan_catalog_depths(target_depths, n_catalog)
        pages = self._plan_pages(sections, catalog_plan, n_html)
        self._connect_tree(pages)
        catalogs = [p for p in pages if p.is_catalog]
        targets = self._attach_targets(catalogs, target_depths)
        self._add_navigation(pages, sections)
        self._add_cross_links(pages)
        self._add_duplicate_target_links(catalogs, targets)
        self._add_errors(pages, catalogs, n_available)
        self._add_redirects(pages)
        self._add_media(pages)
        self._add_offsite(pages)
        self._materialise(pages)
        self._add_traps(pages)
        self._add_deep_portals(sections)
        self._add_robots_and_sitemap(pages, sections)
        return self.graph

    # -- construction stages ----------------------------------------------

    def _make_sections(self) -> list[_Section]:
        profile = self.profile
        sections: list[_Section] = []
        per_lang: dict[str, list[str]] = {}
        n_data = max(1, math.ceil(profile.n_sections * profile.data_section_fraction))
        for i in range(profile.n_sections):
            language = profile.languages[i % len(profile.languages)]
            if language not in per_lang:
                per_lang[language] = section_slugs(
                    language, profile.n_sections, derive_rng(profile.seed, "slugs", language)
                )
            slug = per_lang[language][i // len(profile.languages) % profile.n_sections]
            sections.append(
                _Section(
                    name=f"{language}-{slug}",
                    slug=slug,
                    language=language,
                    is_data=(i < n_data),
                )
            )
        return sections

    def _sample_target_depths(self, n_targets: int, n_html: int) -> list[int]:
        profile = self.profile
        cap = max(3, min(
            int(profile.target_depth_mean + 3 * profile.target_depth_std),
            n_html // 2,
        ))
        depths = [
            clipped_normal_int(
                self.rng, profile.target_depth_mean, profile.target_depth_std,
                low=2, high=cap,
            )
            for _ in range(n_targets)
        ]
        return depths

    def _plan_catalog_depths(
        self, target_depths: list[int], n_catalog: int
    ) -> dict[int, int]:
        """Number of catalog pages per depth (catalog depth = target depth - 1)."""
        histogram: dict[int, int] = {}
        for depth in target_depths:
            histogram[depth - 1] = histogram.get(depth - 1, 0) + 1
        n_targets = len(target_depths)
        plan: dict[int, int] = {}
        for depth, count in sorted(histogram.items()):
            plan[depth] = max(1, round(n_catalog * count / n_targets))
        # Trim or grow to hit exactly n_catalog.
        total = sum(plan.values())
        depths_sorted = sorted(plan, key=lambda d: -plan[d])
        index = 0
        while total > n_catalog and depths_sorted:
            depth = depths_sorted[index % len(depths_sorted)]
            if plan[depth] > 1:
                plan[depth] -= 1
                total -= 1
            index += 1
            if index > 10 * len(depths_sorted) + 10:
                break
        index = 0
        while total < n_catalog and depths_sorted:
            depth = depths_sorted[index % len(depths_sorted)]
            plan[depth] += 1
            total += 1
            index += 1
        return plan

    def _plan_pages(
        self,
        sections: list[_Section],
        catalog_plan: dict[int, int],
        n_html: int,
    ) -> list[_PlannedPage]:
        """Lay out HTML pages by depth: root, hubs, spine, catalogs, plain."""
        rng = self.rng
        data_sections = [s for s in sections if s.is_data]
        data_weights = zipf_weights(len(data_sections))
        max_depth = max(catalog_plan) if catalog_plan else 2

        pages: list[_PlannedPage] = []

        def plan_page(depth: int, section: _Section, is_catalog: bool) -> _PlannedPage:
            if depth == 0:
                url = self.graph.root_url
            elif depth == 1 and not is_catalog:
                url = self.urlf.section_url(section.language, section.slug)
            else:
                url = self.urlf.html_url(section.language, section.slug)
            page = _PlannedPage(
                url=url,
                depth=depth,
                section=section,
                is_catalog=is_catalog,
                uid=self._next_uid(),
                noisy=self.paths.page_is_noisy(rng),
            )
            pages.append(page)
            return page

        # Root (depth 0) belongs to the first section for template purposes.
        plan_page(0, sections[0], is_catalog=False)
        # Section hubs at depth 1.
        for section in sections:
            hub = plan_page(1, section, is_catalog=False)
            section.hub_url = hub.url

        budget = n_html - 1 - len(sections)  # pages still to plan
        # Catalog pages at their planned depths (data sections, heavy-tailed).
        for depth in sorted(catalog_plan):
            for _ in range(catalog_plan[depth]):
                if budget <= 0:
                    break
                section = weighted_choice(rng, data_sections, data_weights)
                plan_page(max(1, depth), section, is_catalog=True)
                budget -= 1

        # Spine: guarantee at least one HTML page at every depth 1..max_depth.
        occupied = {p.depth for p in pages}
        for depth in range(2, max_depth + 1):
            if depth not in occupied and budget > 0:
                section = weighted_choice(rng, data_sections, data_weights)
                plan_page(depth, section, is_catalog=False)
                budget -= 1

        # Remaining plain pages: mostly shallow, exponential decay over depth.
        if budget > 0:
            depth_cap = min(max_depth, 10) if max_depth > 10 else max(2, max_depth)
            candidate_depths = list(range(2, depth_cap + 1)) or [2]
            weights = [math.exp(-d / 4.0) for d in candidate_depths]
            all_weights = sum(weights)
            weights = [w / all_weights for w in weights]
            for _ in range(budget):
                depth = weighted_choice(rng, candidate_depths, weights)
                section = rng.choice(sections)
                plan_page(depth, section, is_catalog=False)
        return pages

    def _connect_tree(self, pages: list[_PlannedPage]) -> None:
        """Give every page (except the root) a parent edge."""
        rng = self.rng
        by_depth: dict[int, list[_PlannedPage]] = {}
        for page in pages:
            by_depth.setdefault(page.depth, []).append(page)

        for depth in sorted(by_depth):
            if depth == 0:
                continue
            parents_all = by_depth.get(depth - 1, [])
            if not parents_all:
                parents_all = by_depth[0]
            parent_weights_cache: dict[int, list[float]] = {}
            for page in by_depth[depth]:
                pool = parents_all
                if page.is_catalog:
                    # Data-portal pagination: a catalog page chains onto a
                    # catalog one level up when one exists (the multi-step
                    # navigation of the paper's ju/in/wh sites).
                    catalog_parents = [p for p in parents_all if p.is_catalog]
                    if catalog_parents and rng.random() < 0.9:
                        pool = catalog_parents
                if pool is parents_all:
                    same_section = [
                        p for p in parents_all if p.section.name == page.section.name
                    ]
                    pool = same_section if same_section else parents_all
                key = id(pool[0]) if pool else 0
                if key not in parent_weights_cache or len(
                    parent_weights_cache[key]
                ) != len(pool):
                    parent_weights_cache[key] = zipf_weights(len(pool), 0.8)
                parent = weighted_choice(rng, pool, parent_weights_cache[key])
                slot = self._tree_slot(parent, page)
                tag_path = self.paths.path(
                    slot, parent.section.slug, parent.uid, parent.noisy
                )
                parent.links.append(
                    Link(url=page.url, tag_path=tag_path, anchor=self._html_anchor())
                )

    def _tree_slot(self, parent: _PlannedPage, child: _PlannedPage) -> SlotKind:
        if parent.is_catalog and child.is_catalog:
            return SlotKind.PAGINATION
        if child.is_catalog:
            # Catalog pages are usually listed by a dedicated dataset
            # widget (learnable signal); sometimes by a generic list.
            if self.rng.random() < self.profile.catalog_link_distinctiveness:
                return SlotKind.DATASET_LIST
            return SlotKind.CONTENT_LIST
        if parent.section.is_data:
            return SlotKind.CONTENT_LIST
        return SlotKind.CONTENT_LIST if self.rng.random() < 0.7 else SlotKind.ARTICLE

    def _attach_targets(
        self, catalogs: list[_PlannedPage], target_depths: list[int]
    ) -> list[Page]:
        """Create target pages and link each from a catalog at depth-1."""
        rng = self.rng
        profile = self.profile
        catalogs_by_depth: dict[int, list[_PlannedPage]] = {}
        for catalog in catalogs:
            catalogs_by_depth.setdefault(catalog.depth, []).append(catalog)
        all_depths = sorted(catalogs_by_depth)
        weights_by_depth = {
            d: zipf_weights(len(catalogs_by_depth[d]), 1.1) for d in all_depths
        }
        mimes = [m for m, _ in GENERATOR_TARGET_MIMES]
        mime_weights = [w for _, w in GENERATOR_TARGET_MIMES]

        targets: list[Page] = []
        for depth in target_depths:
            wanted = depth - 1
            # Closest depth with a catalog (plan may have been trimmed).
            host_depth = min(all_depths, key=lambda d: abs(d - wanted))
            catalog = weighted_choice(
                rng, catalogs_by_depth[host_depth], weights_by_depth[host_depth]
            )
            mime = weighted_choice(rng, mimes, mime_weights)
            url = self.urlf.target_url(catalog.section.language, catalog.section.slug, mime)
            size = int(
                bounded_lognormal(
                    rng,
                    profile.target_size_mean,
                    profile.target_size_std,
                    low=2_000,
                    high=80 * profile.target_size_mean,
                )
            )
            page = Page(
                url=url,
                kind=PageKind.TARGET,
                mime_type=mime,
                status=200,
                size=size,
                section=catalog.section.name,
            )
            targets.append(page)
            self.graph.add_page(page)
            self._target_host_depth[url] = catalog.depth
            tag_path = self.paths.path(
                SlotKind.DOWNLOAD, catalog.section.slug, catalog.uid, catalog.noisy
            )
            catalog.links.append(
                Link(url=url, tag_path=tag_path, anchor=self._target_anchor(mime))
            )
            catalog.targets_linked += 1
        return targets

    def _add_navigation(
        self, pages: list[_PlannedPage], sections: list[_Section]
    ) -> None:
        """NAV menu (root + section hubs) and footer links on every page."""
        rng = self.rng
        root_url = self.graph.root_url
        footer_targets = [s.hub_url for s in sections[: min(3, len(sections))]]
        for page in pages:
            language = page.section.language
            hub_urls = [
                s.hub_url for s in sections if s.language == language and s.hub_url
            ][:6]
            nav_path = self.paths.path(SlotKind.NAV, "", page.uid, page.noisy)
            for url in [root_url] + hub_urls:
                if url != page.url:
                    page.links.append(Link(url=url, tag_path=nav_path, anchor="Menu"))
            footer_path = self.paths.path(SlotKind.FOOTER, "", page.uid, page.noisy)
            for url in footer_targets:
                if url and url != page.url and rng.random() < 0.8:
                    page.links.append(
                        Link(url=url, tag_path=footer_path, anchor="About")
                    )

    def _add_cross_links(self, pages: list[_PlannedPage]) -> None:
        """Sidebar/article links to random same-section pages (non-tree edges)."""
        rng = self.rng
        by_section: dict[str, list[_PlannedPage]] = {}
        for page in pages:
            by_section.setdefault(page.section.name, []).append(page)
        for page in pages:
            pool = by_section[page.section.name]
            if len(pool) < 2:
                continue
            n_links = min(len(pool) - 1, rng.randint(1, 4))
            sidebar_path = self.paths.path(
                SlotKind.SIDEBAR, page.section.slug, page.uid, page.noisy
            )
            article_path = self.paths.path(
                SlotKind.ARTICLE, page.section.slug, page.uid, page.noisy
            )
            seen = {page.url} | {link.url for link in page.links}
            for _ in range(n_links):
                other = rng.choice(pool)
                if other.url in seen:
                    continue
                if other.depth > page.depth + 1:
                    # Never create a shortcut below the planned depth: deep
                    # portal pages (ju, in) must stay deep (Table 1).
                    continue
                seen.add(other.url)
                path = sidebar_path if rng.random() < 0.6 else article_path
                page.links.append(
                    Link(url=other.url, tag_path=path, anchor=self._html_anchor())
                )

    def _add_duplicate_target_links(
        self, catalogs: list[_PlannedPage], targets: list[Page]
    ) -> None:
        """Re-link ~10% of targets from a second catalog.

        The paper's novelty reward (count only *new* target links) matters
        precisely because targets can be linked from several pages.
        """
        rng = self.rng
        if len(catalogs) < 2 or not targets:
            return
        n_duplicates = max(1, len(targets) // 10)
        for target in rng.sample(targets, min(n_duplicates, len(targets))):
            target_depth = self._target_host_depth.get(target.url, 1) + 1
            eligible = [c for c in catalogs if c.depth >= target_depth - 1]
            if not eligible:
                continue
            catalog = rng.choice(eligible)
            tag_path = self.paths.path(
                SlotKind.DOWNLOAD, catalog.section.slug, catalog.uid, catalog.noisy
            )
            catalog.links.append(
                Link(
                    url=target.url,
                    tag_path=tag_path,
                    anchor=self._target_anchor(target.mime_type or ""),
                )
            )

    def _add_errors(
        self, pages: list[_PlannedPage], catalogs: list[_PlannedPage], n_available: int
    ) -> None:
        """Dead URLs (4xx/5xx) linked from live pages ("Neither" class)."""
        rng = self.rng
        n_errors = int(n_available * self.profile.error_fraction)
        for _ in range(n_errors):
            host = rng.choice(pages)
            url = self.urlf.error_url(host.section.language, host.section.slug)
            status = rng.choice(_ERROR_STATUSES)
            self.graph.add_page(
                Page(url=url, kind=PageKind.ERROR, mime_type=None, status=status,
                     size=512, section=host.section.name)
            )
            if host.is_catalog and rng.random() < 0.3:
                # Stale download link: error URL on a download slot.
                slot = SlotKind.DOWNLOAD
            else:
                slot = SlotKind.ARTICLE
            tag_path = self.paths.path(slot, host.section.slug, host.uid, host.noisy)
            host.links.append(
                Link(url=url, tag_path=tag_path, anchor=self._html_anchor())
            )

    def _add_redirects(self, pages: list[_PlannedPage]) -> None:
        """Alias URLs that 301-redirect to canonical pages."""
        rng = self.rng
        n_redirects = int(len(pages) * self.profile.redirect_fraction)
        for _ in range(n_redirects):
            canonical = rng.choice(pages)
            alias = self.urlf.html_url(
                canonical.section.language, canonical.section.slug
            )
            self.graph.add_page(
                Page(
                    url=alias,
                    kind=PageKind.REDIRECT,
                    mime_type=None,
                    status=301,
                    size=256,
                    redirect_to=canonical.url,
                    section=canonical.section.name,
                )
            )
            hosts = [p for p in pages if p.depth >= canonical.depth - 1]
            host = rng.choice(hosts) if hosts else canonical
            tag_path = self.paths.path(
                SlotKind.ARTICLE, host.section.slug, host.uid, host.noisy
            )
            host.links.append(
                Link(url=alias, tag_path=tag_path, anchor=self._html_anchor())
            )

    def _add_media(self, pages: list[_PlannedPage]) -> None:
        """Multimedia resources (blocklisted) linked from article slots."""
        rng = self.rng
        n_media = int(len(pages) * self.profile.media_fraction)
        for _ in range(n_media):
            host = rng.choice(pages)
            url = self.urlf.media_url(host.section.slug)
            mime = "image/png" if url.endswith((".png", ".jpg", ".gif")) else "video/mp4"
            self.graph.add_page(
                Page(url=url, kind=PageKind.OTHER, mime_type=mime, status=200,
                     size=rng.randint(50_000, 5_000_000), section=host.section.name)
            )
            tag_path = self.paths.path(
                SlotKind.MEDIA, host.section.slug, host.uid, host.noisy
            )
            host.links.append(Link(url=url, tag_path=tag_path, anchor="Image"))

    def _add_offsite(self, pages: list[_PlannedPage]) -> None:
        """A few links leaving the website boundary (must be filtered)."""
        rng = self.rng
        for _ in range(min(8, len(pages))):
            host = rng.choice(pages)
            tag_path = self.paths.path(
                SlotKind.FOOTER, host.section.slug, host.uid, host.noisy
            )
            host.links.append(
                Link(url=self.urlf.offsite_url(), tag_path=tag_path, anchor="Partner")
            )

    def _materialise(self, pages: list[_PlannedPage]) -> None:
        """Turn planned pages into graph nodes with sampled HTML sizes."""
        profile = self.profile
        for planned in pages:
            size = clipped_normal_int(
                self.rng, profile.html_size_mean, profile.html_size_std,
                low=2_000, high=250_000,
            )
            self.graph.add_page(
                Page(
                    url=planned.url,
                    kind=PageKind.HTML,
                    mime_type="text/html",
                    status=200,
                    size=size,
                    links=planned.links,
                    section=planned.section.name,
                )
            )

    def _add_traps(self, pages: list[_PlannedPage]) -> None:
        """A robots-disallowed spider trap: an /internal/ search chain.

        Each trap page links only to the next one, mimicking unbounded
        calendar/search spaces.  The chain is finite here (the graph
        must stay finite) but long enough to hurt impolite crawlers.
        """
        profile = self.profile
        if profile.trap_pages <= 0:
            return
        rng = self.rng
        base = profile.base_url.rstrip("/")
        trap_urls = [
            f"{base}/internal/search?start={i}" for i in range(profile.trap_pages)
        ]
        for i, url in enumerate(trap_urls):
            links = []
            if i + 1 < len(trap_urls):
                links.append(
                    Link(
                        url=trap_urls[i + 1],
                        tag_path="html body div#main div.search-results a.next-page",
                        anchor="Next results",
                    )
                )
            self.graph.add_page(
                Page(url=url, kind=PageKind.HTML, mime_type="text/html",
                     status=200, size=12_000, links=links, section="internal")
            )
        # Entry links to the trap head from a few live pages.
        for _ in range(min(3, len(pages))):
            host = rng.choice(pages)
            tag_path = self.paths.path(
                SlotKind.ARTICLE, host.section.slug, host.uid, host.noisy
            )
            self.graph.page(host.url).links.append(
                Link(url=trap_urls[0], tag_path=tag_path, anchor="Search")
            )

    def _add_deep_portals(self, sections: list[_Section]) -> None:
        """Deep-web search portals (extension): targets behind GET forms.

        Each portal page carries a form over finite filter dimensions;
        every value combination resolves to a result page listing a few
        *deep* targets reachable only through submission — the content
        that motivates the paper's deep-web future work.
        """
        from repro.webgraph.model import Form

        profile = self.profile
        if profile.deep_web_portals <= 0:
            return
        rng = self.rng
        data_sections = [s for s in sections if s.is_data and s.hub_url]
        if not data_sections:
            return
        base = profile.base_url.rstrip("/")
        mimes = [m for m, _ in GENERATOR_TARGET_MIMES]
        mime_weights = [w for _, w in GENERATOR_TARGET_MIMES]
        for portal_index in range(profile.deep_web_portals):
            section = data_sections[portal_index % len(data_sections)]
            portal_url = f"{base}/{section.slug}/data-explorer-{portal_index}"
            action = f"{portal_url}/results"
            fields = (
                ("year", tuple(str(2019 + i) for i in range(rng.randint(2, 4)))),
                ("theme", tuple(rng.sample(
                    ["economy", "health", "education", "trade"], rng.randint(2, 3)
                ))),
            )
            form = Form(action=action, fields=fields)
            result_urls = tuple(form.submission_urls())
            # Result pages, each listing fresh deep targets.
            uid = self._next_uid()
            for result_url in result_urls:
                n_targets = rng.randint(1, 3)
                links = []
                for _ in range(n_targets):
                    mime = weighted_choice(rng, mimes, mime_weights)
                    target_url = self.urlf.target_url(
                        section.language, section.slug, mime
                    )
                    size = int(bounded_lognormal(
                        rng, profile.target_size_mean, profile.target_size_std,
                        low=2_000,
                    ))
                    self.graph.add_page(Page(
                        url=target_url, kind=PageKind.TARGET, mime_type=mime,
                        status=200, size=size, section=section.name,
                    ))
                    links.append(Link(
                        url=target_url,
                        tag_path=self.paths.path(
                            SlotKind.DOWNLOAD, section.slug, uid, False
                        ),
                        anchor=self._target_anchor(mime),
                    ))
                self.graph.add_page(Page(
                    url=result_url, kind=PageKind.HTML, mime_type="text/html",
                    status=200, size=14_000, links=links, section=section.name,
                ))
            # The portal page itself, linked from its section hub.
            self.graph.add_page(Page(
                url=portal_url, kind=PageKind.HTML, mime_type="text/html",
                status=200, size=16_000,
                links=[],
                forms=[Form(action=action, fields=fields,
                            result_urls=result_urls)],
                section=section.name,
            ))
            hub = self.graph.page(section.hub_url)
            hub.links.append(Link(
                url=portal_url,
                tag_path=self.paths.path(
                    SlotKind.CONTENT_LIST, section.slug, uid, False
                ),
                anchor="Data explorer",
            ))

    def _add_robots_and_sitemap(
        self, pages: list[_PlannedPage], sections: list[_Section]
    ) -> None:
        profile = self.profile
        if not profile.with_robots:
            return
        base = profile.base_url.rstrip("/")
        self.graph.robots_txt = (
            "User-agent: *\n"
            "Disallow: /internal/\n"
            "Crawl-delay: 1\n"
            f"Sitemap: {base}/sitemap.xml\n"
        )
        hubs = [s.hub_url for s in sections if s.hub_url]
        rng = derive_rng(profile.seed, "sitemap", profile.name)
        extras = [
            p.url for p in pages
            if p.depth >= 2 and rng.random() < profile.sitemap_fraction
        ]
        self.graph.sitemap_urls = [self.graph.root_url] + hubs + extras
