"""Tag-path templates for generated pages.

The central hypothesis of the paper is that *links found on similar DOM
tag paths lead to similar content* — e.g. every link inside
``ul.datasets li a`` leads to a dataset page, on any page of the site.
The generator realises that hypothesis the way real CMSes do: each page
is an instance of a site-wide layout with typed *link slots* (navigation
menu, content listing, inline article links, download list, pagination,
footer), and the tag path of a link is fully determined by the slot it
occupies plus the section-specific CSS decorations of the page.

A profile-controlled ``unique_id_noise`` makes a fraction of pages carry
a unique ``#id`` on their main container, entering every tag path of the
page.  This reproduces the failure mode the paper reports for θ = 0.95
("websites adding unique IDs in tags" caused one action per page and an
OOM on *ed*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class SlotKind(Enum):
    """Typed link slots of a page layout."""

    NAV = "nav"
    BREADCRUMB = "breadcrumb"
    CONTENT_LIST = "content_list"
    DATASET_LIST = "dataset_list"
    ARTICLE = "article"
    DOWNLOAD = "download"
    PAGINATION = "pagination"
    FOOTER = "footer"
    SIDEBAR = "sidebar"
    MEDIA = "media"


#: Alternative CSS palettes so the 18 sites do not share literal class
#: names (the crawler must learn per-site, not rely on cross-site priors).
_THEME_PALETTES: tuple[dict[str, str], ...] = (
    {
        "wrapper": "div#main.container",
        "nav": "nav.main-nav",
        "menu": "ul.menu",
        "list": "div.content ul.items",
        "datasets": "div.content ul.datasets",
        "article": "div.article p",
        "downloads": "section.downloads ul.files",
        "download_a": "a.download",
        "pagination": "nav.pagination ul",
        "pagination_a": "a.next",
        "footer": "footer#footer div.links ul",
        "sidebar": "aside.sidebar ul.related",
        "breadcrumb": "ol.breadcrumb li",
    },
    {
        "wrapper": "div#page.wrapper",
        "nav": "header.site-header nav",
        "menu": "ul#primary-menu",
        "list": "main.site-main div.entry-list",
        "datasets": "main.site-main div.resource-list",
        "article": "main.site-main div.entry-content p",
        "downloads": "div.attachments ul.attachment-list",
        "download_a": "a.attachment-link",
        "pagination": "div.nav-links",
        "pagination_a": "a.page-numbers",
        "footer": "footer.site-footer div.widget ul",
        "sidebar": "div.secondary ul.menu-links",
        "breadcrumb": "div.breadcrumbs span",
    },
    {
        "wrapper": "div#contenu.fr-container",
        "nav": "nav.fr-nav",
        "menu": "ul.fr-nav__list",
        "list": "div.fr-grid-row div.fr-col ul.fr-list",
        "datasets": "div.fr-grid-row section.fr-download-group ul",
        "article": "div.fr-grid-row div.fr-text p",
        "downloads": "section.fr-downloads-group ul",
        "download_a": "a.fr-link--download",
        "pagination": "nav.fr-pagination ul",
        "pagination_a": "a.fr-pagination__link",
        "footer": "footer.fr-footer div.fr-footer__bottom ul",
        "sidebar": "div.fr-sidemenu ul",
        "breadcrumb": "nav.fr-breadcrumb ol",
    },
    {
        "wrapper": "div#layout.l-page",
        "nav": "div.l-header nav.g-nav",
        "menu": "ul.g-nav__items",
        "list": "div.l-body div.view-content ul",
        "datasets": "div.l-body div.view-datasets ul",
        "article": "div.l-body div.field--body p",
        "downloads": "div.field--downloads div.file-list",
        "download_a": "a.file-link",
        "pagination": "ul.pager__items",
        "pagination_a": "a.pager__link",
        "footer": "div.l-footer div.region-footer ul",
        "sidebar": "div.l-sidebar div.block ul",
        "breadcrumb": "div.breadcrumb ol",
    },
)


def _expand(fragment: str) -> list[str]:
    """Split a palette fragment like ``"div.content ul.items"`` into segments."""
    return fragment.split(" ")


@dataclass
class TagPathBuilder:
    """Builds canonical tag-path strings for a site's layout.

    Parameters
    ----------
    palette_index:
        Which CSS palette the site uses.
    unique_id_noise:
        Probability that a page's wrapper carries a unique ``#id``
        suffix, making all its tag paths page-unique.
    section_in_path:
        Whether the section name decorates list containers (this is the
        learnable signal: listing links of data-rich sections get their
        own tag-path cluster).
    """

    palette_index: int = 0
    unique_id_noise: float = 0.0
    section_in_path: bool = True

    def __post_init__(self) -> None:
        self._palette = _THEME_PALETTES[self.palette_index % len(_THEME_PALETTES)]

    def page_is_noisy(self, rng: random.Random) -> bool:
        """Decide (once per page) whether its wrapper has a unique id."""
        return self.unique_id_noise > 0 and rng.random() < self.unique_id_noise

    def _prefix(self, page_uid: int, noisy: bool) -> list[str]:
        wrapper = self._palette["wrapper"]
        if noisy:
            # Page-unique id on the wrapper: defeats exact path grouping.
            from repro.html.dom import parse_segment, render_segment

            tag, _, classes = parse_segment(wrapper)
            wrapper = render_segment(tag, f"p{page_uid}", classes)
        return ["html", "body", *_expand(wrapper)]

    def _decorate(self, fragment: str, section: str) -> list[str]:
        segments = _expand(fragment)
        if self.section_in_path and section:
            # CMS themes commonly put the section/term class on the listing
            # container, e.g. ``ul.items.sec-statistics``.
            segments = segments[:-1] + [segments[-1] + f".sec-{section}"]
        return segments

    def path(
        self,
        kind: SlotKind,
        section: str,
        page_uid: int,
        noisy: bool = False,
    ) -> str:
        """Return the canonical tag path for a link slot on a page.

        ``noisy`` must be decided once per page (via :meth:`page_is_noisy`)
        so all slots of a page share the same wrapper id.
        """
        prefix = self._prefix(page_uid, noisy)
        palette = self._palette
        if kind is SlotKind.NAV:
            middle = _expand(palette["nav"]) + _expand(palette["menu"]) + ["li"]
            tail = ["a"]
            prefix = ["html", "body"]  # navigation sits outside the wrapper
        elif kind is SlotKind.BREADCRUMB:
            middle = _expand(palette["breadcrumb"])
            tail = ["a"]
        elif kind is SlotKind.CONTENT_LIST:
            middle = self._decorate(palette["list"], section) + ["li"]
            tail = ["a"]
        elif kind is SlotKind.DATASET_LIST:
            # The dedicated dataset-listing widget of data sections: the
            # inbound tag path of catalog pages, and the main signal the
            # SB agent can learn (cf. the paper's div.view-datasets,
            # collections-sief, … examples in Sec. 4.7).
            middle = self._decorate(palette["datasets"], section) + ["li"]
            tail = ["a"]
        elif kind is SlotKind.ARTICLE:
            middle = _expand(palette["article"])
            tail = ["a"]
        elif kind is SlotKind.DOWNLOAD:
            middle = self._decorate(palette["downloads"], section) + ["li"]
            tail = _expand(palette["download_a"])
        elif kind is SlotKind.PAGINATION:
            middle = _expand(palette["pagination"]) + ["li"]
            tail = _expand(palette["pagination_a"])
        elif kind is SlotKind.FOOTER:
            middle = _expand(palette["footer"]) + ["li"]
            tail = ["a"]
        elif kind is SlotKind.SIDEBAR:
            middle = self._decorate(palette["sidebar"], section) + ["li"]
            tail = ["a"]
        elif kind is SlotKind.MEDIA:
            middle = _expand(palette["article"])
            tail = ["a.media"]
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unhandled slot kind: {kind}")
        return " ".join(prefix + middle + tail)
