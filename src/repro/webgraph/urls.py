"""URL synthesis for generated websites.

URL *shape* matters to the reproduced system in two ways: the online URL
classifier (Sec. 3.3) learns from character 2-grams of URLs, and the
paper stresses that extensionless URLs (e.g. ``/node/9961`` on French
government sites or ILO publication pages) defeat extension-based
heuristics.  The synthesiser therefore supports several URL styles and
more than 20 language vocabularies are approximated with per-language
slug word lists.
"""

from __future__ import annotations

import random

# Per-language slug vocabularies.  Small but distinct: what matters is that
# URLs of different sites and sections look different at the character
# 2-gram level, like on the real multilingual sites of Table 1.
_SLUG_WORDS: dict[str, list[str]] = {
    "en": [
        "report", "statistics", "data", "survey", "publication", "annual",
        "education", "health", "economy", "labour", "population", "trade",
        "poverty", "employment", "indicators", "figures", "analysis",
        "census", "budget", "regional", "national", "overview", "results",
        "methodology", "release", "archive", "bulletin", "summary",
    ],
    "fr": [
        "rapport", "statistiques", "donnees", "enquete", "publication",
        "annuel", "education", "sante", "economie", "travail", "population",
        "commerce", "pauvrete", "emploi", "indicateurs", "chiffres",
        "analyse", "recensement", "budget", "regional", "national",
        "synthese", "resultats", "methodologie", "parution", "archives",
        "bulletin", "ministere", "justice", "interieur",
    ],
    "ja": [
        "toukei", "chousa", "houkoku", "nenji", "kyouiku", "kenkou",
        "keizai", "roudou", "jinkou", "boueki", "koyou", "shihyou",
        "bunseki", "kokusei", "yosan", "chiiki", "zenkoku", "kekka",
        "soumu", "gyousei", "shiryou", "happyou",
    ],
    "ar": [
        "ihsaat", "taqrir", "bayanat", "mash", "nashra", "sanawi",
        "taalim", "siha", "iqtisad", "amal", "sukkan", "tijara",
        "muasherat", "tahlil", "mizaniya", "natayij",
    ],
    "es": [
        "informe", "estadisticas", "datos", "encuesta", "publicacion",
        "anual", "educacion", "salud", "economia", "trabajo", "poblacion",
        "comercio", "pobreza", "empleo", "indicadores", "cifras",
        "analisis", "censo", "presupuesto", "resultados",
    ],
}

_SECTION_WORDS: dict[str, list[str]] = {
    "en": [
        "topics", "publications", "data", "statistics", "about", "news",
        "resources", "programs", "surveys", "library", "media", "services",
    ],
    "fr": [
        "themes", "publications", "donnees", "statistiques", "actualites",
        "ressources", "programmes", "enquetes", "documentation", "presse",
        "services", "ministere",
    ],
    "ja": [
        "menu", "toukei", "seisaku", "news", "shiryou", "soshiki",
        "kouhou", "chousa",
    ],
    "ar": ["mawadi", "nasharat", "bayanat", "ihsaat", "akhbar", "mawarid"],
    "es": ["temas", "publicaciones", "datos", "estadisticas", "noticias",
           "recursos", "programas", "encuestas"],
}

#: Extensions used for target URLs when the style exposes extensions.
_TARGET_EXTENSIONS: dict[str, str] = {
    "application/pdf": ".pdf",
    "text/csv": ".csv",
    "application/vnd.ms-excel": ".xls",
    "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet": ".xlsx",
    "application/vnd.oasis.opendocument.spreadsheet": ".ods",
    "application/zip": ".zip",
    "application/json": ".json",
    "application/xml": ".xml",
    "text/comma-separated-values": ".tsv",
    "application/msword": ".doc",
    "application/x-gzip": ".gz",
}


class UrlFactory:
    """Generates unique in-site URLs in a configurable style.

    Styles
    ------
    ``"path"``
        Clean hierarchical paths without extensions
        (``/statistics/annual-report-2024``).
    ``"extension"``
        Hierarchical paths where HTML pages end in ``.html`` and targets
        carry their real extension.
    ``"node"``
        CMS-style opaque identifiers (``/node/48213``); targets are
        extensionless too — the hard case motivating the URL classifier.
    ``"query"``
        Query-string routing (``/index.php?id=1234``).
    """

    def __init__(
        self,
        base_url: str,
        style: str = "path",
        languages: tuple[str, ...] = ("en",),
        seed: int = 0,
    ) -> None:
        if style not in ("path", "extension", "node", "query"):
            raise ValueError(f"unknown URL style: {style}")
        self.base_url = base_url.rstrip("/")
        self.style = style
        self.languages = languages
        self._rng = random.Random(seed)
        self._used: set[str] = set()
        self._counter = 1000

    # -- helpers --------------------------------------------------------

    def _slug(self, language: str, n_words: int = 2) -> str:
        words = _SLUG_WORDS.get(language, _SLUG_WORDS["en"])
        return "-".join(self._rng.choice(words) for _ in range(n_words))

    def _lang_prefix(self, language: str) -> str:
        if len(self.languages) <= 1:
            return ""
        return f"/{language}"

    def _unique(self, candidate: str) -> str:
        url = candidate
        while url in self._used:
            self._counter += 1
            url = f"{candidate}-{self._counter}"
        self._used.add(url)
        return url

    def _next_id(self) -> int:
        self._counter += self._rng.randint(1, 97)
        return self._counter

    # -- public API -------------------------------------------------------

    def root(self) -> str:
        url = f"{self.base_url}/"
        self._used.add(url)
        return url

    def pick_language(self) -> str:
        return self._rng.choice(list(self.languages))

    def section_url(self, language: str, section_slug: str) -> str:
        prefix = self._lang_prefix(language)
        if self.style == "query":
            return self._unique(f"{self.base_url}/index.php?section={section_slug}")
        if self.style == "node":
            return self._unique(f"{self.base_url}{prefix}/taxonomy/term/{self._next_id()}")
        suffix = ".html" if self.style == "extension" else ""
        return self._unique(f"{self.base_url}{prefix}/{section_slug}{suffix}")

    def html_url(self, language: str, section_slug: str) -> str:
        prefix = self._lang_prefix(language)
        if self.style == "query":
            return self._unique(f"{self.base_url}/index.php?id={self._next_id()}")
        if self.style == "node":
            return self._unique(f"{self.base_url}{prefix}/node/{self._next_id()}")
        slug = self._slug(language)
        suffix = ".html" if self.style == "extension" else ""
        return self._unique(f"{self.base_url}{prefix}/{section_slug}/{slug}{suffix}")

    def target_url(self, language: str, section_slug: str, mime_type: str) -> str:
        prefix = self._lang_prefix(language)
        if self.style == "node":
            # Extensionless downloads, like ILO publication pages.
            return self._unique(
                f"{self.base_url}{prefix}/system/files/download/{self._next_id()}"
            )
        if self.style == "query":
            return self._unique(
                f"{self.base_url}/download.php?file={self._next_id()}"
            )
        ext = _TARGET_EXTENSIONS.get(mime_type, ".bin")
        slug = self._slug(language)
        return self._unique(
            f"{self.base_url}{prefix}/{section_slug}/files/{slug}{ext}"
        )

    def error_url(self, language: str, section_slug: str) -> str:
        """A URL resembling valid ones but resolving to 4xx/5xx.

        The paper observes that error URLs are "often very similar" to
        accessible ones — which is why the classifier cannot separate
        them and folds "Neither" into the two live classes.
        """
        prefix = self._lang_prefix(language)
        if self.style == "query":
            return self._unique(f"{self.base_url}/index.php?id={self._next_id()}x")
        if self.style == "node":
            return self._unique(f"{self.base_url}{prefix}/node/{self._next_id()}")
        slug = self._slug(language)
        suffix = ".html" if self.style == "extension" else ""
        return self._unique(f"{self.base_url}{prefix}/{section_slug}/{slug}{suffix}")

    def media_url(self, section_slug: str) -> str:
        """A multimedia URL (blocklisted extension)."""
        ext = self._rng.choice([".png", ".jpg", ".mp4", ".gif", ".mp3"])
        return self._unique(
            f"{self.base_url}/media/{section_slug}/{self._next_id()}{ext}"
        )

    def offsite_url(self) -> str:
        """A URL outside the website boundary (must be filtered out)."""
        host = self._rng.choice(
            ["https://example.org", "https://partner-portal.net", "https://other.gov"]
        )
        return f"{host}/page/{self._next_id()}"


def section_slugs(language: str, count: int, rng: random.Random) -> list[str]:
    """Return ``count`` distinct section slugs for ``language``."""
    words = list(_SECTION_WORDS.get(language, _SECTION_WORDS["en"]))
    rng.shuffle(words)
    slugs = words[:count]
    index = 2
    while len(slugs) < count:
        slugs.append(f"{words[len(slugs) % len(words)]}-{index}")
        index += 1
    return slugs
