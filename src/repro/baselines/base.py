"""Shared machinery for exhaustive baseline crawlers.

All simple baselines follow the same skeleton: pop a URL from some
frontier discipline, GET it, follow redirects, extract in-site links
from HTML, enqueue unseen ones, repeat until the frontier is empty or
the budget runs out.  Only the frontier discipline differs.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.core.base import Crawler, CrawlResult
from repro.html.parse import ParsedPage
from repro.http.environment import CrawlEnvironment
from repro.http.messages import Response
from repro.http.robots import RobotsPolicy, fetch_robots_policy
from repro.webgraph.mime import is_blocklisted_extension

_MAX_CHAIN_DEPTH = 25


class FrontierCrawler(Crawler):
    """Template-method base class for frontier-discipline crawlers."""

    #: polite crawlers fetch and honour robots.txt (one extra request)
    respect_robots: bool = True

    #: times an abandoned (transient, retries exhausted) URL is pushed
    #: back onto the frontier before it is dead-lettered
    max_requeues: int = 2

    # -- frontier discipline, defined by subclasses -------------------

    @abstractmethod
    def _frontier_init(self) -> None: ...

    @abstractmethod
    def _frontier_push(self, url: str, context: dict) -> None: ...

    @abstractmethod
    def _frontier_pop(self) -> str: ...

    @abstractmethod
    def _frontier_empty(self) -> bool: ...

    def _on_page(self, url: str, response: Response, parsed: ParsedPage | None,
                 was_target: bool) -> None:
        """Hook called after each fetched page (for learning baselines)."""

    # -- checkpointing hooks (repro.checkpoint) ------------------------

    def _frontier_state(self) -> dict | None:
        """Frontier discipline's snapshot, or ``None`` when the
        discipline does not support checkpointing (the site then
        restarts from scratch on resume)."""
        return None

    def _frontier_restore(self, state: dict) -> None:
        raise NotImplementedError(
            f"{self.name} does not support checkpoint resume"
        )

    def _checkpoint_payload(
        self, env: CrawlEnvironment, client, seen: set, visited: set,
        targets: set,
    ) -> dict | None:
        frontier = self._frontier_state()
        if frontier is None:
            return None
        return {
            "kind": "baseline-crawl",
            "crawler": self.name,
            "site": env.graph.name,
            "components": {
                "frontier": frontier,
                "client": client.snapshot_state(),
                "robots": self._robots.snapshot_state(),
                "crawl": {
                    "depths": dict(self._depths),
                    "dead_letters": list(self._dead_letters),
                    "requeues": dict(self._requeues),
                    "seen": sorted(seen),
                    "visited": sorted(visited),
                    "targets": sorted(targets),
                },
            },
        }

    def _restore_crawl_state(
        self, env: CrawlEnvironment, client, payload: dict,
        seen: set, visited: set, targets: set,
    ) -> None:
        from repro.checkpoint.store import CheckpointError

        if payload.get("kind") != "baseline-crawl":
            raise CheckpointError(
                f"checkpoint kind {payload.get('kind')!r} is not a "
                "baseline-crawl snapshot"
            )
        if payload.get("crawler") != self.name or (
            payload.get("site") != env.graph.name
        ):
            raise CheckpointError(
                f"checkpoint is for {payload.get('crawler')!r} on "
                f"{payload.get('site')!r}, not {self.name!r} on "
                f"{env.graph.name!r}"
            )
        parts = payload["components"]
        self._frontier_restore(parts["frontier"])
        client.restore_state(parts["client"])
        self._robots.restore_state(parts["robots"])
        crawl = parts["crawl"]
        self._depths = dict(crawl["depths"])
        self._dead_letters = list(crawl["dead_letters"])
        self._requeues = dict(crawl["requeues"])
        seen.clear()
        seen.update(crawl["seen"])
        visited.clear()
        visited.update(crawl["visited"])
        targets.clear()
        targets.update(crawl["targets"])

    # -- the crawl loop ------------------------------------------------

    def crawl(
        self,
        env: CrawlEnvironment,
        budget: float | None = None,
        cost_model: str = "requests",
        checkpoint=None,
    ) -> CrawlResult:
        client = env.new_client(self.name)
        self._frontier_init()
        self._depths: dict[str, int] = {env.root_url: 0}
        self._dead_letters: list[str] = []
        self._requeues: dict[str, int] = {}
        seen: set[str] = {env.root_url}
        visited: set[str] = set()
        targets: set[str] = set()
        if checkpoint is not None and checkpoint.resume_payload is not None:
            # Snapshot was taken at the top of the loop, after robots
            # fetch and root seeding: restore instead of repeating them.
            self._robots = RobotsPolicy()
            self._restore_crawl_state(
                env, client, checkpoint.resume_payload, seen, visited, targets
            )
        else:
            if self.respect_robots:
                self._robots = fetch_robots_policy(client, env.root_url)
            else:
                self._robots = RobotsPolicy()
            self._frontier_push(
                env.root_url, {"depth": 0, "anchor": "", "tag_path": ""}
            )

        while not self._frontier_empty():
            if checkpoint is not None:
                checkpoint.tick(
                    lambda: self._checkpoint_payload(
                        env, client, seen, visited, targets
                    )
                )
            if self.budget_exhausted(client, budget, cost_model):
                break
            url = self._frontier_pop()
            self._fetch(env, client, url, seen, visited, targets, depth=0)

        return CrawlResult(
            crawler=self.name,
            site=env.graph.name,
            trace=client.trace,
            visited=visited,
            targets=targets,
            dead_letters=self._dead_letters,
            info={"ledger": client.ledger.snapshot()},
        )

    def _fetch(
        self,
        env: CrawlEnvironment,
        client,
        url: str,
        seen: set[str],
        visited: set[str],
        targets: set[str],
        depth: int,
    ) -> None:
        if depth > _MAX_CHAIN_DEPTH or url in visited:
            return
        response = client.get(url)
        if response.abandoned:
            # Transient failure with retries exhausted: give the URL a
            # bounded number of fresh chances on the frontier.
            count = self._requeues.get(url, 0)
            if count < self.max_requeues:
                self._requeues[url] = count + 1
                self._frontier_push(
                    url,
                    {"depth": self._url_depth(url), "anchor": "", "tag_path": ""},
                )
            else:
                self._dead_letters.append(url)
                visited.add(url)
            return
        visited.add(url)
        if response.interrupted or response.is_error:
            if response.is_permanent_error:
                self._dead_letters.append(url)
            self._on_page(url, response, None, was_target=False)
            return
        if response.is_redirect:
            location = response.redirect_to
            if location and env.in_site(location) and location not in visited:
                seen.add(location)
                self._fetch(env, client, location, seen, visited, targets, depth + 1)
            return
        mime = response.mime_root() or ""
        if env.is_target_mime(mime):
            targets.add(url)
            self._on_page(url, response, None, was_target=True)
            return
        if "html" not in mime:
            return
        parsed = env.parse(response)
        self._on_page(url, response, parsed, was_target=False)
        source_depth = self._url_depth(url)
        for link in parsed.links:
            if link.url in seen:
                continue
            if not env.in_site(link.url) or is_blocklisted_extension(link.url):
                continue
            if not self._robots.allowed(link.url):
                continue
            seen.add(link.url)
            self._depths[link.url] = source_depth + 1
            self._frontier_push(
                link.url,
                {
                    "depth": source_depth + 1,
                    "anchor": link.anchor,
                    "tag_path": link.tag_path,
                    "source_text": parsed.text,
                },
            )

    # -- depth bookkeeping (FOCUSED uses approximate depth features) -------

    def _url_depth(self, url: str) -> int:
        return getattr(self, "_depths", {}).get(url, 0)
