"""TP-OFF: the offline-trained, tag-path-based crawler (Sec. 4.3).

Adaptation of ACEBot [Faheem & Senellart 2015] to target retrieval,
reproduced as the paper describes it:

1. *Bootstrap phase*: crawl the first ``bootstrap_pages`` (3 000 in the
   paper) breadth-first, grouping the tag paths of followed links with
   the same clustering as SB (Sec. 3.1).  Each fetched page's *benefit*
   — the true number of targets behind its links, given by an oracle,
   the paper's deliberate unfair advantage — is credited to the group
   of the link that led to the page.
2. *Exploitation phase*: the frontier becomes a priority queue over tag
   path groups ordered by average benefit; links whose group was never
   seen during bootstrap get a fixed benefit of 0.

Being trained *offline* on an early fragment of the site, TP-OFF is the
paper's ablation of SB-CLASSIFIER's online learning.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.core.actions import ActionSpace
from repro.core.base import Crawler, CrawlResult
from repro.core.tagpath import TagPathVectorizer
from repro.http.environment import CrawlEnvironment
from repro.webgraph.mime import is_blocklisted_extension
from repro.webgraph.model import PageKind

_MAX_CHAIN_DEPTH = 25


class TPOffCrawler(Crawler):
    """Offline tag-path crawler with oracle benefits in its first phase."""

    name = "TP-OFF"

    def __init__(
        self,
        bootstrap_pages: int = 3000,
        theta: float = 0.75,
        ngram_n: int = 2,
        seed: int = 0,
    ) -> None:
        self.bootstrap_pages = bootstrap_pages
        self.theta = theta
        self.ngram_n = ngram_n
        self.seed = seed

    # -- oracle benefit (paper: provided "as if given by an oracle") ------

    @staticmethod
    def _page_benefit(env: CrawlEnvironment, url: str, target_urls: set[str]) -> int:
        page = env.graph.get(url)
        if page is None or page.kind is not PageKind.HTML:
            return 0
        return sum(1 for link in page.links if link.url in target_urls)

    # -- crawl ------------------------------------------------------------

    def crawl(
        self,
        env: CrawlEnvironment,
        budget: float | None = None,
        cost_model: str = "requests",
    ) -> CrawlResult:
        from repro.http.robots import fetch_robots_policy

        client = env.new_client(self.name)
        robots = fetch_robots_policy(client, env.root_url)
        vectorizer = TagPathVectorizer(n=self.ngram_n)
        actions = ActionSpace(vectorizer, theta=self.theta, seed=self.seed)
        target_urls = env.target_urls()  # oracle access, bootstrap phase only

        seen: set[str] = {env.root_url}
        visited: set[str] = set()
        targets: set[str] = set()
        # Bootstrap frontier: FIFO of (url, group of the inbound link).
        queue: deque[tuple[str, int | None]] = deque([(env.root_url, None)])
        # Benefit accumulators per tag-path group.
        benefit_sum: dict[int, float] = {}
        benefit_count: dict[int, int] = {}
        # Exploitation frontier: heap keyed by -avg benefit of the group.
        heap: list[tuple[float, int, str]] = []
        counter = 0
        fetched_html = 0

        def group_priority(group: int | None) -> float:
            if group is None or group not in benefit_count:
                return 0.0  # unseen groups: fixed benefit 0
            return benefit_sum[group] / benefit_count[group]

        def fetch(url: str, group: int | None, depth: int = 0) -> None:
            nonlocal fetched_html, counter
            if depth > _MAX_CHAIN_DEPTH or url in visited:
                return
            if self.budget_exhausted(client, budget, cost_model):
                return
            response = client.get(url)
            visited.add(url)
            if response.interrupted or response.is_error:
                return
            if response.is_redirect:
                location = response.redirect_to
                if location and env.in_site(location) and location not in visited:
                    seen.add(location)
                    fetch(location, group, depth + 1)
                return
            mime = response.mime_root() or ""
            if env.is_target_mime(mime):
                targets.add(url)
                return
            if "html" not in mime:
                return
            fetched_html += 1
            in_bootstrap = fetched_html <= self.bootstrap_pages
            if in_bootstrap and group is not None:
                benefit = float(self._page_benefit(env, url, target_urls))
                benefit_sum[group] = benefit_sum.get(group, 0.0) + benefit
                benefit_count[group] = benefit_count.get(group, 0) + 1
            parsed = env.parse(response)
            for link in parsed.links:
                if link.url in seen:
                    continue
                if not env.in_site(link.url) or is_blocklisted_extension(link.url):
                    continue
                if not robots.allowed(link.url):
                    continue
                seen.add(link.url)
                link_group = actions.assign(link.tag_path)
                if in_bootstrap:
                    queue.append((link.url, link_group))
                else:
                    counter += 1
                    heapq.heappush(
                        heap, (-group_priority(link_group), counter, link.url)
                    )

        # Phase 1: BFS bootstrap with oracle benefits.
        while queue and fetched_html < self.bootstrap_pages:
            if self.budget_exhausted(client, budget, cost_model):
                break
            url, group = queue.popleft()
            fetch(url, group)

        # Phase transition: rank the remaining bootstrap frontier by the
        # learned group priorities.
        for url, group in queue:
            counter += 1
            heapq.heappush(heap, (-group_priority(group), counter, url))
        queue.clear()

        # Phase 2: exploitation by fixed group priorities.
        while heap:
            if self.budget_exhausted(client, budget, cost_model):
                break
            _, _, url = heapq.heappop(heap)
            fetch(url, None)

        return CrawlResult(
            crawler=self.name,
            site=env.graph.name,
            trace=client.trace,
            visited=visited,
            targets=targets,
            info={"n_groups": actions.n_actions,
                  "ledger": client.ledger.snapshot()},
        )
