"""TRES adapted to target retrieval (Sec. 4.3).

TRES [Kontogiannis et al. 2021] is a *topical* RL crawler: it scores
HTML pages by topic relevance (originally with a Bi-LSTM over text) and
expands a crawl tree toward relevant regions.  The paper adapts it to
SD retrieval without touching its core logic, granting three unfair
advantages:

(i)  74 hand-crafted keywords likely to appear in anchors of links to
     targets initialise its relevance model (``TRES_KEYWORDS`` below is
     the paper's Appendix B.2 list);
(ii) 1 000 positive HTML pages (pages that link to targets, taken from
     prior crawls of the ground truth) pre-train the relevance model;
(iii) an oracle classifies URLs as HTML or not at zero cost.

Two behavioural adaptations from the paper: links that are not HTML
(which TRES would ignore) are visited immediately and counted if they
turn out to be targets, and the language filter is disabled.

The deep network is replaced by an online logistic model over word
features — the decision signals (keywords, page text, anchor text) and
the cost profile are preserved: like the original, this adaptation
**re-evaluates the scores of the whole frontier at every step** during
tree expansion, which is what makes TRES unable to scale beyond small
sites (Sec. 4.5).
"""

from __future__ import annotations

import re

from repro.core.base import Crawler, CrawlResult
from repro.core.url_classifier import OracleUrlClassifier, UrlClass
from repro.http.environment import CrawlEnvironment
from repro.ml.features import HashedVector, hashed_bow, merge_vectors
from repro.ml.linear import LogisticRegressionSGD
from repro.webgraph.mime import is_blocklisted_extension

#: The 74 keywords the paper supplies to TRES (Appendix B.2).
TRES_KEYWORDS: tuple[str, ...] = (
    "pdf", "xls", "csv", "tar", "zip", "rar", "rdf", "json", "doc", "xml",
    "yaml", "txt", "tsv", "ppt", "ods", "dta", "7z", "ttl", "file",
    "document", "report", "publication", "dataset", "data", "download",
    "archive", "spreadsheet", "table", "list", "resource", "annex",
    "supplement", "attachment", "proceedings", "survey", "material",
    "output", "content", "statistics", "article", "paper", "metadata",
    "fact", "download file", "download document", "available for download",
    "access data", "view report", "get dataset", "data file", "read more",
    "resource list", "get document", "download pulication",
    "document archive", "supporting materials", "export data",
    "download csv", "download pdf", "download xls", "dataset download",
    "attached document", "official documents", "browse files",
    "download statistics", "download article", "annual report",
    "white paper", "technical documentation", "technical report",
    "raw data", "metadata file", "open data", "fact sheet",
)

_FEATURE_DIM = 1 << 14
_WORD_RE = re.compile(r"[a-zA-Z]{2,}")


def _text_features(text: str) -> HashedVector:
    words = " ".join(_WORD_RE.findall(text.lower())[:200])
    return hashed_bow(words, n=4, dim=_FEATURE_DIM, seed=21)


class TresCrawler(Crawler):
    """Topical RL crawler adaptation (with the paper's unfair advantages)."""

    name = "TRES"

    def __init__(
        self,
        n_pretraining_pages: int = 1000,
        keywords: tuple[str, ...] = TRES_KEYWORDS,
        seed: int = 0,
    ) -> None:
        self.n_pretraining_pages = n_pretraining_pages
        self.keywords = keywords
        self.seed = seed

    # -- relevance model ---------------------------------------------------

    def _pretrain(self, env: CrawlEnvironment) -> LogisticRegressionSGD:
        """Unfair advantages (i) + (ii): keyword seeding and positive pages."""
        model = LogisticRegressionSGD(_FEATURE_DIM, seed=self.seed)
        keyword_vector = _text_features(" ".join(self.keywords))
        target_urls = env.target_urls()
        positives: list[HashedVector] = [keyword_vector]
        negatives: list[HashedVector] = []
        count = 0
        for page in env.graph.html_pages():
            if count >= self.n_pretraining_pages:
                break
            anchors = " ".join(link.anchor for link in page.links)
            vector = _text_features(anchors)
            if any(link.url in target_urls for link in page.links):
                positives.append(vector)
            else:
                negatives.append(vector)
            count += 1
        batch = positives + negatives
        labels = [1] * len(positives) + [0] * len(negatives)
        if batch:
            model.partial_fit(batch, labels)
        return model

    def _keyword_score(self, text: str) -> float:
        lowered = text.lower()
        return sum(1.0 for keyword in self.keywords if keyword in lowered)

    # -- crawl ----------------------------------------------------------------

    def crawl(
        self,
        env: CrawlEnvironment,
        budget: float | None = None,
        cost_model: str = "requests",
        max_steps: int | None = None,
    ) -> CrawlResult:
        from repro.http.robots import fetch_robots_policy

        client = env.new_client(self.name)
        robots = fetch_robots_policy(client, env.root_url)
        model = self._pretrain(env)
        # unfair advantage (iii): oracle URL typing at zero cost
        oracle = OracleUrlClassifier(env.graph, env.target_mimes)

        seen: set[str] = {env.root_url}
        visited: set[str] = set()
        targets: set[str] = set()
        #: frontier entries: url -> feature vector (anchor + source text)
        frontier: dict[str, HashedVector] = {
            env.root_url: _text_features("root")
        }
        steps = 0

        while frontier:
            if self.budget_exhausted(client, budget, cost_model):
                break
            if max_steps is not None and steps >= max_steps:
                break
            steps += 1
            # TRES's scalability bottleneck, reproduced on purpose: the
            # full frontier is re-scored at every expansion step.
            best_url = max(
                frontier,
                key=lambda u: model.predict_proba(frontier[u]),
            )
            frontier.pop(best_url)
            response = client.get(best_url)
            visited.add(best_url)
            if response.interrupted or response.is_error:
                continue
            if response.is_redirect:
                location = response.redirect_to
                if location and env.in_site(location) and location not in seen:
                    seen.add(location)
                    frontier[location] = _text_features("redirect")
                continue
            mime = response.mime_root() or ""
            if "html" not in mime:
                continue
            parsed = env.parse(response)
            page_relevant = self._keyword_score(parsed.text) > 0
            # Online update: page's own label from whether it links targets.
            anchors = " ".join(link.anchor for link in parsed.links)
            for link in parsed.links:
                if link.url in seen:
                    continue
                if not env.in_site(link.url) or is_blocklisted_extension(link.url):
                    continue
                if not robots.allowed(link.url):
                    continue
                seen.add(link.url)
                url_class = oracle.classify(link.url)
                if url_class is UrlClass.HTML:
                    frontier[link.url] = merge_vectors(
                        [_text_features(link.anchor or "link"),
                         _text_features(parsed.text[:400])]
                    )
                elif url_class is UrlClass.TARGET:
                    # Adaptation: non-HTML links are visited immediately.
                    if self.budget_exhausted(client, budget, cost_model):
                        break
                    target_response = client.get(link.url)
                    visited.add(link.url)
                    if target_response.ok and not target_response.interrupted:
                        targets.add(link.url)
            # Reinforce the relevance model with the observed page.
            label = 1 if (page_relevant and any(
                l.url in targets for l in parsed.links)) else 0
            model.partial_fit([_text_features(anchors)], [label])

        return CrawlResult(
            crawler=self.name,
            site=env.graph.name,
            trace=client.trace,
            visited=visited,
            targets=targets,
            info={"steps": steps,
                  "ledger": client.ledger.snapshot()},
        )
