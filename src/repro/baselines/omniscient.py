"""The OMNISCIENT upper-bound crawler (Sec. 4.3).

Knows the full set of target URLs V* before the crawl starts and
fetches them one after the other — no navigation, no discovery cost.
Since optimally covering all targets through the link graph is NP-hard
(Prop. 4), this unreachable bound is the paper's efficiency ceiling.
"""

from __future__ import annotations

from repro.core.base import Crawler, CrawlResult
from repro.http.environment import CrawlEnvironment


class OmniscientCrawler(Crawler):
    """Fetches the ground-truth target list directly."""

    name = "OMNISCIENT"

    def crawl(
        self,
        env: CrawlEnvironment,
        budget: float | None = None,
        cost_model: str = "requests",
    ) -> CrawlResult:
        client = env.new_client(self.name)
        targets: set[str] = set()
        visited: set[str] = set()
        for url in sorted(env.target_urls()):
            if self.budget_exhausted(client, budget, cost_model):
                break
            response = client.get(url)
            visited.add(url)
            if response.ok and not response.interrupted:
                targets.add(url)
        return CrawlResult(
            crawler=self.name,
            site=env.graph.name,
            trace=client.trace,
            visited=visited,
            targets=targets,
            info={"ledger": client.ledger.snapshot()},
        )
