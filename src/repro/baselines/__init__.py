"""Baseline crawlers of the paper's evaluation (Sec. 4.3).

* :class:`BFSCrawler`, :class:`DFSCrawler`, :class:`RandomCrawler` —
  the simple frontier disciplines;
* :class:`OmniscientCrawler` — knows every target URL in advance
  (unreachable upper bound, since optimal crawling is NP-hard);
* :class:`FocusedCrawler` — classic focused crawling with a
  priority-queue frontier ordered by a link classifier;
* :class:`TPOffCrawler` — the offline tag-path crawler (ACEBot-style),
  with the paper's oracle benefit during the first 3 k pages;
* :class:`TresCrawler` — the topical RL crawler adaptation with its
  three "unfair advantages".
"""

from repro.baselines.simple import BFSCrawler, DFSCrawler, RandomCrawler
from repro.baselines.omniscient import OmniscientCrawler
from repro.baselines.focused import FocusedCrawler
from repro.baselines.tpoff import TPOffCrawler
from repro.baselines.tres import TresCrawler

__all__ = [
    "BFSCrawler",
    "DFSCrawler",
    "RandomCrawler",
    "OmniscientCrawler",
    "FocusedCrawler",
    "TPOffCrawler",
    "TresCrawler",
]
